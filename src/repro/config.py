"""Scheduler configuration knobs.

All parameters that the paper leaves implicit (Rau's budget ratio, the II
search ceiling, chain-search caps) live here so experiments and ablations
can vary them without touching algorithm code.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .errors import SchedulingError


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunables shared by IMS and DMS.

    Attributes:
        budget_ratio: scheduling attempts allowed per operation before an
            II attempt is abandoned (Rau's IMS uses a small constant; 6 is
            his published default).
        max_ii_factor / max_ii_extra: the II search stops at
            ``max(mii * max_ii_factor, mii + max_ii_extra)``.
        restarts_per_ii: DMS attempts per II value, each with a different
            deterministic cluster-rotation salt.  Greedy cluster
            assignment at 100%-utilized IIs is order-sensitive; cheap
            diversified restarts recover most packings a single pass
            misses (set to 1 for the strict single-pass algorithm).
        search: II-search policy (see ``repro.scheduling.search``):
            ``"adaptive"`` (default — galloping ladder with incumbent
            bisection, failure-evidence seeding and futility cutoffs),
            ``"ladder"`` (the seed's exhaustive walk, bit-identical
            schedules) or ``"portfolio"`` (ladder with each rung's
            restarts fanned across a process pool).
        search_workers: process-pool width for the ``portfolio`` policy
            (``None`` = cores - 1).
        thrash_cap_ratio: ``adaptive`` futility cutoff — an attempt is
            abandoned once one operation has been re-popped more than
            ``thrash_cap_ratio * budget_ratio`` times.  The default cap
            (48) leaves ~2x headroom over the worst re-pop count ever
            observed in a *successful* attempt across the golden corpus
            (26), so the cutoff only fires on livelocked attempts.
        chain_combo_cap: maximum number of ring-direction combinations
            explored per chain plan (2 directions per far predecessor).
        chain_score_all_clusters: score chain options by the bottleneck
            Copy-FU slack over *all* clusters (the paper's "free slots ...
            in any cluster"); ``False`` restricts the bottleneck to the
            clusters the chains actually touch (ABL-CHAIN ablation).
        prefer_shortest_chain_only: explore only the shorter ring direction
            per far predecessor (naive baseline for ABL-CHAIN).
        single_use_strategy: ``"chain"`` (paper) or ``"tree"`` copy shapes.
        unroll_cap: largest unroll factor the auto-unroller may pick.
    """

    budget_ratio: int = 6
    max_ii_factor: int = 4
    max_ii_extra: int = 32
    restarts_per_ii: int = 3
    search: str = "adaptive"
    search_workers: Optional[int] = None
    thrash_cap_ratio: int = 8
    chain_combo_cap: int = 16
    chain_score_all_clusters: bool = True
    prefer_shortest_chain_only: bool = False
    single_use_strategy: str = "chain"
    unroll_cap: int = 16

    def __post_init__(self) -> None:
        if self.budget_ratio < 1:
            raise SchedulingError("budget_ratio must be >= 1")
        if self.max_ii_factor < 1 or self.max_ii_extra < 0:
            raise SchedulingError("invalid II search bounds")
        if self.restarts_per_ii < 1:
            raise SchedulingError("restarts_per_ii must be >= 1")
        if self.search not in ("ladder", "adaptive", "portfolio"):
            raise SchedulingError(
                f"unknown search policy {self.search!r}; choose from "
                "('ladder', 'adaptive', 'portfolio')"
            )
        if self.search_workers is not None and self.search_workers < 1:
            raise SchedulingError("search_workers must be >= 1 or None")
        if self.thrash_cap_ratio < 1:
            raise SchedulingError("thrash_cap_ratio must be >= 1")
        if self.chain_combo_cap < 1:
            raise SchedulingError("chain_combo_cap must be >= 1")
        if self.single_use_strategy not in ("chain", "tree"):
            raise SchedulingError(
                f"unknown single_use_strategy {self.single_use_strategy!r}"
            )
        if self.unroll_cap < 1:
            raise SchedulingError("unroll_cap must be >= 1")

    def max_ii(self, mii: int) -> int:
        """The largest II the search will try for a loop with *mii*."""
        return max(mii * self.max_ii_factor, mii + self.max_ii_extra)

    def with_(self, **changes: object) -> "SchedulerConfig":
        """Return a modified copy (convenience for ablations)."""
        return replace(self, **changes)


#: Shared default configuration.
DEFAULT_CONFIG = SchedulerConfig()
