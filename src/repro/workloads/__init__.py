"""Workloads: classic kernels, synthetic loops, the Perfect Club surrogate."""

from .kernels import KERNELS, KernelInfo, make_kernel
from .suite import (
    PERFECT_CLUB_LOOP_COUNT,
    SuiteStats,
    perfect_club_surrogate,
    split_sets,
    suite_stats,
)
from .synthetic import DEFAULT_SPEC, SyntheticSpec, synthetic_loop

__all__ = [
    "KERNELS",
    "KernelInfo",
    "make_kernel",
    "PERFECT_CLUB_LOOP_COUNT",
    "SuiteStats",
    "perfect_club_surrogate",
    "split_sets",
    "suite_stats",
    "DEFAULT_SPEC",
    "SyntheticSpec",
    "synthetic_loop",
]
