"""Classic innermost-loop kernels (DSP and numeric).

These are the hand-written loops the paper's motivation talks about:
vectorizable streaming/DSP kernels (set 2 material) and recurrence-bound
loops (the rest of set 1).  Each factory returns a fresh
:class:`~repro.ir.loop.Loop`; the registry at the bottom drives examples,
tests and the kernel share of the Perfect Club surrogate suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..errors import WorkloadError
from ..ir.builder import LoopBuilder

LoopFactory = Callable[..., "object"]


def vector_add(trip_count: int = 256) -> object:
    """``a[i] = b[i] + c[i]`` — minimal vectorizable stream."""
    b = LoopBuilder("vector_add")
    x = b.load("b[i]")
    y = b.load("c[i]")
    b.store(b.add(x, y), "a[i]")
    return b.build(trip_count, kernel="vector_add")


def vector_scale(trip_count: int = 256) -> object:
    """``a[i] = k * b[i]`` — stream with an invariant multiplier."""
    b = LoopBuilder("vector_scale")
    x = b.load("b[i]")
    b.store(b.mul(x, "k"), "a[i]")
    return b.build(trip_count, kernel="vector_scale")


def daxpy(trip_count: int = 400) -> object:
    """``y[i] = a * x[i] + y[i]`` — the BLAS-1 staple, vectorizable."""
    b = LoopBuilder("daxpy")
    x = b.load("x[i]")
    y = b.load("y[i]")
    b.store(b.add(b.mul(x, "a"), y), "y[i]")
    return b.build(trip_count, kernel="daxpy")


def dot_product(trip_count: int = 512) -> object:
    """``acc += x[i] * y[i]`` — reduction recurrence on the accumulator."""
    b = LoopBuilder("dot_product")
    x = b.load("x[i]")
    y = b.load("y[i]")
    acc = b.placeholder()
    total = b.add(b.mul(x, y), b.carried(acc, 1), tag="acc")
    b.bind(acc, total)
    return b.build(trip_count, kernel="dot_product")


def sum_reduction(trip_count: int = 512) -> object:
    """``acc += x[i]`` — the shortest recurrence circuit."""
    b = LoopBuilder("sum_reduction")
    x = b.load("x[i]")
    acc = b.placeholder()
    total = b.add(x, b.carried(acc, 1), tag="acc")
    b.bind(acc, total)
    return b.build(trip_count, kernel="sum_reduction")


def fir_filter(taps: int = 8, trip_count: int = 1024) -> object:
    """FIR filter with load reuse: ``y[i] = sum_j c_j * x[i-j]``.

    One new sample is loaded per iteration; older samples are loop-carried
    references to previous loads, so the load's value has fan-out *taps* —
    prime material for the single-use transformation.
    """
    if taps < 2:
        raise WorkloadError(f"fir_filter needs >= 2 taps, got {taps}")
    b = LoopBuilder(f"fir{taps}")
    x = b.load("x[i]")
    terms = [b.mul(x, "c0", tag="t0")]
    for j in range(1, taps):
        terms.append(b.mul(b.carried(x, j), f"c{j}", tag=f"t{j}"))
    total = terms[0]
    for j in range(1, taps):
        total = b.add(total, terms[j], tag=f"s{j}")
    b.store(total, "y[i]")
    return b.build(trip_count, kernel="fir_filter", taps=taps)


def iir_biquad(trip_count: int = 1024) -> object:
    """Direct-form-I biquad: output recurrence at distances 1 and 2."""
    b = LoopBuilder("iir_biquad")
    x = b.load("x[i]")
    y = b.placeholder()
    forward = b.add(
        b.mul(x, "b0"),
        b.add(b.mul(b.carried(x, 1), "b1"), b.mul(b.carried(x, 2), "b2")),
        tag="ffwd",
    )
    feedback = b.add(
        b.mul(b.carried(y, 1), "a1"), b.mul(b.carried(y, 2), "a2"), tag="fb"
    )
    out = b.sub(forward, feedback, tag="y")
    b.bind(y, out)
    b.store(out, "y[i]")
    return b.build(trip_count, kernel="iir_biquad")


def stencil3(trip_count: int = 512) -> object:
    """3-point stencil with load reuse: ``b[i] = w*(a[i-1]+a[i]+a[i+1])``."""
    b = LoopBuilder("stencil3")
    x = b.load("a[i+1]")
    centre = b.carried(x, 1)
    left = b.carried(x, 2)
    total = b.add(b.add(left, centre), x, tag="sum")
    b.store(b.mul(total, "w"), "b[i]")
    return b.build(trip_count, kernel="stencil3")


def stencil5(trip_count: int = 512) -> object:
    """5-point stencil with load reuse (fan-out 5 on the load)."""
    b = LoopBuilder("stencil5")
    x = b.load("a[i+2]")
    taps = [x] + [b.carried(x, j) for j in range(1, 5)]
    total = taps[0]
    for tap in taps[1:]:
        total = b.add(total, tap)
    b.store(b.mul(total, "w"), "b[i]")
    return b.build(trip_count, kernel="stencil5")


def horner(trip_count: int = 256) -> object:
    """Horner evaluation as a recurrence: ``p = p * x + c[i]``."""
    b = LoopBuilder("horner")
    c = b.load("c[i]")
    p = b.placeholder()
    nxt = b.add(b.mul(b.carried(p, 1), "x"), c, tag="p")
    b.bind(p, nxt)
    return b.build(trip_count, kernel="horner")


def unrolled_dot(width: int = 4, trip_count: int = 512) -> object:
    """Dot product with *width* source-level partial products feeding one
    accumulator through an add chain — a wide reduction body."""
    if width < 1:
        raise WorkloadError(f"width must be >= 1, got {width}")
    b = LoopBuilder(f"dotw{width}")
    acc = b.placeholder()
    partials = []
    for j in range(width):
        x = b.load(f"x[{j}]")
        y = b.load(f"y[{j}]")
        partials.append(b.mul(x, y))
    total = b.carried(acc, 1)
    for partial in partials:
        total = b.add(total, partial)
    b.bind(acc, total)
    return b.build(trip_count, kernel="unrolled_dot", width=width)


def complex_multiply(trip_count: int = 512) -> object:
    """Element-wise complex product: 4 loads, 4 muls, 2 adds, 2 stores."""
    b = LoopBuilder("complex_multiply")
    ar = b.load("a.re")
    ai = b.load("a.im")
    br = b.load("b.re")
    bi = b.load("b.im")
    re = b.sub(b.mul(ar, br), b.mul(ai, bi), tag="re")
    im = b.add(b.mul(ar, bi), b.mul(ai, br), tag="im")
    b.store(re, "c.re")
    b.store(im, "c.im")
    return b.build(trip_count, kernel="complex_multiply")


def rgb_to_yuv(trip_count: int = 640) -> object:
    """Colour-space conversion: 3x3 matrix per pixel, MUL-heavy stream."""
    b = LoopBuilder("rgb_to_yuv")
    r = b.load("r[i]")
    g = b.load("g[i]")
    bl = b.load("b[i]")
    for channel, coeffs in (("y", "yr yg yb"), ("u", "ur ug ub"), ("v", "vr vg vb")):
        cr, cg, cb = coeffs.split()
        value = b.add(
            b.add(b.mul(r, cr), b.mul(g, cg)), b.mul(bl, cb), tag=channel
        )
        b.store(value, f"{channel}[i]")
    return b.build(trip_count, kernel="rgb_to_yuv")


def lms_update(taps: int = 4, trip_count: int = 1024) -> object:
    """LMS adaptive filter step: FIR plus per-tap coefficient recurrences.

    ``y = sum w_j * x[i-j]; e = d[i] - y; w_j += mu * e * x[i-j]``
    """
    if taps < 2:
        raise WorkloadError(f"lms_update needs >= 2 taps, got {taps}")
    b = LoopBuilder(f"lms{taps}")
    x = b.load("x[i]")
    d = b.load("d[i]")
    weights = [b.placeholder() for _ in range(taps)]
    samples = [x] + [b.carried(x, j) for j in range(1, taps)]
    products = [
        b.mul(b.carried(weights[j], 1), samples[j], tag=f"p{j}")
        for j in range(taps)
    ]
    y = products[0]
    for j in range(1, taps):
        y = b.add(y, products[j], tag=f"y{j}")
    err = b.sub(d, y, tag="e")
    scaled = b.mul(err, "mu", tag="mu_e")
    for j in range(taps):
        delta = b.mul(scaled, samples[j], tag=f"d{j}")
        new_w = b.add(b.carried(weights[j], 1), delta, tag=f"w{j}")
        b.bind(weights[j], new_w)
    b.store(err, "e[i]")
    return b.build(trip_count, kernel="lms_update", taps=taps)


def cumulative_sum(trip_count: int = 512) -> object:
    """Prefix sum with stores: ``s += x[i]; y[i] = s``."""
    b = LoopBuilder("cumulative_sum")
    x = b.load("x[i]")
    s = b.placeholder()
    total = b.add(x, b.carried(s, 1), tag="s")
    b.bind(s, total)
    b.store(total, "y[i]")
    return b.build(trip_count, kernel="cumulative_sum")


def euclidean_norm(trip_count: int = 512) -> object:
    """``acc += x[i] * x[i]`` — duplicate operand reference on the load."""
    b = LoopBuilder("euclidean_norm")
    x = b.load("x[i]")
    acc = b.placeholder()
    total = b.add(b.mul(x, x), b.carried(acc, 1), tag="acc")
    b.bind(acc, total)
    return b.build(trip_count, kernel="euclidean_norm")


def max_reduction(trip_count: int = 512) -> object:
    """Running maximum: ``m = max(m, x[i])``."""
    b = LoopBuilder("max_reduction")
    x = b.load("x[i]")
    m = b.placeholder()
    nxt = b.max(b.carried(m, 1), x, tag="m")
    b.bind(m, nxt)
    return b.build(trip_count, kernel="max_reduction")


def geometric_scale(trip_count: int = 256) -> object:
    """Long-latency recurrence: ``s = s * r; y[i] = s * x[i]``."""
    b = LoopBuilder("geometric_scale")
    x = b.load("x[i]")
    s = b.placeholder()
    nxt = b.mul(b.carried(s, 1), "r", tag="s")
    b.bind(s, nxt)
    b.store(b.mul(nxt, x), "y[i]")
    return b.build(trip_count, kernel="geometric_scale")


def element_divide(trip_count: int = 256) -> object:
    """``a[i] = b[i] / c[i]`` — exercises the long-latency divide."""
    b = LoopBuilder("element_divide")
    x = b.load("b[i]")
    y = b.load("c[i]")
    b.store(b.div(x, y), "a[i]")
    return b.build(trip_count, kernel="element_divide")


def rms_normalize(trip_count: int = 256) -> object:
    """Square-root in a stream: ``y[i] = x[i] / sqrt(w[i])``."""
    b = LoopBuilder("rms_normalize")
    x = b.load("x[i]")
    w = b.load("w[i]")
    b.store(b.div(x, b.sqrt(w)), "y[i]")
    return b.build(trip_count, kernel="rms_normalize")


def fft_butterfly(trip_count: int = 256) -> object:
    """Radix-2 FFT butterfly over element streams (complex twiddle)."""
    b = LoopBuilder("fft_butterfly")
    ar = b.load("a.re")
    ai = b.load("a.im")
    br = b.load("b.re")
    bi = b.load("b.im")
    # t = w * b  (complex multiply by the twiddle factor)
    tr = b.sub(b.mul(br, "w.re"), b.mul(bi, "w.im"), tag="t.re")
    ti = b.add(b.mul(br, "w.im"), b.mul(bi, "w.re"), tag="t.im")
    b.store(b.add(ar, tr), "x.re")
    b.store(b.add(ai, ti), "x.im")
    b.store(b.sub(ar, tr), "y.re")
    b.store(b.sub(ai, ti), "y.im")
    return b.build(trip_count, kernel="fft_butterfly")


def matmul2x2(trip_count: int = 256) -> object:
    """Stream of 2x2 matrix products: 8 muls, 4 adds, 8 loads, 4 stores."""
    b = LoopBuilder("matmul2x2")
    a = [[b.load(f"a{i}{j}") for j in range(2)] for i in range(2)]
    c = [[b.load(f"b{i}{j}") for j in range(2)] for i in range(2)]
    for i in range(2):
        for j in range(2):
            value = b.add(
                b.mul(a[i][0], c[0][j]), b.mul(a[i][1], c[1][j]), tag=f"c{i}{j}"
            )
            b.store(value, f"out{i}{j}")
    return b.build(trip_count, kernel="matmul2x2")


def dct_row4(trip_count: int = 128) -> object:
    """4-point DCT row pass: dense multiply-accumulate, vectorizable."""
    b = LoopBuilder("dct_row4")
    samples = [b.load(f"x{j}") for j in range(4)]
    for k in range(4):
        terms = [b.mul(samples[j], f"c{k}{j}") for j in range(4)]
        value = b.add(b.add(terms[0], terms[1]), b.add(terms[2], terms[3]))
        b.store(value, f"X{k}")
    return b.build(trip_count, kernel="dct_row4")


def complex_fir(taps: int = 4, trip_count: int = 512) -> object:
    """Complex-valued FIR with load reuse on both components."""
    if taps < 2:
        raise WorkloadError(f"complex_fir needs >= 2 taps, got {taps}")
    b = LoopBuilder(f"cfir{taps}")
    xr = b.load("x.re")
    xi = b.load("x.im")
    re_terms = []
    im_terms = []
    for j in range(taps):
        sr = xr if j == 0 else b.carried(xr, j)
        si = xi if j == 0 else b.carried(xi, j)
        re_terms.append(b.sub(b.mul(sr, f"h{j}.re"), b.mul(si, f"h{j}.im")))
        im_terms.append(b.add(b.mul(sr, f"h{j}.im"), b.mul(si, f"h{j}.re")))
    re = re_terms[0]
    im = im_terms[0]
    for j in range(1, taps):
        re = b.add(re, re_terms[j])
        im = b.add(im, im_terms[j])
    b.store(re, "y.re")
    b.store(im, "y.im")
    return b.build(trip_count, kernel="complex_fir", taps=taps)


def linear_interp(trip_count: int = 512) -> object:
    """Linear interpolation between two streams: y = a + t*(b - a)."""
    b = LoopBuilder("linear_interp")
    a = b.load("a[i]")
    c = b.load("b[i]")
    t = b.load("t[i]")
    b.store(b.add(a, b.mul(t, b.sub(c, a))), "y[i]")
    return b.build(trip_count, kernel="linear_interp")


def chebyshev_recurrence(trip_count: int = 256) -> object:
    """Chebyshev polynomial recurrence: T[n] = 2x*T[n-1] - T[n-2]."""
    b = LoopBuilder("chebyshev")
    t = b.placeholder()
    nxt = b.sub(
        b.mul(b.carried(t, 1), "two_x"), b.carried(t, 2), tag="T"
    )
    b.bind(t, nxt)
    b.store(nxt, "T[n]")
    return b.build(trip_count, kernel="chebyshev_recurrence")


def givens_rotation(trip_count: int = 256) -> object:
    """Apply a Givens rotation to a pair of streams (QR-style update)."""
    b = LoopBuilder("givens_rotation")
    x = b.load("x[i]")
    y = b.load("y[i]")
    b.store(b.add(b.mul(x, "c"), b.mul(y, "s")), "x'[i]")
    b.store(b.sub(b.mul(y, "c"), b.mul(x, "s")), "y'[i]")
    return b.build(trip_count, kernel="givens_rotation")


def alpha_blend(trip_count: int = 640) -> object:
    """Pixel blend with clamping: out = min(max(a*src + (1-a)*dst, lo), hi)."""
    b = LoopBuilder("alpha_blend")
    src = b.load("src[i]")
    dst = b.load("dst[i]")
    blended = b.add(b.mul(src, "alpha"), b.mul(dst, "one_minus_alpha"))
    clamped = b.min(b.max(blended, "lo"), "hi")
    b.store(clamped, "out[i]")
    return b.build(trip_count, kernel="alpha_blend")


@dataclass(frozen=True)
class KernelInfo:
    """Registry entry for one kernel factory."""

    name: str
    factory: LoopFactory
    vectorizable: bool
    description: str
    parameters: Tuple[str, ...] = ()


KERNELS: Dict[str, KernelInfo] = {
    info.name: info
    for info in (
        KernelInfo("vector_add", vector_add, True, "a[i] = b[i] + c[i]"),
        KernelInfo("vector_scale", vector_scale, True, "a[i] = k * b[i]"),
        KernelInfo("daxpy", daxpy, True, "y[i] = a*x[i] + y[i]"),
        KernelInfo("dot_product", dot_product, False, "acc += x[i]*y[i]"),
        KernelInfo("sum_reduction", sum_reduction, False, "acc += x[i]"),
        KernelInfo(
            "fir_filter", fir_filter, True, "FIR with load reuse", ("taps",)
        ),
        KernelInfo("iir_biquad", iir_biquad, False, "biquad IIR section"),
        KernelInfo("stencil3", stencil3, True, "3-point stencil, load reuse"),
        KernelInfo("stencil5", stencil5, True, "5-point stencil, load reuse"),
        KernelInfo("horner", horner, False, "p = p*x + c[i]"),
        KernelInfo(
            "unrolled_dot", unrolled_dot, False, "wide reduction", ("width",)
        ),
        KernelInfo("complex_multiply", complex_multiply, True, "complex product"),
        KernelInfo("rgb_to_yuv", rgb_to_yuv, True, "3x3 colour transform"),
        KernelInfo(
            "lms_update", lms_update, False, "LMS adaptive filter", ("taps",)
        ),
        KernelInfo("cumulative_sum", cumulative_sum, False, "prefix sum"),
        KernelInfo("euclidean_norm", euclidean_norm, False, "acc += x[i]^2"),
        KernelInfo("max_reduction", max_reduction, False, "running max"),
        KernelInfo("geometric_scale", geometric_scale, False, "s = s*r stream"),
        KernelInfo("element_divide", element_divide, True, "a[i] = b[i]/c[i]"),
        KernelInfo("rms_normalize", rms_normalize, True, "x[i]/sqrt(w[i])"),
        KernelInfo("fft_butterfly", fft_butterfly, True, "radix-2 butterfly"),
        KernelInfo("matmul2x2", matmul2x2, True, "2x2 matrix product stream"),
        KernelInfo("dct_row4", dct_row4, True, "4-point DCT row"),
        KernelInfo(
            "complex_fir", complex_fir, True, "complex FIR, load reuse", ("taps",)
        ),
        KernelInfo("linear_interp", linear_interp, True, "a + t*(b-a)"),
        KernelInfo(
            "chebyshev_recurrence",
            chebyshev_recurrence,
            False,
            "T[n] = 2x*T[n-1] - T[n-2]",
        ),
        KernelInfo("givens_rotation", givens_rotation, True, "QR-style rotation"),
        KernelInfo("alpha_blend", alpha_blend, True, "clamped pixel blend"),
    )
}


def make_kernel(name: str, **params: object) -> object:
    """Instantiate a registered kernel by name."""
    info = KERNELS.get(name)
    if info is None:
        raise WorkloadError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
        )
    return info.factory(**params)
