"""Seeded random loop generation.

The Perfect Club benchmark itself is not redistributable (and its loop
extraction needs the authors' Fortran tooling), so the suite synthesises
loops with the *shape statistics* that drive modulo scheduling: operation
mix, dependence-graph depth, fan-out, recurrence circuits and trip counts.
See DESIGN.md section 3 for the substitution argument.

A loop is a combination of independent **strands**, each drawn from four
templates observed in scientific inner loops:

* ``stream``  — loads -> arithmetic tree -> store (fully vectorizable);
* ``reduce``  — products/sums folded into an accumulator recurrence;
* ``recur``   — first/second-order recurrences (IIR-like filters);
* ``stencil`` — one load reused at several loop-carried offsets.

Everything is driven by a :class:`numpy.random.Generator` seeded from
``(suite_seed, loop_index)``, so the 1258-loop suite is reproducible
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import WorkloadError
from ..ir.builder import LoopBuilder, Value
from ..ir.loop import Loop


@dataclass(frozen=True)
class SyntheticSpec:
    """Tunables of the random loop generator.

    ``p_recurrent_loop`` approximates the fraction of loops containing at
    least one recurrence circuit (the complement approximates the paper's
    "loops without recurrences" set 2).

    ``p_mem_dep`` adds explicit memory ordering edges between a store and
    a load of the body (aliasing arrays).  It defaults to 0 so the
    surrogate suite stays bit-identical to its published statistics; the
    schedule-mutation fuzzer turns it on to exercise the ordering-edge
    paths of the checker and the timing simulator.
    """

    min_strands: int = 1
    max_strands: int = 4
    p_recurrent_loop: float = 0.42
    p_mul: float = 0.38
    p_div: float = 0.03
    p_shared_operand: float = 0.25
    min_trip: int = 24
    max_trip: int = 600
    p_mem_dep: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.p_recurrent_loop <= 1:
            raise WorkloadError("p_recurrent_loop must be in [0, 1]")
        if not 0 <= self.p_mem_dep <= 1:
            raise WorkloadError("p_mem_dep must be in [0, 1]")
        if self.min_strands < 1 or self.max_strands < self.min_strands:
            raise WorkloadError("invalid strand bounds")
        if self.min_trip < 1 or self.max_trip < self.min_trip:
            raise WorkloadError("invalid trip-count bounds")


DEFAULT_SPEC = SyntheticSpec()

_STREAM, _REDUCE, _RECUR, _STENCIL = "stream", "reduce", "recur", "stencil"


def _arith(b: LoopBuilder, rng, a, c, spec: SyntheticSpec) -> Value:
    """One random arithmetic combination of two operands."""
    roll = rng.random()
    if roll < spec.p_div:
        return b.div(a, c)
    if roll < spec.p_div + spec.p_mul:
        return b.mul(a, c)
    choice = rng.integers(0, 4)
    if choice == 0:
        return b.add(a, c)
    if choice == 1:
        return b.sub(a, c)
    if choice == 2:
        return b.min(a, c)
    return b.max(a, c)


def _tree(b: LoopBuilder, rng, leaves: Sequence, spec: SyntheticSpec) -> Value:
    """Fold *leaves* with random binary operations (balanced-ish)."""
    work = list(leaves)
    while len(work) > 1:
        a = work.pop(int(rng.integers(0, len(work))))
        c = work.pop(int(rng.integers(0, len(work))))
        work.append(_arith(b, rng, a, c, spec))
    return work[0]


def _stream_strand(b: LoopBuilder, rng, spec: SyntheticSpec, tag: int) -> None:
    width = int(rng.integers(1, 4))
    leaves: List = [b.load(f"s{tag}_in{j}") for j in range(width)]
    leaves.extend(f"k{tag}_{j}" for j in range(int(rng.integers(1, 3))))
    value = _tree(b, rng, leaves, spec)
    # Post-tree refinement chain (polynomial/scaling steps on the result),
    # giving the arithmetic-heavy bodies of real numeric loops.
    for step in range(int(rng.integers(1, 4))):
        value = _arith(b, rng, value, f"c{tag}_{step}", spec)
    if rng.random() < spec.p_shared_operand:
        # A second consumer of the same value (fan-out pressure).
        b.store(b.mul(value, f"w{tag}"), f"s{tag}_aux")
    b.store(value, f"s{tag}_out")


def _reduce_strand(b: LoopBuilder, rng, spec: SyntheticSpec, tag: int) -> None:
    width = int(rng.integers(1, 4))
    leaves: List = []
    for j in range(width):
        x = b.load(f"r{tag}_x{j}")
        if rng.random() < 0.5:
            y = b.load(f"r{tag}_y{j}")
            leaves.append(b.mul(x, y))
        elif rng.random() < 0.5:
            leaves.append(b.mul(x, f"r{tag}_k{j}"))
        else:
            leaves.append(b.add(b.mul(x, x), f"r{tag}_b{j}"))
    acc = b.placeholder()
    partial = _tree(b, rng, leaves, spec) if len(leaves) > 1 else leaves[0]
    total = b.add(partial, b.carried(acc, 1), tag=f"acc{tag}")
    b.bind(acc, total)
    if rng.random() < 0.3:
        b.store(total, f"r{tag}_run")


def _recur_strand(b: LoopBuilder, rng, spec: SyntheticSpec, tag: int) -> None:
    order = int(rng.integers(1, 3))
    x = b.load(f"q{tag}_in")
    state = b.placeholder()
    terms: List = [b.mul(x, f"q{tag}_b0")]
    for j in range(1, order + 1):
        terms.append(b.mul(b.carried(state, j), f"q{tag}_a{j}"))
    value = terms[0]
    for term in terms[1:]:
        value = b.add(value, term)
    b.bind(state, value)
    if rng.random() < 0.6:
        b.store(value, f"q{tag}_out")


def _stencil_strand(b: LoopBuilder, rng, spec: SyntheticSpec, tag: int) -> None:
    points = int(rng.integers(3, 6))
    x = b.load(f"t{tag}_a")
    taps: List = [b.mul(x, f"t{tag}_w0")] + [
        b.mul(b.carried(x, j), f"t{tag}_w{j}") for j in range(1, points)
    ]
    value = _tree(b, rng, taps, spec)
    b.store(value, f"t{tag}_out")


_BUILDERS = {
    _STREAM: _stream_strand,
    _REDUCE: _reduce_strand,
    _RECUR: _recur_strand,
    _STENCIL: _stencil_strand,
}


def synthetic_loop(
    index: int, seed: int = 1999, spec: SyntheticSpec = DEFAULT_SPEC
) -> Loop:
    """Generate loop *index* of the synthetic population (deterministic)."""
    rng = np.random.default_rng([seed, index])
    recurrent = rng.random() < spec.p_recurrent_loop
    n_strands = int(rng.integers(spec.min_strands, spec.max_strands + 1))
    if recurrent:
        # At least one recurrence-bearing strand.
        kinds = [_REDUCE if rng.random() < 0.6 else _RECUR]
        pool = [_STREAM, _REDUCE, _RECUR, _STENCIL]
        weights = [0.40, 0.20, 0.15, 0.25]
    else:
        kinds = []
        pool = [_STREAM, _STENCIL]
        weights = [0.65, 0.35]
    while len(kinds) < n_strands:
        kinds.append(str(rng.choice(pool, p=np.array(weights) / sum(weights))))
    b = LoopBuilder(f"synthetic_{index:04d}")
    for tag, kind in enumerate(kinds):
        _BUILDERS[kind](b, rng, spec, tag)
    mem_deps = 0
    if spec.p_mem_dep > 0:
        # Gated entirely behind the probability so the default spec draws
        # exactly the random stream it always did (suite stats stay
        # bit-identical).
        mem_deps = _add_mem_deps(b, rng, spec)
    trip = int(
        np.exp(rng.uniform(np.log(spec.min_trip), np.log(spec.max_trip)))
    )
    return b.build(
        max(spec.min_trip, trip),
        generator="synthetic",
        seed=seed,
        index=index,
        strands=tuple(kinds),
        mem_deps=mem_deps,
    )


def _add_mem_deps(b: LoopBuilder, rng, spec: SyntheticSpec) -> int:
    """Add store/load aliasing edges between random memory operations.

    Two flavours, mirroring real aliasing patterns:

    * ``load -> store`` (omega 0): the load must complete before an
      intra-iteration store overwrites its location;
    * ``store -> load`` (omega 1): next iteration's load observes this
      iteration's store.
    """
    from ..ir.builder import Value
    from ..ir.opcodes import OpCode

    loads = [op.op_id for op in b.ddg.operations() if op.opcode == OpCode.LOAD]
    stores = [op.op_id for op in b.ddg.operations() if op.opcode == OpCode.STORE]
    if not loads or not stores:
        return 0
    added = 0
    for store_id in stores:
        if rng.random() >= spec.p_mem_dep:
            continue
        load_id = int(rng.choice(loads))
        if rng.random() < 0.5:
            b.mem_dep(Value(load_id), Value(store_id), omega=0, latency=1)
        else:
            b.mem_dep(Value(store_id), Value(load_id), omega=1, latency=1)
        added += 1
    return added
