"""The Perfect Club surrogate suite.

The paper evaluates "all eligible innermost loops from the Perfect Club
Benchmark ... a total of 1258 loops suitable for software pipelining".
The original loops are not redistributable, so :func:`perfect_club_surrogate`
synthesises a population of the same size: a kernel share instantiated
from the classic-loop registry with randomised parameters and trip counts,
plus a synthetic share from the template generator.  Set 1 is the full
population; set 2 keeps only recurrence-free ("highly vectorizable",
DSP-like) loops, mirroring the paper's two measurement sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import WorkloadError
from ..ir.loop import Loop
from ..ir.transforms import ddg_stats
from .kernels import KERNELS, make_kernel
from .synthetic import DEFAULT_SPEC, SyntheticSpec, synthetic_loop

#: Loop population size of the paper's evaluation.
PERFECT_CLUB_LOOP_COUNT = 1258

#: Fraction of the suite instantiated from named kernels (rest synthetic).
_KERNEL_SHARE = 0.35

_PARAM_RANGES = {
    "fir_filter": ("taps", 3, 12),
    "lms_update": ("taps", 2, 6),
    "unrolled_dot": ("width", 2, 6),
    "complex_fir": ("taps", 2, 6),
}


def _kernel_loop(index: int, seed: int) -> Loop:
    rng = np.random.default_rng([seed, 7_000_000 + index])
    names = sorted(KERNELS)
    name = names[int(rng.integers(0, len(names)))]
    params: Dict[str, object] = {}
    if name in _PARAM_RANGES:
        key, low, high = _PARAM_RANGES[name]
        params[key] = int(rng.integers(low, high + 1))
    params["trip_count"] = int(rng.integers(32, 768))
    loop = make_kernel(name, **params)
    # Make names unique within the suite.
    loop.name = f"{loop.name}_{index:04d}"
    return loop


def perfect_club_surrogate(
    n_loops: int = PERFECT_CLUB_LOOP_COUNT,
    seed: int = 1999,
    spec: SyntheticSpec = DEFAULT_SPEC,
) -> List[Loop]:
    """Build the surrogate suite (deterministic in ``(n_loops, seed)``)."""
    if n_loops < 1:
        raise WorkloadError(f"n_loops must be >= 1, got {n_loops}")
    loops: List[Loop] = []
    n_kernels = int(round(n_loops * _KERNEL_SHARE))
    for index in range(n_loops):
        if index < n_kernels:
            loops.append(_kernel_loop(index, seed))
        else:
            loops.append(synthetic_loop(index, seed=seed, spec=spec))
    return loops


def split_sets(loops: List[Loop]) -> Tuple[List[Loop], List[Loop]]:
    """(set 1, set 2): all loops, and the recurrence-free subset."""
    set2 = [loop for loop in loops if loop.is_vectorizable]
    return list(loops), set2


@dataclass(frozen=True)
class SuiteStats:
    """Aggregate shape statistics of a loop suite."""

    n_loops: int
    n_vectorizable: int
    total_ops: int
    mean_ops: float
    max_ops: int
    mean_trip: float
    fu_mix: Dict[str, float]

    @property
    def vectorizable_fraction(self) -> float:
        return self.n_vectorizable / self.n_loops if self.n_loops else 0.0


def suite_stats(loops: List[Loop]) -> SuiteStats:
    """Compute :class:`SuiteStats` for *loops*."""
    if not loops:
        raise WorkloadError("empty suite")
    total_ops = 0
    max_ops = 0
    vectorizable = 0
    fu_counts: Dict[str, int] = {}
    trip_total = 0
    for loop in loops:
        stats = ddg_stats(loop.ddg)
        total_ops += stats.n_ops
        max_ops = max(max_ops, stats.n_ops)
        trip_total += loop.trip_count
        if loop.is_vectorizable:
            vectorizable += 1
        for kind, count in stats.fu_histogram.items():
            fu_counts[kind.value] = fu_counts.get(kind.value, 0) + count
    return SuiteStats(
        n_loops=len(loops),
        n_vectorizable=vectorizable,
        total_ops=total_ops,
        mean_ops=total_ops / len(loops),
        max_ops=max_ops,
        mean_trip=trip_total / len(loops),
        fu_mix={
            kind: count / total_ops for kind, count in sorted(fu_counts.items())
        },
    )
