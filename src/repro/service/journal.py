"""Persistent job journal: ``wait=false`` submissions survive a restart.

The daemon appends one JSONL record per job lifecycle transition —
``submitted`` (carrying the original compile payload), ``started``,
``retrying``, and the terminal ``done``/``failed``/``shed``/
``quarantined`` — keyed by the batch-cache content hash.  Appends are
flushed and fsync'd before the daemon acknowledges a submission, so a
202 receipt means the job is durable: after a ``kill -9``,
:meth:`JobJournal.replay` reconstructs every job's last known state and
the daemon re-enqueues the interrupted ``wait=false`` ones.

Record format — one JSON object per line::

    {"v": 1, "seq": 7, "event": "submitted", "key": "<sha256>",
     "wait": false, "payload": {...}, "sum": "<checksum>"}

``sum`` is the first 16 hex chars of the SHA-256 over the canonical
(sorted-keys) JSON of the record without its ``sum`` field.  Replay
rejects any line whose checksum does not match (bit rot, interleaved
garbage) and treats a final line without a newline as a torn write —
the classic crash-mid-append shape — truncating it away on repair.
Neither stops recovery: the journal degrades record by record.

:meth:`compact` rewrites the file keeping one synthesized ``submitted``
record per still-live job (terminal histories are dropped), atomically
(tmp + fsync + rename), so the journal stays proportional to live work
instead of growing forever.

The sweep coordinator (:mod:`repro.service.sweep`) rides the same file
with four ``sweep-*`` record types keyed ``sweep:<id>``:
``sweep-submitted`` carries the sweep spec, ``sweep-progress`` records
accumulate — each carries the job indices a completed chunk finished
(``done``: index -> content-hash key) or permanently failed
(``failed``: index -> error) and replay takes their union, unlike the
rank-replacement job events — and ``sweep-done``/``sweep-failed`` are
terminal.  Compaction keeps an open sweep as one synthesized
``sweep-submitted`` plus (when it has progress) one merged
``sweep-progress`` record, so recompaction stays byte-idempotent.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .. import faults
from ..errors import JournalError

#: Journal record schema version.
JOURNAL_VERSION = 1

#: Lifecycle events in rank order: replay keeps the furthest-progressed
#: state it sees for a key, so out-of-order appends cannot regress it.
EVENT_RANK = {
    "submitted": 0,
    "started": 1,
    "retrying": 1,
    "done": 2,
    "failed": 2,
    "shed": 2,
    "quarantined": 2,
    "sweep-submitted": 0,
    "sweep-progress": 1,
    "sweep-done": 2,
    "sweep-failed": 2,
}

#: Events that describe a sweep ledger entry rather than a single job.
SWEEP_EVENTS = frozenset(
    event for event in EVENT_RANK if event.startswith("sweep-")
)

TERMINAL_EVENTS = frozenset(
    event for event, rank in EVENT_RANK.items() if rank == 2
)


def _checksum(record: Dict[str, object]) -> str:
    """Line checksum: sha256 over the canonical record sans ``sum``."""
    body = {name: value for name, value in record.items() if name != "sum"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class JournalEntry:
    """One job's replayed state: its furthest-progressed transition."""

    key: str
    event: str = "submitted"
    wait: bool = True
    priority: str = "normal"
    payload: Optional[Dict[str, object]] = None
    crashes: int = 0
    extra: Dict[str, object] = field(default_factory=dict)
    #: Sweep-only accumulators: job index (as a string — JSON object
    #: keys) -> content-hash key / error text.  Unlike the ranked
    #: ``event``, these union across every ``sweep-progress`` record.
    sweep_done: Dict[str, str] = field(default_factory=dict)
    sweep_failed: Dict[str, str] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.event in TERMINAL_EVENTS

    @property
    def is_sweep(self) -> bool:
        """Whether this entry is a sweep ledger entry, not a job."""
        return self.event in SWEEP_EVENTS

    def absorb(self, record: Dict[str, object]) -> None:
        """Fold one valid record for this key into the entry."""
        event = str(record.get("event"))
        if record.get("payload") is not None:
            self.payload = record["payload"]  # type: ignore[assignment]
        if record.get("wait") is not None:
            self.wait = bool(record["wait"])
        if record.get("priority") is not None:
            self.priority = str(record["priority"])
        self.crashes = max(self.crashes, int(record.get("crashes", 0)))
        if event in SWEEP_EVENTS:
            done = record.get("done")
            if isinstance(done, dict):
                self.sweep_done.update(
                    {str(k): str(v) for k, v in done.items()}
                )
            failed = record.get("failed")
            if isinstance(failed, dict):
                self.sweep_failed.update(
                    {str(k): str(v) for k, v in failed.items()}
                )
        if EVENT_RANK.get(event, -1) >= EVENT_RANK.get(self.event, -1):
            self.event = event
            self.extra = {
                name: value
                for name, value in record.items()
                if name not in ("v", "seq", "event", "key", "wait",
                                "priority", "payload", "crashes", "sum",
                                "done", "failed")
            }


@dataclass
class ReplayStats:
    """What one replay pass found (surfaced in ``/metrics``)."""

    records: int = 0
    corrupt_lines: int = 0
    torn_tail: bool = False
    live: int = 0
    terminal: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "records": self.records,
            "corrupt_lines": self.corrupt_lines,
            "torn_tail": self.torn_tail,
            "live": self.live,
            "terminal": self.terminal,
        }


class JobJournal:
    """Append-only, fsync'd, checksummed JSONL journal of job states."""

    def __init__(self, path: os.PathLike, fsync: bool = True):
        self.path = Path(path).expanduser()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
        except OSError as err:
            raise JournalError(f"cannot open journal {self.path}: {err}")
        self.fsync = fsync
        self._lock = threading.Lock()
        self._seq = 0
        self.appends = 0
        self.torn_writes = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, event: str, key: str, **fields) -> Dict[str, object]:
        """Durably append one lifecycle record and return it.

        The record is flushed and fsync'd before this returns (unless
        the journal was opened with ``fsync=False``), so callers may
        acknowledge the transition to clients afterwards.
        """
        if event not in EVENT_RANK:
            raise JournalError(
                f"unknown journal event {event!r}; "
                f"known: {', '.join(sorted(EVENT_RANK))}"
            )
        with self._lock:
            self._seq += 1
            record: Dict[str, object] = {
                "v": JOURNAL_VERSION,
                "seq": self._seq,
                "event": event,
                "key": key,
            }
            for name, value in fields.items():
                if value is not None:
                    record[name] = value
            record["sum"] = _checksum(record)
            line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
            torn = faults.torn_write_size(len(line))
            try:
                if torn is not None:
                    # Simulated crash mid-append: persist only a prefix.
                    self.torn_writes += 1
                    self._handle.write(line[:torn])
                else:
                    self._handle.write(line)
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
            except OSError as err:
                raise JournalError(f"journal append failed: {err}")
            self.appends += 1
            return record

    def close(self) -> None:
        with self._lock:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - close on a dead fd
                pass

    # ------------------------------------------------------------------
    # Replay / repair
    # ------------------------------------------------------------------

    def replay(
        self, repair: bool = False
    ) -> Tuple[Dict[str, JournalEntry], ReplayStats]:
        """Reconstruct per-key job state from the journal file.

        Returns ``(entries, stats)`` where *entries* maps content-hash
        key to the furthest-progressed :class:`JournalEntry`.  Corrupt
        lines (bad JSON, bad checksum) are skipped and counted; a final
        line without a trailing newline is a torn write.  With
        ``repair=True`` the file is truncated back to its last intact
        record before the journal continues appending.
        """
        with self._lock:
            self._handle.flush()
            try:
                raw = self.path.read_bytes()
            except OSError as err:
                raise JournalError(f"cannot read journal {self.path}: {err}")
            entries: Dict[str, JournalEntry] = {}
            stats = ReplayStats()
            good_offset = 0
            offset = 0
            max_seq = 0
            for line in raw.splitlines(keepends=True):
                offset += len(line)
                if not line.endswith(b"\n"):
                    stats.torn_tail = True
                    break
                record = self._decode(line)
                if record is None:
                    stats.corrupt_lines += 1
                    # The line is framed (newline-terminated) garbage:
                    # keep scanning — later records are independent.
                    good_offset = offset
                    continue
                good_offset = offset
                stats.records += 1
                max_seq = max(max_seq, int(record.get("seq", 0)))
                key = str(record.get("key"))
                entry = entries.get(key)
                if entry is None:
                    entry = entries[key] = JournalEntry(key=key)
                entry.absorb(record)
            if repair and good_offset < len(raw):
                try:
                    with open(self.path, "r+b") as handle:
                        handle.truncate(good_offset)
                except OSError as err:
                    raise JournalError(
                        f"cannot repair journal {self.path}: {err}"
                    )
            self._seq = max(self._seq, max_seq)
            stats.live = sum(1 for e in entries.values() if not e.terminal)
            stats.terminal = len(entries) - stats.live
            return entries, stats

    @staticmethod
    def _decode(line: bytes) -> Optional[Dict[str, object]]:
        """One line -> record, or ``None`` when it fails validation."""
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict):
            return None
        declared = record.get("sum")
        if not isinstance(declared, str) or _checksum(record) != declared:
            return None
        if record.get("event") not in EVENT_RANK or "key" not in record:
            return None
        return record

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self) -> Tuple[int, int]:
        """Drop terminal histories; keep minimal records per live key.

        Rewrites the journal atomically, renumbered from ``seq=1``: a
        synthesized ``submitted`` record per non-terminal job (payload,
        lane and crash budget preserved); for a non-terminal *sweep*, a
        synthesized ``sweep-submitted`` (spec payload) plus — when the
        sweep has progress — one merged ``sweep-progress`` record, so
        completed chunk indices stay durable across compactions.
        Idempotent: compacting a compacted journal rewrites identical
        content.  Returns ``(kept, dropped)`` key counts.
        """
        entries, _ = self.replay(repair=True)
        live = sorted(
            (entry for entry in entries.values() if not entry.terminal),
            key=lambda entry: entry.key,
        )
        with self._lock:
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent), suffix=".journal.tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    seq = 0

                    def _write(record: Dict[str, object]) -> None:
                        record["sum"] = _checksum(record)
                        handle.write(
                            (json.dumps(record, sort_keys=True) + "\n").encode(
                                "utf-8"
                            )
                        )

                    for entry in live:
                        seq += 1
                        if entry.is_sweep:
                            record: Dict[str, object] = {
                                "v": JOURNAL_VERSION,
                                "seq": seq,
                                "event": "sweep-submitted",
                                "key": entry.key,
                            }
                            if entry.payload is not None:
                                record["payload"] = entry.payload
                            _write(record)
                            if entry.sweep_done or entry.sweep_failed:
                                seq += 1
                                progress: Dict[str, object] = {
                                    "v": JOURNAL_VERSION,
                                    "seq": seq,
                                    "event": "sweep-progress",
                                    "key": entry.key,
                                }
                                if entry.sweep_done:
                                    progress["done"] = dict(entry.sweep_done)
                                if entry.sweep_failed:
                                    progress["failed"] = dict(
                                        entry.sweep_failed
                                    )
                                _write(progress)
                            continue
                        record = {
                            "v": JOURNAL_VERSION,
                            "seq": seq,
                            "event": "submitted",
                            "key": entry.key,
                            "wait": entry.wait,
                            "priority": entry.priority,
                        }
                        if entry.payload is not None:
                            record["payload"] = entry.payload
                        if entry.crashes:
                            record["crashes"] = entry.crashes
                        _write(record)
                    handle.flush()
                    if self.fsync:
                        os.fsync(handle.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - close on a dead fd
                pass
            try:
                self._handle = open(self.path, "ab")
            except OSError as err:
                raise JournalError(
                    f"cannot reopen compacted journal {self.path}: {err}"
                )
            self._seq = seq
            self.compactions += 1
        return len(live), len(entries) - len(live)

    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, object]:
        return {
            "path": str(self.path),
            "appends": self.appends,
            "compactions": self.compactions,
            "torn_writes": self.torn_writes,
        }

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<JobJournal {str(self.path)!r} seq={self._seq}>"
