"""CI smoke driver for the compilation service.

``python -m repro.service.smoke --out metrics.json`` starts a real
``repro serve`` daemon as a subprocess, drives a cold burst, a warm
(LRU-served) burst and a concurrent identical burst through
:class:`~repro.service.client.ServiceClient`, asserts the ``/metrics``
counters tell the right story, SIGTERMs the daemon and checks it drains
cleanly.  The collected metrics land in the ``--out`` JSON (uploaded as
a CI artifact) so a failing run leaves evidence behind.

Exit status 0 = every check passed.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List

from ..errors import ServiceError
from .client import ServiceClient

#: (payload, label) pairs for the cold/warm bursts: small kernels across
#: distinct machines so each is its own cache entry.
BURST = [
    ({"kernel": "fir_filter", "clusters": 4, "config": {"search": "ladder"}}, "fir/ring4"),
    ({"kernel": "daxpy", "clusters": 2, "config": {"search": "ladder"}}, "daxpy/ring2"),
    ({"kernel": "dot_product", "clusters": 4, "topology": "mesh",
      "config": {"search": "ladder"}}, "dot/mesh4"),
    ({"kernel": "vector_add", "clusters": 2, "unclustered": True,
      "config": {"search": "ladder"}}, "vadd/unclustered"),
]

#: Payload for the dedup burst (untouched by BURST so it starts cold).
DEDUP_PAYLOAD = {
    "kernel": "complex_multiply",
    "clusters": 4,
    "config": {"search": "ladder"},
}
DEDUP_FANOUT = 6


class SmokeFailure(Exception):
    pass


def _check(checks: List[Dict[str, object]], name: str, ok: bool, detail: str) -> None:
    checks.append({"check": name, "ok": bool(ok), "detail": detail})
    marker = "ok" if ok else "FAIL"
    print(f"[smoke] {marker:<4} {name}: {detail}", flush=True)
    if not ok:
        raise SmokeFailure(f"{name}: {detail}")


def _wait_for_port_file(path: str, timeout: float) -> str:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if os.path.exists(path):
            with open(path) as handle:
                text = handle.read().strip()
            if text:
                return text
        time.sleep(0.1)
    raise SmokeFailure(f"daemon never wrote {path}")


def run_smoke(args: argparse.Namespace) -> int:
    checks: List[Dict[str, object]] = []
    artifact: Dict[str, object] = {"checks": checks}
    tmp = tempfile.mkdtemp(prefix="repro-smoke-")
    port_file = os.path.join(tmp, "port.txt")
    final_metrics_path = os.path.join(tmp, "final_metrics.json")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--workers", str(args.workers),
            "--lru-capacity", "64",
            "--port-file", port_file,
            "--metrics-out", final_metrics_path,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        address = _wait_for_port_file(port_file, args.timeout)
        client = ServiceClient(address, timeout=args.timeout)
        _check(checks, "startup", client.healthz().get("status") == "ok",
               f"daemon healthy at {address}")

        # Cold burst: every payload compiles.
        for payload, label in BURST:
            result = client.compile(payload)
            _check(
                checks, f"cold:{label}",
                result["served_from"] == "compile",
                f"served_from={result['served_from']} "
                f"ii={result['report']['ii']}",
            )
        cold = client.metrics()
        _check(checks, "cold-compiles",
               cold["compiles"]["started"] == len(BURST),
               f"{cold['compiles']['started']} compiles for {len(BURST)} requests")

        # Warm burst: same payloads, zero new compiles, all memory hits.
        for payload, label in BURST:
            result = client.compile(payload)
            _check(
                checks, f"warm:{label}",
                result["served_from"] == "memory",
                f"served_from={result['served_from']}",
            )
        warm = client.metrics()
        _check(checks, "warm-no-compiles",
               warm["compiles"]["started"] == cold["compiles"]["started"],
               "warm burst started no new compiles")
        _check(checks, "warm-hit-ratio",
               warm["cache"]["memory_hits"] >= len(BURST)
               and warm["cache"]["hit_ratio"] >= 0.4,
               f"memory_hits={warm['cache']['memory_hits']} "
               f"hit_ratio={warm['cache']['hit_ratio']:.2f}")

        # Dedup burst: identical concurrent requests coalesce onto one
        # compile (stragglers that arrive after completion hit the LRU).
        with ThreadPoolExecutor(max_workers=DEDUP_FANOUT) as pool:
            results = list(
                pool.map(
                    lambda _: client.compile(dict(DEDUP_PAYLOAD)),
                    range(DEDUP_FANOUT),
                )
            )
        sources = sorted(r["served_from"] for r in results)
        fingerprints = {r["fingerprint"] for r in results}
        after = client.metrics()
        _check(checks, "dedup-one-compile",
               after["compiles"]["started"] == cold["compiles"]["started"] + 1,
               f"{DEDUP_FANOUT} identical requests -> "
               f"{after['compiles']['started'] - cold['compiles']['started']} compile(s); "
               f"sources={sources}")
        _check(checks, "dedup-identical-results", len(fingerprints) == 1,
               f"{len(fingerprints)} distinct fingerprint(s)")

        latency = after["latency_ms"]
        _check(checks, "latency-histogram",
               latency["count"] >= 2 * len(BURST) + DEDUP_FANOUT - after["dedup"]["coalesced"]
               and latency["p50_ms"] is not None,
               f"count={latency['count']} p50={latency['p50_ms']}ms "
               f"p99={latency['p99_ms']}ms")
        artifact["live_metrics"] = after

        # Graceful drain on SIGTERM.
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=args.timeout)
        _check(checks, "clean-shutdown", proc.returncode == 0,
               f"exit={proc.returncode}")
        _check(checks, "final-metrics-file",
               os.path.exists(final_metrics_path),
               final_metrics_path)
        with open(final_metrics_path) as handle:
            final = json.load(handle)
        artifact["final_metrics"] = final
        _check(checks, "drained-flag", final["draining"] is True,
               "final snapshot carries draining=true")
        artifact["daemon_stdout"] = out
        artifact["daemon_stderr"] = err
        status = 0
    except (SmokeFailure, ServiceError, subprocess.TimeoutExpired) as err:
        artifact["error"] = str(err)
        status = 1
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[smoke] wrote {args.out}", flush=True)
    print(f"[smoke] {'PASS' if status == 0 else 'FAIL'}", flush=True)
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.smoke",
        description="end-to-end smoke test of the repro serve daemon",
    )
    parser.add_argument(
        "--out", type=str, default=None, help="write the metrics artifact here"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="daemon process-pool width"
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0, help="per-step timeout (s)"
    )
    return run_smoke(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
