"""CI smoke drivers for the compilation service.

``python -m repro.service.smoke --out metrics.json`` starts a real
``repro serve`` daemon as a subprocess, drives a cold burst, a warm
(LRU-served) burst and a concurrent identical burst through
:class:`~repro.service.client.ServiceClient`, asserts the ``/metrics``
counters tell the right story, SIGTERMs the daemon and checks it drains
cleanly.  The collected metrics land in the ``--out`` JSON (uploaded as
a CI artifact) so a failing run leaves evidence behind.

``--chaos --seed N`` runs the fault-tolerance story instead, end to end
against real processes:

1. a daemon armed with deterministic faults (a worker crash, connection
   resets, jittered slow compiles) serves a burst — every request must
   still succeed, the pool must respawn rather than drain, and the
   client must have retried transport errors;
2. a second daemon takes ``wait=false`` submissions into a persistent
   journal and is then killed with SIGKILL mid-compile;
3. a third daemon on the same journal + cache replays the interrupted
   jobs to completion; their results must be served from cache and be
   bit-identical to local compiles of the same payloads.

``--dist --seed N`` runs the distributed-sweep story (PR 10): a
coordinator daemon plus two ``repro worker`` subprocesses execute one
sweep under heartbeat leases; one worker is SIGKILLed mid-chunk, then
the coordinator itself is SIGKILLed and restarted on the same journal +
cache.  The sweep must still complete, at least one lease must have
expired and been requeued, and every per-job fingerprint must be
bit-identical to a local single-host compile of the same job space.

All deadlines use ``time.monotonic()`` — wall-clock (``time.time()``)
deadlines go wrong under NTP steps exactly when a long chaos run is in
flight.

Exit status 0 = every check passed.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from ..errors import ServiceError
from .client import RetryPolicy, ServiceClient

#: (payload, label) pairs for the cold/warm bursts: small kernels across
#: distinct machines so each is its own cache entry.
BURST = [
    ({"kernel": "fir_filter", "clusters": 4, "config": {"search": "ladder"}}, "fir/ring4"),
    ({"kernel": "daxpy", "clusters": 2, "config": {"search": "ladder"}}, "daxpy/ring2"),
    ({"kernel": "dot_product", "clusters": 4, "topology": "mesh",
      "config": {"search": "ladder"}}, "dot/mesh4"),
    ({"kernel": "vector_add", "clusters": 2, "unclustered": True,
      "config": {"search": "ladder"}}, "vadd/unclustered"),
]

#: Payload for the dedup burst (untouched by BURST so it starts cold).
DEDUP_PAYLOAD = {
    "kernel": "complex_multiply",
    "clusters": 4,
    "config": {"search": "ladder"},
}
DEDUP_FANOUT = 6

#: Fault plan for the chaos burst phase: each worker process counts its
#: own occurrences, so ``worker-crash:times=2`` means "a worker dies on
#: its second compile" — with 2 workers and 4 serial compiles some
#: worker must reach 2, guaranteeing at least one pool respawn, while
#: respawned (fresh) workers always survive a retried job's first
#: attempt.  ``conn-reset`` counts in the daemon process: its second
#: response write is aborted, forcing a client transport retry.
CHAOS_FAULTS = "worker-crash:times=2;conn-reset:times=2;slow-compile:rate=0.3:delay=0.05"

#: Fault plan for the kill/restart phase: every compile sleeps long
#: enough that SIGKILL reliably lands while the jobs are live.
KILL_PHASE_FAULTS = "slow-compile:every=1:delay=3"

#: ``wait=false`` payloads for the kill/restart phase — disjoint from
#: BURST/DEDUP so nothing is pre-cached.
RECOVERY_PAYLOADS = [
    ({"kernel": "dot_product", "clusters": 2, "wait": False}, "dot/ring2"),
    ({"kernel": "daxpy", "clusters": 4, "wait": False}, "daxpy/ring4"),
]


class SmokeFailure(Exception):
    pass


def _check(checks: List[Dict[str, object]], name: str, ok: bool, detail: str) -> None:
    checks.append({"check": name, "ok": bool(ok), "detail": detail})
    marker = "ok" if ok else "FAIL"
    print(f"[smoke] {marker:<4} {name}: {detail}", flush=True)
    if not ok:
        raise SmokeFailure(f"{name}: {detail}")


def _wait_for_port_file(path: str, timeout: float) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            with open(path) as handle:
                text = handle.read().strip()
            if text:
                return text
        time.sleep(0.1)
    raise SmokeFailure(f"daemon never wrote {path}")


def _start_daemon(
    port_file: str,
    workers: int,
    extra: Optional[List[str]] = None,
) -> subprocess.Popen:
    # Each daemon gets its own session (= process group): its spawned
    # pool workers inherit the stdout/stderr pipes, so killing only the
    # daemon would leave orphans holding the pipes open and a later
    # communicate() waiting for EOF forever.  _kill_hard() takes the
    # whole group down instead.
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--workers", str(workers),
            "--lru-capacity", "64",
            "--port-file", port_file,
            *(extra or []),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        start_new_session=True,
    )


def _kill_hard(proc: subprocess.Popen) -> None:
    """SIGKILL the daemon *and* its pool workers (whole process group)."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except (OSError, AttributeError):  # group already gone / no killpg
        proc.kill()
    proc.communicate()


def _local_fingerprint(payload: Dict[str, object]) -> object:
    """The JSON-normalized fingerprint of compiling *payload* locally."""
    from ..api import Toolchain
    from ..scheduling.fingerprint import schedule_fingerprint
    from .jobs import parse_compile_payload

    body = {k: v for k, v in payload.items() if k != "wait"}
    report = Toolchain.default().compile(parse_compile_payload(body).request)
    # The service ships fingerprints through JSON (tuples -> lists);
    # normalize the local one the same way before comparing.
    return json.loads(json.dumps(schedule_fingerprint(report.result)))


# ----------------------------------------------------------------------
# Normal mode
# ----------------------------------------------------------------------


def run_smoke(args: argparse.Namespace) -> int:
    checks: List[Dict[str, object]] = []
    artifact: Dict[str, object] = {"checks": checks}
    tmp = tempfile.mkdtemp(prefix="repro-smoke-")
    port_file = os.path.join(tmp, "port.txt")
    final_metrics_path = os.path.join(tmp, "final_metrics.json")
    proc = _start_daemon(
        port_file, args.workers, ["--metrics-out", final_metrics_path]
    )
    try:
        address = _wait_for_port_file(port_file, args.timeout)
        client = ServiceClient(address, timeout=args.timeout)
        _check(checks, "startup", client.healthz().get("status") == "ok",
               f"daemon healthy at {address}")

        # Cold burst: every payload compiles.
        for payload, label in BURST:
            result = client.compile(payload)
            _check(
                checks, f"cold:{label}",
                result["served_from"] == "compile",
                f"served_from={result['served_from']} "
                f"ii={result['report']['ii']}",
            )
        cold = client.metrics()
        _check(checks, "cold-compiles",
               cold["compiles"]["started"] == len(BURST),
               f"{cold['compiles']['started']} compiles for {len(BURST)} requests")

        # Warm burst: same payloads, zero new compiles, all memory hits.
        for payload, label in BURST:
            result = client.compile(payload)
            _check(
                checks, f"warm:{label}",
                result["served_from"] == "memory",
                f"served_from={result['served_from']}",
            )
        warm = client.metrics()
        _check(checks, "warm-no-compiles",
               warm["compiles"]["started"] == cold["compiles"]["started"],
               "warm burst started no new compiles")
        _check(checks, "warm-hit-ratio",
               warm["cache"]["memory_hits"] >= len(BURST)
               and warm["cache"]["hit_ratio"] >= 0.4,
               f"memory_hits={warm['cache']['memory_hits']} "
               f"hit_ratio={warm['cache']['hit_ratio']:.2f}")

        # Dedup burst: identical concurrent requests coalesce onto one
        # compile (stragglers that arrive after completion hit the LRU).
        with ThreadPoolExecutor(max_workers=DEDUP_FANOUT) as pool:
            results = list(
                pool.map(
                    lambda _: client.compile(dict(DEDUP_PAYLOAD)),
                    range(DEDUP_FANOUT),
                )
            )
        sources = sorted(r["served_from"] for r in results)
        fingerprints = {json.dumps(r["fingerprint"]) for r in results}
        after = client.metrics()
        _check(checks, "dedup-one-compile",
               after["compiles"]["started"] == cold["compiles"]["started"] + 1,
               f"{DEDUP_FANOUT} identical requests -> "
               f"{after['compiles']['started'] - cold['compiles']['started']} compile(s); "
               f"sources={sources}")
        _check(checks, "dedup-identical-results", len(fingerprints) == 1,
               f"{len(fingerprints)} distinct fingerprint(s)")

        latency = after["latency_ms"]
        _check(checks, "latency-histogram",
               latency["count"] >= 2 * len(BURST) + DEDUP_FANOUT - after["dedup"]["coalesced"]
               and latency["p50_ms"] is not None,
               f"count={latency['count']} p50={latency['p50_ms']}ms "
               f"p99={latency['p99_ms']}ms")
        artifact["live_metrics"] = after

        # Graceful drain on SIGTERM.
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=args.timeout)
        _check(checks, "clean-shutdown", proc.returncode == 0,
               f"exit={proc.returncode}")
        _check(checks, "final-metrics-file",
               os.path.exists(final_metrics_path),
               final_metrics_path)
        with open(final_metrics_path) as handle:
            final = json.load(handle)
        artifact["final_metrics"] = final
        _check(checks, "drained-flag", final["draining"] is True,
               "final snapshot carries draining=true")
        artifact["daemon_stdout"] = out
        artifact["daemon_stderr"] = err
        status = 0
    except (SmokeFailure, ServiceError, subprocess.TimeoutExpired) as err:
        artifact["error"] = str(err)
        status = 1
    finally:
        if proc.poll() is None:
            _kill_hard(proc)
    _write_artifact(args.out, artifact)
    print(f"[smoke] {'PASS' if status == 0 else 'FAIL'}", flush=True)
    return status


# ----------------------------------------------------------------------
# Chaos mode
# ----------------------------------------------------------------------


def run_chaos(args: argparse.Namespace) -> int:
    checks: List[Dict[str, object]] = []
    artifact: Dict[str, object] = {"checks": checks, "seed": args.seed}
    tmp = tempfile.mkdtemp(prefix="repro-chaos-")
    journal = os.path.join(tmp, "journal.jsonl")
    cache_dir = os.path.join(tmp, "cache")
    procs: List[subprocess.Popen] = []

    def daemon(name: str, extra: List[str]) -> ServiceClient:
        port_file = os.path.join(tmp, f"{name}.port")
        proc = _start_daemon(
            port_file, args.workers,
            ["--journal", journal, "--cache", cache_dir, *extra],
        )
        procs.append(proc)
        address = _wait_for_port_file(port_file, args.timeout)
        return ServiceClient(
            address,
            policy=RetryPolicy(
                max_attempts=5,
                connect_timeout=10.0,
                read_timeout=args.timeout,
                jitter_seed=args.seed,
            ),
        )

    try:
        # Phase 1 — fault-armed burst: a worker crash and connection
        # resets, but every request still succeeds.
        client = daemon(
            "chaos",
            ["--faults", CHAOS_FAULTS, "--fault-seed", str(args.seed)],
        )
        _check(checks, "chaos-startup",
               client.healthz().get("status") == "ok", "fault-armed daemon up")
        for payload, label in BURST:
            result = client.compile(payload)
            _check(checks, f"chaos:{label}",
                   result.get("status") == "done" and "fingerprint" in result,
                   f"served_from={result['served_from']}")
        live = client.metrics()
        supervisor = live["supervisor"]
        _check(checks, "chaos-pool-respawned",
               supervisor["pool_respawns"] >= 1
               and supervisor["worker_crashes"] >= 1,
               f"respawns={supervisor['pool_respawns']} "
               f"crashes={supervisor['worker_crashes']}")
        _check(checks, "chaos-no-drain", live["draining"] is False,
               "daemon survived the crash without draining")
        _check(checks, "chaos-client-retried",
               client.retries["transport"] >= 1,
               f"transport retries={client.retries['transport']}")
        artifact["chaos_metrics"] = live
        procs[-1].send_signal(signal.SIGTERM)
        out, err = procs[-1].communicate(timeout=args.timeout)
        _check(checks, "chaos-clean-drain", procs[-1].returncode == 0,
               f"exit={procs[-1].returncode}")

        # Phase 2 — journal durability: wait=false jobs acknowledged,
        # then the daemon is SIGKILLed mid-compile.
        client = daemon("victim", ["--faults", KILL_PHASE_FAULTS])
        for payload, label in RECOVERY_PAYLOADS:
            receipt = client.compile(dict(payload), wait=False)
            _check(checks, f"submit:{label}", "job" in receipt,
                   f"202 receipt job={receipt.get('job')}")
        _kill_hard(procs[-1])
        _check(checks, "hard-kill", True, "daemon killed with SIGKILL")

        # Phase 3 — recovery: a fresh daemon on the same journal + cache
        # replays the interrupted jobs to completion.
        client = daemon("recovery", [])
        recovered = client.metrics()["journal"]
        _check(checks, "journal-replayed",
               recovered is not None
               and recovered["recovered_jobs"] == len(RECOVERY_PAYLOADS),
               f"recovered_jobs={recovered and recovered['recovered_jobs']}")
        deadline = time.monotonic() + args.timeout
        while time.monotonic() < deadline:
            snap = client.metrics()
            done = snap["compiles"]["completed"] >= len(RECOVERY_PAYLOADS)
            idle = snap["in_flight"] == 0 and snap["queue_depth"]["total"] == 0
            if done and idle:
                break
            time.sleep(0.2)
        else:
            raise SmokeFailure("recovered jobs never finished")
        for payload, label in RECOVERY_PAYLOADS:
            body = {k: v for k, v in payload.items() if k != "wait"}
            result = client.compile(body)
            _check(checks, f"recovered:{label}",
                   result["served_from"] in ("memory", "disk"),
                   f"served_from={result['served_from']}")
            _check(checks, f"bit-identical:{label}",
                   result["fingerprint"] == _local_fingerprint(payload),
                   "recovered result matches a local compile")
        artifact["recovery_metrics"] = client.metrics()
        procs[-1].send_signal(signal.SIGTERM)
        procs[-1].communicate(timeout=args.timeout)
        _check(checks, "recovery-clean-drain", procs[-1].returncode == 0,
               f"exit={procs[-1].returncode}")
        status = 0
    except (SmokeFailure, ServiceError, subprocess.TimeoutExpired) as err:
        artifact["error"] = str(err)
        status = 1
    finally:
        for proc in procs:
            if proc.poll() is None:
                _kill_hard(proc)
    try:
        with open(journal) as handle:
            artifact["journal"] = handle.read()
    except OSError:
        artifact["journal"] = None
    _write_artifact(args.out, artifact)
    if args.out and artifact.get("journal"):
        journal_out = os.path.splitext(args.out)[0] + "-journal.jsonl"
        with open(journal_out, "w") as handle:
            handle.write(artifact["journal"])
        print(f"[smoke] wrote {journal_out}", flush=True)
    print(f"[smoke] chaos {'PASS' if status == 0 else 'FAIL'}", flush=True)
    return status


# ----------------------------------------------------------------------
# Distributed-sweep mode
# ----------------------------------------------------------------------

#: The dist-smoke sweep: 8 jobs, short leases so a vanished worker's
#: chunk requeues within seconds, generous requeue budget so the two
#: injected kills never push a job into poison quarantine.
DIST_SPEC = {
    "kernels": ["fir_filter", "daxpy", "vector_add", "dot_product"],
    "clusters": [2, 4],
    "topologies": ["ring"],
    "config": {"search": "ladder"},
    "lease": 1.5,
    "max_requeues": 8,
    "label": "dist-smoke",
}

#: Every worker job sleeps 0.4s, so the SIGKILLs below reliably land
#: while chunks are leased (and the heartbeat threads are exercised).
DIST_WORKER_FAULTS = "slow-worker:every=1:delay=0.4"


def _start_worker(address: str, name: str, faults: str, seed: int) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--coordinator", address,
            "--name", name,
            "--poll", "0.1",
            "--idle-exit", "20",
            "--max-chunk", "2",
            "--faults", faults,
            "--fault-seed", str(seed),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        start_new_session=True,
    )


def run_dist(args: argparse.Namespace) -> int:
    checks: List[Dict[str, object]] = []
    artifact: Dict[str, object] = {"checks": checks, "seed": args.seed}
    tmp = tempfile.mkdtemp(prefix="repro-dist-")
    journal = os.path.join(tmp, "journal.jsonl")
    cache_dir = os.path.join(tmp, "cache")
    procs: List[subprocess.Popen] = []

    def coordinator(name: str, port: int = 0) -> ServiceClient:
        port_file = os.path.join(tmp, f"{name}.port")
        proc = _start_daemon(
            port_file, 0,
            ["--journal", journal, "--cache", cache_dir,
             "--port", str(port)],
        )
        procs.append(proc)
        address = _wait_for_port_file(port_file, args.timeout)
        return ServiceClient(
            address,
            policy=RetryPolicy(
                max_attempts=5,
                connect_timeout=10.0,
                read_timeout=args.timeout,
                jitter_seed=args.seed,
            ),
        )

    def victim_claims(client: ServiceClient) -> int:
        section = client.metrics().get("sweep")
        if not section:
            return 0
        return int(section["workers"].get("victim", {}).get("claims", 0))

    try:
        client = coordinator("coordinator")
        address = f"{client.host}:{client.port}"
        _check(checks, "dist-startup",
               client.healthz().get("status") == "ok",
               f"coordinator up at {address}")
        status_doc = client.submit_sweep(dict(DIST_SPEC, seed=args.seed))
        sweep_id = str(status_doc["sweep"])
        _check(checks, "dist-submit",
               status_doc["state"] == "open" and status_doc["total"] == 8,
               f"sweep {sweep_id}: {status_doc['total']} jobs enumerated")
        _check(checks, "dist-idempotent-submit",
               client.submit_sweep(dict(DIST_SPEC, seed=args.seed))["sweep"]
               == sweep_id,
               "re-POST of the same spec returned the same sweep")

        victim = _start_worker(address, "victim", DIST_WORKER_FAULTS, args.seed)
        survivor = _start_worker(address, "survivor", DIST_WORKER_FAULTS, args.seed)
        procs += [victim, survivor]

        # Wait for the victim to hold a lease, then SIGKILL it mid-chunk.
        deadline = time.monotonic() + args.timeout
        while time.monotonic() < deadline and victim_claims(client) == 0:
            time.sleep(0.1)
        _check(checks, "dist-victim-engaged", victim_claims(client) >= 1,
               "victim worker claimed a chunk")
        _kill_hard(victim)
        _check(checks, "dist-worker-killed", True,
               "victim worker SIGKILLed mid-chunk")

        # The victim's lease expires without a heartbeat and the live
        # coordinator requeues its chunk.  Observe that *before* killing
        # the coordinator: the counters are in-memory, and after the
        # restart the replay re-advertises the chunk without ever having
        # seen its lease.
        deadline = time.monotonic() + args.timeout
        expiries = 0
        while time.monotonic() < deadline and expiries == 0:
            section = client.metrics().get("sweep") or {}
            expiries = int(section.get("chunks", {}).get("lease_expiries", 0))
            if expiries == 0:
                time.sleep(0.2)
        artifact["sweep_metrics_before_kill"] = section
        _check(checks, "dist-lease-recovered",
               expiries >= 1
               and section["chunks"]["requeued"] >= 1,
               f"lease_expiries={expiries} "
               f"requeued={section['chunks']['requeued']}")

        # Now SIGKILL the coordinator itself and restart it on the same
        # journal + cache + port (the survivor keeps polling that port).
        port = client.port
        _kill_hard(procs[0])
        client = coordinator("restarted", port=port)
        _check(checks, "dist-coordinator-restarted",
               client.healthz().get("status") == "ok",
               f"coordinator SIGKILLed and restarted on port {port}")
        recovered_doc = client.sweep(sweep_id)
        _check(checks, "dist-sweep-recovered",
               recovered_doc.get("recovered") is True,
               f"journal replay brought the sweep back "
               f"({recovered_doc['done']}/{recovered_doc['total']} done)")

        # The surviving worker rides out the outage and drains the rest.
        deadline = time.monotonic() + args.timeout
        while time.monotonic() < deadline:
            final = client.sweep(sweep_id)
            if final["state"] != "open":
                break
            time.sleep(0.25)
        _check(checks, "dist-sweep-completed",
               final["state"] == "done" and final["done"] == final["total"],
               f"state={final['state']} done={final['done']}/{final['total']}")

        artifact["sweep_metrics"] = client.metrics()["sweep"]

        # Bit-identity: every distributed fingerprint equals the local
        # single-host compile of the same payload.
        detail = client.sweep(sweep_id, jobs=True)
        by_index = {job["index"]: job for job in detail["jobs"]}
        from ..api import Toolchain
        from .sweep import enumerate_sweep

        plan = enumerate_sweep(dict(DIST_SPEC, seed=args.seed), Toolchain.default())
        for index, payload in enumerate(plan.payloads):
            _check(checks, f"dist-bit-identical:{index}",
                   by_index[index]["fingerprint"] == _local_fingerprint(payload),
                   f"{payload['kernel']}/ring{payload['clusters']} matches "
                   f"a local compile")

        survivor.send_signal(signal.SIGTERM)
        survivor.communicate(timeout=args.timeout)
        procs[-1].send_signal(signal.SIGTERM)
        out, err = procs[-1].communicate(timeout=args.timeout)
        _check(checks, "dist-clean-drain", procs[-1].returncode == 0,
               f"coordinator exit={procs[-1].returncode}")
        artifact["daemon_stdout"] = out
        artifact["daemon_stderr"] = err
        status = 0
    except (SmokeFailure, ServiceError, subprocess.TimeoutExpired) as err:
        artifact["error"] = str(err)
        status = 1
    finally:
        for proc in procs:
            if proc.poll() is None:
                _kill_hard(proc)
    try:
        with open(journal) as handle:
            artifact["journal"] = handle.read()
    except OSError:
        artifact["journal"] = None
    _write_artifact(args.out, artifact)
    if args.out and artifact.get("journal"):
        journal_out = os.path.splitext(args.out)[0] + "-journal.jsonl"
        with open(journal_out, "w") as handle:
            handle.write(artifact["journal"])
        print(f"[smoke] wrote {journal_out}", flush=True)
    print(f"[smoke] dist {'PASS' if status == 0 else 'FAIL'}", flush=True)
    return status


def _write_artifact(out: Optional[str], artifact: Dict[str, object]) -> None:
    if not out:
        return
    with open(out, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[smoke] wrote {out}", flush=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.smoke",
        description="end-to-end smoke test of the repro serve daemon",
    )
    parser.add_argument(
        "--out", type=str, default=None, help="write the metrics artifact here"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="daemon process-pool width"
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0, help="per-step timeout (s)"
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="run the fault-injection / kill-restart story instead",
    )
    parser.add_argument(
        "--dist", action="store_true",
        help="run the distributed-sweep kill/restart story instead",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="fault-plan and client-jitter seed for --chaos/--dist (default: 0)",
    )
    args = parser.parse_args(argv)
    if args.chaos:
        return run_chaos(args)
    if args.dist:
        return run_dist(args)
    return run_smoke(args)


if __name__ == "__main__":
    raise SystemExit(main())
