"""The compilation daemon: ``repro serve``.

A :class:`CompileService` is a long-lived asyncio process that keeps the
expensive state of a compile session resident between requests:

* a **warm executor** — worker processes are spawned once and reused, so
  repeat traffic never pays cold-start or re-import cost (the same pool
  object can be lent to a :class:`~repro.api.batch.BatchCompiler` via its
  ``pool=`` parameter);
* an **in-memory LRU** (:class:`~repro.api.cache.MemoryCache`) in front
  of the PR-1 content-hash disk cache, composed as a
  :class:`~repro.api.cache.TieredCache`: a warm repeat compile is served
  without touching the scheduler *or* the filesystem;
* an **in-flight table** keyed by the batch-cache content hash: identical
  concurrent requests coalesce onto one future and one underlying
  compile;
* **admission control** — a bounded queue with three priority lanes
  (``high``/``normal``/``low``); when the queue is full a low-priority
  queued job is shed to admit a higher-priority one, otherwise the new
  request is rejected;
* per-job **event streams** (``GET /jobs/<id>/events``, chunked JSON
  lines): admission, dispatch, per-pass timings and the II trajectory;
* ``/healthz`` and ``/metrics`` with queue depth, in-flight count,
  LRU/disk hit ratios, a latency histogram and admission counters;
* **graceful drain**: on SIGTERM the daemon stops admitting, finishes
  in-flight jobs, flushes its final metrics and exits cleanly;
* a **persistent job journal** (:mod:`repro.service.journal`): every
  lifecycle transition is fsync'd to an append-only JSONL file *before*
  the client is acknowledged, and on startup the daemon replays it —
  interrupted ``wait=false`` jobs are re-enqueued, orphaned waiting
  jobs are closed out, and the journal is compacted — so a ``kill -9``
  loses no submitted work;
* **pool supervision** (:mod:`repro.service.supervisor`): a
  ``BrokenExecutor`` respawns the warm pool and retries the in-flight
  job under a bounded budget instead of draining the daemon; jobs that
  kill workers twice are quarantined as poison;
* deterministic **fault injection** (:mod:`repro.faults`): the
  ``worker-crash``/``slow-compile``/``conn-reset`` points thread
  through the compile path and the HTTP writer so every recovery path
  above is testable on demand.

Since PR 10 the daemon also acts as a **sweep coordinator**
(:mod:`repro.service.sweep`): pull-based ``repro worker`` processes
claim self-scheduled chunks of a sweep's job space under heartbeat
leases, and the sweep ledger rides the same journal so open sweeps
survive a coordinator ``kill -9``.

The HTTP surface (see :mod:`repro.service.http` for framing):

=======  ==========================  =====================================
method   path                        meaning
=======  ==========================  =====================================
GET      ``/healthz``                liveness + drain state
GET      ``/metrics``                full metrics JSON
POST     ``/compile``                compile payload
                                     (:mod:`repro.service.jobs`); blocks
                                     until done unless ``"wait": false``
GET      ``/jobs/<id>``              job status / result
GET      ``/jobs/<id>/events``       chunked event stream until terminal
                                     (``?since=N`` resumes at offset N)
GET      ``/sweeps``                 list sweeps
POST     ``/sweeps``                 submit a sweep spec (idempotent)
GET      ``/sweeps/<id>``            sweep status (``?jobs=1`` for detail)
GET      ``/sweeps/<id>/results``    per-job results page
POST     ``/sweeps/<id>/claim``      worker: claim a chunk under a lease
POST     ``/sweeps/<id>/heartbeat``  worker: extend a chunk lease
POST     ``/sweeps/<id>/complete``   worker: deliver chunk results
=======  ==========================  =====================================
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import sys
import time
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Deque, Dict, Optional, Tuple

from .. import faults
from ..api import CompilationReport, CompilationRequest, Toolchain, content_hash
from ..api.cache import CompilationCache, MemoryCache, TieredCache
from ..errors import ReproError, ServiceError
from ..scheduling.fingerprint import schedule_fingerprint
from . import http as h
from .jobs import PRIORITY_LANES, ParsedJob, parse_compile_payload
from .journal import JobJournal, JournalEntry
from .metrics import ServiceMetrics
from .supervisor import PoolSupervisor
from .sweep import SweepCoordinator, encode_report

#: Job states; the last four are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "shed", "quarantined")
_TERMINAL = frozenset({"done", "failed", "shed", "quarantined"})

#: Jobs to retain in the id registry after completion (for /jobs/<id>).
_JOB_HISTORY = 1024

#: Backoff hint (seconds) sent as ``Retry-After`` with 429 rejections.
#: Queue-full is transient at compile timescales; a quarter second is
#: long enough for a dispatch slot to open without idling the client.
RETRY_AFTER_HINT = 0.25


def _execute_request(
    toolchain: Toolchain, request: CompilationRequest
) -> CompilationReport:
    """Executor-side compile entry point (module-level: picklable)."""
    faults.slowpoint("slow-compile")
    faults.crashpoint("worker-crash")
    return toolchain.compile(request)


def _warm_probe(hold_seconds: float) -> int:
    """Pool pre-warm task: spin up a worker and hold it briefly."""
    time.sleep(hold_seconds)
    return 0


def _retry_headers(err: ServiceError) -> Optional[Dict[str, str]]:
    """The ``Retry-After`` header for backpressure errors, else ``None``."""
    if err.retry_after is None:
        return None
    return {"Retry-After": f"{err.retry_after:g}"}


class Job:
    """One admitted compile job and its observers."""

    def __init__(self, job_id: int, key: str, parsed: ParsedJob):
        self.id = job_id
        self.key = key
        self.parsed = parsed
        self.state = "queued"
        self.created = time.time()
        self.subscribers = 1
        self.crashes = 0  # workers this job has killed (supervisor budget)
        self.pool_generation = 0  # pool generation it last dispatched on
        self.recovered = False  # re-enqueued from the journal on startup
        self.events: list = []
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._signal = asyncio.Event()

    @property
    def request(self) -> CompilationRequest:
        return self.parsed.request

    @property
    def lane(self) -> str:
        return self.parsed.priority

    @property
    def wait(self) -> bool:
        return self.parsed.wait

    def emit(self, event: str, **fields) -> None:
        entry = {"event": event, "job": self.id, "t": round(time.time(), 3)}
        entry.update(fields)
        self.events.append(entry)
        self._signal.set()

    def describe(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "job": self.id,
            "status": self.state,
            "priority": self.lane,
            "loop": self.request.loop.name,
            "machine": self.request.machine.name,
            "subscribers": self.subscribers,
            "events": len(self.events),
        }
        if self.crashes:
            info["crashes"] = self.crashes
        if self.recovered:
            info["recovered"] = True
        if self.state == "done":
            info["result"] = self.future.result()
        elif self.state in _TERMINAL:
            err = self.future.exception()
            info["error"] = str(err)
        return info

    async def stream_events(self, start: int = 0):
        """Yield events in order until the job reaches a terminal state.

        *start* skips already-consumed events, so a client whose stream
        connection died can reconnect with ``?since=N`` and resume
        exactly where it left off instead of replaying from zero.
        """
        index = max(0, start)
        while True:
            while index < len(self.events):
                yield self.events[index]
                index += 1
            if self.state in _TERMINAL:
                return
            self._signal.clear()
            if index < len(self.events) or self.state in _TERMINAL:
                continue
            await self._signal.wait()


class CompileService:
    """The resident compile daemon (see module docstring)."""

    def __init__(
        self,
        toolchain: Optional[Toolchain] = None,
        workers: Optional[int] = None,
        lru_capacity: int = 256,
        disk_cache: Optional[object] = None,
        max_queue_depth: int = 64,
        executor: Optional[Executor] = None,
        compile_fn=None,
        journal: Optional[object] = None,
        max_job_crashes: int = 2,
        max_respawns: int = 8,
    ):
        """
        Args:
            toolchain: pass pipeline served by this daemon (default flow).
            workers: process-pool width.  ``0`` runs compiles on a small
                in-process thread pool (test/debug mode — no process
                spawn, but the GIL serializes scheduling work); ``None``
                picks cores - 1.
            lru_capacity: entry bound of the in-memory LRU tier.
            disk_cache: optional :class:`CompilationCache` or directory
                path for the persistent tier behind the LRU.
            max_queue_depth: queued-job bound for admission control.
            executor: inject a pre-built executor instead of owning one
                (the daemon never shuts an injected executor down, and
                cannot respawn it after a crash — ``BrokenExecutor``
                falls back to drain).
            compile_fn: test hook replacing the executor-side compile
                callable (signature ``(toolchain, request) -> report``).
            journal: optional :class:`~repro.service.journal.JobJournal`
                or path for the persistent job journal; when set,
                submissions are journaled before acknowledgement and
                replayed by :meth:`start` after a crash.
            max_job_crashes: worker crashes one job may cause before it
                is quarantined as poison.
            max_respawns: pool respawns before the daemon gives up and
                drains (crash-loop bound).
        """
        self.toolchain = toolchain or Toolchain.default()
        if disk_cache is not None and not hasattr(disk_cache, "get"):
            disk_cache = CompilationCache(disk_cache)
        self.cache = TieredCache(MemoryCache(lru_capacity), disk_cache)
        if max_queue_depth < 1:
            raise ServiceError("max_queue_depth must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.metrics = ServiceMetrics()
        self._compile_fn = compile_fn or _execute_request
        self._owns_executor = executor is None
        self._workers = workers
        if executor is not None:
            self.executor = executor
            width = getattr(executor, "_max_workers", 1)
            self._executor_width = max(1, width)
        else:
            self.executor = self.build_executor()
        self._max_concurrency = self._executor_width
        self.supervisor = PoolSupervisor(
            self, max_job_crashes=max_job_crashes, max_respawns=max_respawns
        )

        self._owns_journal = journal is not None and not hasattr(journal, "append")
        if self._owns_journal:
            journal = JobJournal(journal)
        self.journal: Optional[JobJournal] = journal
        # All journal I/O funnels through one thread: appends stay
        # ordered exactly as awaited, and the event loop never blocks
        # on an fsync.
        self._journal_pool: Optional[ThreadPoolExecutor] = None
        if journal is not None:
            self._journal_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-journal"
            )
        self._recovered_jobs = 0
        self._replay_stats = None

        self._lanes: Dict[str, Deque[Job]] = {
            lane: deque() for lane in PRIORITY_LANES
        }
        self._inflight: Dict[str, Job] = {}  # key -> live (queued/running) job
        self._jobs: "Dict[int, Job]" = {}  # id -> job (bounded history)
        self._job_order: Deque[int] = deque()
        self._next_id = 1
        self._tasks: set = set()
        self._running = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self.sweeps = SweepCoordinator(self)
        self._sweep_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Executor construction (startup and supervisor respawn)
    # ------------------------------------------------------------------

    @property
    def owns_executor(self) -> bool:
        """Whether this daemon built (and may respawn/shut down) its pool."""
        return self._owns_executor

    def build_executor(self) -> Executor:
        """A fresh executor of the configured shape.

        Called once from ``__init__`` and again by the
        :class:`PoolSupervisor` when a ``BrokenExecutor`` forces a
        respawn; both paths must produce identically-shaped pools.
        """
        if self._workers == 0:
            self._executor_width = 2
            return ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="repro-serve"
            )
        from ..api.batch import DEFAULT_WORKERS
        from ..pools import spawn_pool

        width = self._workers if self._workers is not None else DEFAULT_WORKERS
        self._executor_width = max(1, width)
        # The daemon forks nothing: workers come up via the "spawn"
        # context (fork+exec).  Fork-starting pool workers from a
        # live multi-threaded asyncio process is a deadlock lottery —
        # a worker can inherit a held call-queue lock and wedge the
        # whole pool (observed in practice); spawn sidesteps it at
        # the cost of a one-time per-worker import, which
        # :meth:`start` pays up front by pre-warming.
        return spawn_pool(width)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and start serving; returns the actual (host, port)."""
        await self.warm_pool()
        await self._recover()
        # The lease-expiry tick starts after recovery so re-advertised
        # chunks of a replayed sweep are in place before the first scan.
        self._sweep_task = asyncio.get_running_loop().create_task(
            self.sweeps.run_ticks()
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def warm_pool(self) -> None:
        """Spin up the owned process pool before accepting traffic.

        Spawned workers pay their interpreter + import cost here, once,
        instead of inside the first compile request.  The staggered
        probes hold each worker busy long enough that the pool actually
        launches all of them rather than reusing the first.
        """
        if not (self._owns_executor and isinstance(self.executor, ProcessPoolExecutor)):
            return
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(
                loop.run_in_executor(self.executor, _warm_probe, 0.05)
                for _ in range(self._max_concurrency)
            )
        )

    # ------------------------------------------------------------------
    # Journal plumbing and crash recovery
    # ------------------------------------------------------------------

    async def _journal_event(self, event: str, key: str, **fields) -> None:
        """Durably record one lifecycle transition (no-op sans journal).

        Runs on the single journal thread so appends land in await
        order and the fsync never stalls the event loop.
        """
        if self.journal is None:
            return
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._journal_pool,
            functools.partial(self.journal.append, event, key, **fields),
        )

    async def _recover(self) -> None:
        """Replay the journal: finish the past, re-enqueue the interrupted.

        Runs before the listener binds.  Live ``wait=false`` entries are
        re-submitted (bypassing admission — they were already admitted
        once); live ``wait=true`` entries are closed out as failed, since
        the waiting connection died with the previous daemon and nobody
        can receive the result.  The journal is then compacted so each
        crash-restart cycle starts from a minimal file.
        """
        if self.journal is None:
            return
        loop = asyncio.get_running_loop()
        entries, stats = await loop.run_in_executor(
            self._journal_pool, functools.partial(self.journal.replay, True)
        )
        self._replay_stats = stats
        recovered = 0
        for key, entry in sorted(entries.items()):
            if entry.terminal:
                continue
            if entry.is_sweep:
                # Open sweep: re-enumerate its job space from the spec,
                # prefill from the content-hash cache, re-advertise the
                # rest (the sweep branch must come before the wait
                # check — sweep records have no wait flag).
                await self.sweeps.recover(entry)
                continue
            if entry.wait or entry.payload is None:
                await self._journal_event(
                    "failed",
                    key,
                    error=(
                        "daemon restarted; waiting client connection lost"
                        if entry.wait
                        else "journal record carries no payload to replay"
                    ),
                )
                continue
            try:
                job, _, immediate = await self.submit(entry.payload, recovered=entry)
            except ServiceError as err:
                await self._journal_event(
                    "failed", key, error=f"replay rejected: {err}"
                )
                continue
            if immediate is not None:
                # A cache tier already has the result (the compile
                # finished before the crash, or an identical job did).
                await self._journal_event(
                    "done", key, served_from=immediate.get("served_from")
                )
            elif job is not None and job.key != key:
                # The content hash changed across the restart (e.g. a
                # different toolchain); the work continues under the new
                # key, so retire the stale one.
                await self._journal_event(
                    "failed", key, error=f"re-keyed on replay to {job.key}"
                )
            else:
                recovered += 1
        self._recovered_jobs = recovered
        await loop.run_in_executor(self._journal_pool, self.journal.compact)

    def request_drain(self) -> None:
        """Stop admitting; finish in-flight work, then report drained."""
        if self._draining:
            return
        self._draining = True
        self._check_drained()

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def close(self) -> None:
        """Stop the server and release owned resources."""
        # Claim the server before the first await: a concurrent close()
        # then sees None instead of racing the wait_closed() suspension.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        task, self._sweep_task = self._sweep_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        if self._owns_executor:
            self.executor.shutdown(wait=False, cancel_futures=True)
        if self._journal_pool is not None:
            # wait=True: any in-flight append must hit the disk before
            # the journal handle goes away underneath it.
            self._journal_pool.shutdown(wait=True)
        if self.journal is not None and self._owns_journal:
            self.journal.close()

    def final_metrics(self) -> Dict[str, object]:
        """The closing metrics snapshot (flushed on drain)."""
        return self.metrics_snapshot()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def queue_depths(self) -> Dict[str, int]:
        return {lane: len(queue) for lane, queue in self._lanes.items()}

    def metrics_snapshot(self) -> Dict[str, object]:
        plan = faults.active()
        journal_counters = None
        if self.journal is not None:
            journal_counters = self.journal.counters()
            journal_counters["recovered_jobs"] = self._recovered_jobs
            if self._replay_stats is not None:
                journal_counters["replay"] = self._replay_stats.to_dict()
        return self.metrics.snapshot(
            queue_depths=self.queue_depths(),
            in_flight=self._running,
            cache_counters=self.cache.counters(),
            draining=self._draining,
            supervisor=self.supervisor.counters(),
            journal=journal_counters,
            faults=plan.counters() if plan is not None else None,
            sweep=self.sweeps.counters(),
        )

    # ------------------------------------------------------------------
    # Admission / dispatch
    # ------------------------------------------------------------------

    async def submit(
        self, payload: object, recovered: Optional[JournalEntry] = None
    ) -> Tuple[Job, bool, Optional[Dict[str, object]]]:
        """Admit one compile payload.

        Returns ``(job, created, immediate)``: *immediate* is the result
        dict when a cache tier answered (no job runs then and *job* is
        ``None``); otherwise *job* is the (possibly pre-existing,
        coalesced) in-flight job and *created* says whether this call
        created it.

        When a journal is configured, the ``submitted`` record is
        durable before this returns — a 202 acknowledgement therefore
        survives a daemon crash.  *recovered* marks journal-replay
        re-submissions: they bypass admission control (they were
        admitted before the crash) and inherit the entry's crash budget.
        """
        if self._draining:
            raise ServiceError("service is draining; not admitting", status=503)
        parsed = parse_compile_payload(payload)
        self.metrics.record_request(parsed.priority)
        started = time.perf_counter()
        key = content_hash(parsed.request, pipeline=self.toolchain.pass_names)

        report, tier = self.cache.get_tiered(key)
        if report is not None:
            self.metrics.latency.observe(time.perf_counter() - started)
            return None, False, self._result_payload(
                None, report, served_from=tier, key=key
            )

        existing = self._inflight.get(key)
        if existing is not None:
            existing.subscribers += 1
            self.metrics.coalesced += 1
            existing.emit("coalesced", subscribers=existing.subscribers)
            return existing, False, None

        victim = None if recovered is not None else self._admit_or_reject(parsed)
        job = Job(self._next_id, key, parsed)
        self._next_id += 1
        if recovered is not None:
            job.crashes = recovered.crashes
            job.recovered = True
        self._register(job)
        self._inflight[key] = job
        self._lanes[parsed.priority].append(job)
        self.metrics.admission_accepted += 1
        job.emit(
            "admitted",
            lane=parsed.priority,
            queue_depth=sum(self.queue_depths().values()),
        )
        if victim is not None:
            await self._journal_event("shed", victim.key, job=victim.id)
        # Durability before acknowledgement: the submitted record (with
        # the payload needed to replay it) is on disk before any client
        # sees a job id.
        await self._journal_event(
            "submitted",
            key,
            job=job.id,
            wait=parsed.wait,
            priority=parsed.priority,
            payload=parsed.raw,
            crashes=job.crashes or None,
        )
        self._maybe_dispatch()
        return job, True, None

    def _admit_or_reject(self, parsed: ParsedJob) -> Optional[Job]:
        """Make room for *parsed*; returns the shed victim, if any."""
        depth = sum(len(queue) for queue in self._lanes.values())
        if depth < self.max_queue_depth:
            return None
        # Full: shed a strictly lower-priority queued job, newest first
        # (its waiters invested the least), else reject the newcomer.
        incoming_rank = PRIORITY_LANES.index(parsed.priority)
        for lane in reversed(PRIORITY_LANES):  # low, normal, high
            if PRIORITY_LANES.index(lane) <= incoming_rank:
                break
            queue = self._lanes[lane]
            if queue:
                victim = queue.pop()
                self._shed(victim)
                return victim
        self.metrics.admission_rejected += 1
        raise ServiceError(
            f"queue full ({depth}/{self.max_queue_depth}); "
            f"{parsed.priority}-priority request rejected",
            status=429,
            retry_after=RETRY_AFTER_HINT,
        )

    def _shed(self, job: Job) -> None:
        self.metrics.admission_shed += 1
        job.state = "shed"
        job.emit("shed", reason="admission control: queue full")
        self._inflight.pop(job.key, None)
        job.future.set_exception(
            ServiceError(
                f"job {job.id} shed by admission control (queue full)",
                status=503,
            )
        )
        # The exception is always retrieved by at least the submitting
        # handler, but guard against fire-and-forget (wait=false) jobs.
        job.future.exception()

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._job_order.append(job.id)
        while len(self._job_order) > _JOB_HISTORY:
            old = self._job_order.popleft()
            if self._jobs.get(old) is not None and self._jobs[old].state in _TERMINAL:
                del self._jobs[old]
            else:  # still live: keep it, retry trimming later
                self._job_order.appendleft(old)
                break

    def _maybe_dispatch(self) -> None:
        while self._running < self._max_concurrency:
            job = None
            for lane in PRIORITY_LANES:  # high first, FIFO within a lane
                if self._lanes[lane]:
                    job = self._lanes[lane].popleft()
                    break
            if job is None:
                return
            self._running += 1
            task = asyncio.get_running_loop().create_task(self._run_job(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_job(self, job: Job) -> None:
        job.state = "running"
        job.pool_generation = self.supervisor.generation
        job.emit(
            "started", workers=self._max_concurrency, attempt=job.crashes + 1
        )
        await self._journal_event("started", job.key, job=job.id)
        self.metrics.compiles_started += 1
        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        requeued = False
        try:
            report = await loop.run_in_executor(
                self.executor, self._compile_fn, self.toolchain, job.request
            )
        except ReproError as err:
            self._finish_error(job, err, status=422)
            await self._journal_event(
                "failed", job.key, job=job.id, error=str(err)
            )
        except MemoryError:
            # Process-level trouble, not a property of this job: fail the
            # request, then let the error propagate to the loop's
            # exception handler instead of dressing it up as a 500.
            self._finish_error(job, ReproError("compile worker ran out of memory"),
                               status=503)
            await self._journal_event(
                "failed", job.key, job=job.id, error="MemoryError in worker"
            )
            raise
        except BrokenExecutor as err:
            requeued = await self._handle_worker_crash(job, err)
        except Exception as err:  # repro: lint-ignore[exception-discipline]: job isolation boundary - one failed compile must not kill the daemon; the error is surfaced as this job's 500 response and counted in compiles_failed
            self._finish_error(job, err, status=500)
            await self._journal_event(
                "failed", job.key, job=job.id, error=str(err)
            )
        else:
            elapsed = time.perf_counter() - started
            self.cache.put(job.key, report)
            self.metrics.compiles_completed += 1
            self.metrics.latency.observe(elapsed)
            for timing in report.timings:
                job.emit(
                    "pass", name=timing.pass_name,
                    ms=round(1e3 * timing.seconds, 3),
                )
            job.emit("ii_trajectory", trajectory=list(report.ii_trajectory))
            job.state = "done"
            result = self._result_payload(
                job, report, served_from="compile", key=job.key
            )
            job.emit(
                "done", ii=report.result.ii, seconds=round(elapsed, 4),
            )
            # Journal before resolving the future: once a client can see
            # the result, the journal must already know the job is done.
            await self._journal_event(
                "done",
                job.key,
                job=job.id,
                ii=report.result.ii,
                seconds=round(elapsed, 4),
            )
            job.future.set_result(result)
        finally:
            self._running -= 1
            if not requeued:
                self._inflight.pop(job.key, None)
            self._maybe_dispatch()
            self._check_drained()

    async def _handle_worker_crash(self, job: Job, err: BrokenExecutor) -> bool:
        """Supervise a ``BrokenExecutor``: respawn, then retry or poison.

        Returns ``True`` when the job went back to the front of its lane
        (it keeps its in-flight slot so coalesced waiters stay attached).
        Draining — the pre-supervisor behavior — remains only as the
        last resort when the pool cannot be respawned.
        """
        verdict = self.supervisor.crash_verdict(job)
        healthy = await self.supervisor.ensure_pool(job.pool_generation)
        if not healthy:
            self._finish_error(
                job,
                ServiceError(
                    f"worker pool broken and not respawnable: {err}", status=503
                ),
                status=503,
            )
            await self._journal_event(
                "failed", job.key, job=job.id,
                error="worker pool broken; drain", crashes=job.crashes,
            )
            self.request_drain()
            return False
        if verdict == "poison":
            self._quarantine(job, err)
            await self._journal_event(
                "quarantined", job.key, job=job.id, crashes=job.crashes
            )
            return False
        job.state = "queued"
        job.emit(
            "retrying",
            crashes=job.crashes,
            pool_generation=self.supervisor.generation,
        )
        await self._journal_event(
            "retrying", job.key, job=job.id, crashes=job.crashes
        )
        # Front of the lane: the job already waited its turn once.
        self._lanes[job.lane].appendleft(job)
        return True

    def _quarantine(self, job: Job, err: Exception) -> None:
        """Poison terminal state: this job kills workers; stop retrying."""
        self.metrics.compiles_failed += 1
        job.state = "quarantined"
        job.emit(
            "quarantined", crashes=job.crashes, error_type=type(err).__name__
        )
        job.future.set_exception(
            ServiceError(
                f"job {job.id} quarantined as poison: its compile crashed "
                f"{job.crashes} workers ({type(err).__name__})",
                status=500,
            )
        )
        job.future.exception()  # fire-and-forget jobs must not warn

    def _finish_error(self, job: Job, err: Exception, status: int) -> None:
        self.metrics.compiles_failed += 1
        job.state = "failed"
        job.emit("failed", error=str(err), error_type=type(err).__name__)
        job.future.set_exception(
            ServiceError(f"{type(err).__name__}: {err}", status=status)
        )
        job.future.exception()  # fire-and-forget jobs must not warn

    def _check_drained(self) -> None:
        if (
            self._draining
            and self._running == 0
            and not any(self._lanes.values())
        ):
            self._drained.set()

    def _result_payload(
        self,
        job: Optional[Job],
        report: CompilationReport,
        served_from: str,
        key: Optional[str] = None,
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "job": job.id if job is not None else None,
            "status": "done",
            "served_from": served_from,
            "cache_key": key,
            "report": report.to_dict(),
            "fingerprint": schedule_fingerprint(report.result),
        }
        want_assembly = (
            job.parsed.want_assembly if job is not None else False
        )
        if want_assembly:
            from ..codegen import assembly_for

            try:
                payload["assembly"] = assembly_for(
                    report.result, report.compiled.allocation
                )
            except ReproError as err:  # pragma: no cover - defensive
                payload["assembly_error"] = str(err)
        return payload

    # ------------------------------------------------------------------
    # HTTP surface
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await h.read_request(reader)
            except ServiceError as err:
                await h.write_response(
                    writer, h.json_response(err.status, {"error": str(err)})
                )
                return
            if request is None:  # bare port probe
                return
            await self._route(request, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _route(self, request: h.HTTPRequest, writer) -> None:
        route = request.route
        try:
            if route == ("healthz",):
                if request.method != "GET":
                    raise ServiceError("use GET /healthz", status=405)
                status = "draining" if self._draining else "ok"
                await h.write_response(
                    writer,
                    h.json_response(
                        200 if not self._draining else 503,
                        {
                            "status": status,
                            "uptime_seconds": round(
                                time.time() - self.metrics.started_at, 3
                            ),
                        },
                    ),
                )
            elif route == ("metrics",):
                if request.method != "GET":
                    raise ServiceError("use GET /metrics", status=405)
                await h.write_response(
                    writer, h.json_response(200, self.metrics_snapshot())
                )
            elif route == ("compile",):
                if request.method != "POST":
                    raise ServiceError("use POST /compile", status=405)
                await self._handle_compile(request, writer)
            elif len(route) == 2 and route[0] == "jobs":
                job = self._job_for(route[1])
                await h.write_response(
                    writer, h.json_response(200, job.describe())
                )
            elif len(route) == 3 and route == ("jobs", route[1], "events"):
                job = self._job_for(route[1])
                since = self._int_query(request, "since", 0)
                await h.write_event_stream(
                    writer, job.stream_events(start=since)
                )
            elif route == ("sweeps",):
                await self._handle_sweeps(request, writer)
            elif len(route) >= 2 and route[0] == "sweeps":
                await self._handle_sweep(request, writer)
            else:
                raise ServiceError(f"no route {request.path!r}", status=404)
        except ServiceError as err:
            await h.write_response(
                writer,
                h.json_response(
                    err.status,
                    {"error": str(err)},
                    extra_headers=_retry_headers(err),
                ),
            )

    @staticmethod
    def _int_query(request: h.HTTPRequest, name: str, default: int) -> int:
        raw = request.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ServiceError(
                f"query parameter {name!r} must be an integer", status=400
            )

    async def _handle_sweeps(self, request: h.HTTPRequest, writer) -> None:
        """``/sweeps``: list (GET) or submit a spec (POST, idempotent)."""
        if request.method == "GET":
            await h.write_response(
                writer,
                h.json_response(200, {"sweeps": self.sweeps.list_sweeps()}),
            )
            return
        if request.method != "POST":
            raise ServiceError("use GET or POST /sweeps", status=405)
        status = await self.sweeps.submit(request.json())
        await h.write_response(writer, h.json_response(200, status))

    async def _handle_sweep(self, request: h.HTTPRequest, writer) -> None:
        """``/sweeps/<id>`` status and the worker-facing verbs."""
        route = request.route
        if len(route) == 2:
            if request.method != "GET":
                raise ServiceError("use GET /sweeps/<id>", status=405)
            sweep = self.sweeps.get(route[1])
            include_jobs = request.query.get("jobs") not in (None, "0")
            await h.write_response(
                writer,
                h.json_response(
                    200, self.sweeps.status(sweep, include_jobs=include_jobs)
                ),
            )
            return
        if len(route) != 3:
            raise ServiceError(f"no route {request.path!r}", status=404)
        sweep_id, verb = route[1], route[2]
        if verb == "results":
            if request.method != "GET":
                raise ServiceError("use GET /sweeps/<id>/results", status=405)
            sweep = self.sweeps.get(sweep_id)
            start = self._int_query(request, "start", 0)
            stop = self._int_query(request, "stop", len(sweep.jobs))
            want_pickle = request.query.get("pickle") not in (None, "0")
            rows = self.sweeps.result_rows(sweep, start, stop)
            if want_pickle:
                loop = asyncio.get_running_loop()
                blobs = await loop.run_in_executor(
                    None,
                    lambda: [
                        encode_report(report) if report is not None else None
                        for _, report in rows
                    ],
                )
                # The rows snapshot is immutable after result_rows(), so
                # describing + the executor encode cannot disagree.
                for (info, _), blob in zip(rows, blobs):
                    if blob is not None:
                        info["report"] = blob
            await h.write_response(
                writer,
                h.json_response(
                    200,
                    {
                        "sweep": sweep.id,
                        "state": sweep.state,
                        "start": max(0, start),
                        "results": [info for info, _ in rows],
                    },
                ),
            )
            return
        if request.method != "POST":
            raise ServiceError(f"use POST /sweeps/<id>/{verb}", status=405)
        if verb == "claim":
            result = self.sweeps.claim(sweep_id, request.json())
        elif verb == "heartbeat":
            result = self.sweeps.heartbeat(sweep_id, request.json())
        elif verb == "complete":
            result = await self.sweeps.complete(sweep_id, request.json())
        else:
            raise ServiceError(f"no route {request.path!r}", status=404)
        await h.write_response(writer, h.json_response(200, result))

    def _job_for(self, token: str) -> Job:
        try:
            job_id = int(token)
        except ValueError:
            raise ServiceError(f"bad job id {token!r}", status=400)
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id}", status=404)
        return job

    async def _handle_compile(self, request: h.HTTPRequest, writer) -> None:
        payload = request.json()
        wait = True
        if isinstance(payload, dict) and payload.get("wait") is False:
            wait = False
        job, created, immediate = await self.submit(payload)
        if immediate is not None:
            await h.write_response(writer, h.json_response(200, immediate))
            return
        if not wait:
            await h.write_response(
                writer,
                h.json_response(
                    202,
                    {
                        "job": job.id,
                        "status": job.state,
                        "coalesced": not created,
                    },
                ),
            )
            return
        try:
            result = await asyncio.shield(job.future)
        except ServiceError as err:
            await h.write_response(
                writer,
                h.json_response(
                    err.status, {"error": str(err), "job": job.id}
                ),
            )
            return
        if not created:
            result = dict(result, served_from="coalesced")
        await h.write_response(writer, h.json_response(200, result))


# ----------------------------------------------------------------------
# Daemon entry point (shared by ``repro serve`` and the smoke driver)
# ----------------------------------------------------------------------


async def run_service(
    host: str = "127.0.0.1",
    port: int = 0,
    workers: Optional[int] = None,
    lru_capacity: int = 256,
    disk_cache: Optional[object] = None,
    max_queue_depth: int = 64,
    port_file: Optional[str] = None,
    metrics_out: Optional[str] = None,
    toolchain: Optional[Toolchain] = None,
    quiet: bool = False,
    journal: Optional[object] = None,
    fault_spec: Optional[str] = None,
    fault_seed: int = 0,
) -> Dict[str, object]:
    """Run a :class:`CompileService` until SIGTERM/SIGINT drains it.

    Binds, optionally writes the bound ``host:port`` to *port_file* (so
    callers using an ephemeral port can discover it), serves until a
    drain signal arrives, finishes in-flight work, then returns the
    final metrics snapshot (also written to *metrics_out* when given).
    *journal* enables the persistent job journal (path or
    :class:`JobJournal`); *fault_spec* arms the deterministic fault
    plane (:meth:`repro.faults.FaultPlan.from_spec`) before the daemon
    builds its pool, so workers inherit the plan.
    """
    if fault_spec:
        faults.install(faults.FaultPlan.from_spec(fault_spec, seed=fault_seed))
    service = CompileService(
        toolchain=toolchain,
        workers=workers,
        lru_capacity=lru_capacity,
        disk_cache=disk_cache,
        max_queue_depth=max_queue_depth,
        journal=journal,
    )
    bound_host, bound_port = await service.start(host, port)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, service.request_drain)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    if port_file:
        from pathlib import Path

        # File I/O off the loop: a slow disk here would stall accepts.
        await loop.run_in_executor(
            None, Path(port_file).write_text, f"{bound_host}:{bound_port}\n"
        )
    if not quiet:
        print(
            f"repro serve listening on {bound_host}:{bound_port} "
            f"(workers={service._max_concurrency}, "
            f"lru={service.cache.memory.capacity}, "
            f"queue={service.max_queue_depth})",
            flush=True,
        )
    try:
        await service.wait_drained()
        # Let handlers waiting on just-finished jobs flush their
        # responses before the listener goes away.
        await asyncio.sleep(0.1)
    finally:
        snapshot = service.final_metrics()
        if metrics_out:
            from pathlib import Path

            await loop.run_in_executor(
                None,
                Path(metrics_out).write_text,
                json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            )
        if not quiet:
            print(
                "repro serve drained: "
                + json.dumps(
                    {
                        "requests": snapshot["requests"]["total"],
                        "compiles": snapshot["compiles"],
                        "cache_hit_ratio": snapshot["cache"]["hit_ratio"],
                    },
                    sort_keys=True,
                ),
                file=sys.stderr,
                flush=True,
            )
        await service.close()
    return snapshot
