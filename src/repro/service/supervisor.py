"""Worker-pool supervision: respawn on collapse, retry, quarantine.

Before this module existed, a single ``BrokenExecutor`` — one compile
worker dying mid-job, for any reason — put the whole daemon into drain:
every queued job failed and the process exited.  The supervisor turns
that into a recoverable event:

* the broken warm pool is **respawned** (same shape, same spawn
  context, re-warmed) instead of the daemon draining;
* the job that was in flight is **re-admitted** at the front of its
  lane under a bounded per-job retry budget;
* a job whose compile kills workers ``max_job_crashes`` times (default
  twice) is **quarantined as poison**: it reaches a terminal
  ``quarantined`` state, its waiters get an error naming the crash
  count, and the ``/metrics`` supervisor section counts it — the job
  can never wedge the pool in a crash loop;
* a **respawn budget** (``max_respawns``) bounds pathological churn: a
  pool that keeps collapsing faster than it can be rebuilt eventually
  drains the daemon, which is the old behavior as a last resort.

Generation counting makes concurrent crash handling idempotent: every
dispatch records the pool generation it ran against, and only the first
``BrokenExecutor`` from a given generation respawns the pool — the
other in-flight victims of the same collapse see the bumped generation
and skip straight to their own retry/quarantine decision.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .daemon import CompileService, Job


class PoolSupervisor:
    """Respawn policy and crash bookkeeping for one daemon's pool."""

    def __init__(
        self,
        service: "CompileService",
        max_job_crashes: int = 2,
        max_respawns: int = 8,
    ):
        self.service = service
        self.max_job_crashes = max_job_crashes
        self.max_respawns = max_respawns
        self.generation = 0
        self.respawns = 0
        self.worker_crashes = 0
        self.jobs_retried = 0
        self.jobs_quarantined = 0
        self._lock = asyncio.Lock()

    # ------------------------------------------------------------------

    async def ensure_pool(self, generation: int) -> bool:
        """Make sure a healthy pool exists after a crash observed against
        *generation*.

        Returns ``True`` when the pool is (now) healthy — either this
        call respawned it or a concurrent crash handler already did —
        and ``False`` when respawning is impossible (injected executor)
        or the respawn budget is exhausted, in which case the caller
        should fall back to drain.
        """
        async with self._lock:
            if generation < self.generation:
                return True  # another victim of the same collapse fixed it
            if not self.service.owns_executor:
                return False  # injected pool: its lifecycle is not ours
            if self.respawns >= self.max_respawns:
                return False
            self.generation += 1
            self.respawns += 1
            old = self.service.executor
            self.service.executor = self.service.build_executor()
            # The old pool is already broken; shutdown(wait=False) just
            # reaps its bookkeeping without blocking the loop.
            old.shutdown(wait=False, cancel_futures=True)
            await self.service.warm_pool()
            return True

    def crash_verdict(self, job: "Job") -> str:
        """``"retry"`` or ``"poison"`` for a job that just killed a worker."""
        self.worker_crashes += 1
        job.crashes += 1
        if job.crashes >= self.max_job_crashes:
            self.jobs_quarantined += 1
            return "poison"
        self.jobs_retried += 1
        return "retry"

    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, object]:
        return {
            "pool_generation": self.generation,
            "pool_respawns": self.respawns,
            "worker_crashes": self.worker_crashes,
            "jobs_retried": self.jobs_retried,
            "jobs_quarantined": self.jobs_quarantined,
            "max_job_crashes": self.max_job_crashes,
            "max_respawns": self.max_respawns,
        }
