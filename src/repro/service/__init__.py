"""The ``repro serve`` compilation service.

A long-lived asyncio daemon that keeps a warm process pool and an
in-memory LRU across compile requests, coalesces identical in-flight
work, applies priority-lane admission control and exposes live metrics.
See :mod:`repro.service.daemon` for the architecture overview and
:mod:`repro.service.client` for the blocking client.
"""

from .client import ServiceClient
from .daemon import CompileService, Job, run_service
from .jobs import (
    PRIORITY_LANES,
    ParsedJob,
    ddg_from_dict,
    ddg_to_dict,
    loop_from_dict,
    loop_to_dict,
    parse_compile_payload,
    request_to_payload,
)
from .metrics import LatencyHistogram, ServiceMetrics

__all__ = [
    "CompileService",
    "Job",
    "LatencyHistogram",
    "PRIORITY_LANES",
    "ParsedJob",
    "ServiceClient",
    "ServiceMetrics",
    "ddg_from_dict",
    "ddg_to_dict",
    "loop_from_dict",
    "loop_to_dict",
    "parse_compile_payload",
    "request_to_payload",
    "run_service",
]
