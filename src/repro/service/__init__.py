"""The ``repro serve`` compilation service.

A long-lived asyncio daemon that keeps a warm process pool and an
in-memory LRU across compile requests, coalesces identical in-flight
work, applies priority-lane admission control and exposes live metrics.
Fault tolerance rides on three pieces: a persistent job journal
(:mod:`repro.service.journal`), worker-pool supervision
(:mod:`repro.service.supervisor`) and a retrying client policy
(:class:`~repro.service.client.RetryPolicy`).  Since PR 10 the daemon
also coordinates **distributed sweeps** (:mod:`repro.service.sweep`):
pull-based :class:`~repro.service.worker.SweepWorker` processes claim
self-scheduled chunks under heartbeat leases and a coordinator crash
replays open sweeps from the journal.
See :mod:`repro.service.daemon` for the architecture overview and
:mod:`repro.service.client` for the blocking client.
"""

from .client import NO_RETRY, RetryPolicy, ServiceClient, TransportError
from .daemon import CompileService, Job, run_service
from .jobs import (
    PRIORITY_LANES,
    ParsedJob,
    ddg_from_dict,
    ddg_to_dict,
    loop_from_dict,
    loop_to_dict,
    parse_compile_payload,
    request_to_payload,
)
from .journal import JobJournal, JournalEntry, ReplayStats
from .metrics import LatencyHistogram, ServiceMetrics
from .supervisor import PoolSupervisor
from .sweep import Sweep, SweepCoordinator, chunk_size
from .worker import SweepWorker

__all__ = [
    "CompileService",
    "Job",
    "JobJournal",
    "JournalEntry",
    "LatencyHistogram",
    "NO_RETRY",
    "PRIORITY_LANES",
    "ParsedJob",
    "PoolSupervisor",
    "ReplayStats",
    "RetryPolicy",
    "ServiceClient",
    "ServiceMetrics",
    "Sweep",
    "SweepCoordinator",
    "SweepWorker",
    "TransportError",
    "chunk_size",
    "ddg_from_dict",
    "ddg_to_dict",
    "loop_from_dict",
    "loop_to_dict",
    "parse_compile_payload",
    "request_to_payload",
    "run_service",
]
