"""Compile-job payloads: the service's JSON request schema.

A compile payload names the same things a local
:class:`~repro.api.request.CompilationRequest` does, in plain JSON:

``kernel`` / ``kernel_args``
    a registered workload kernel (``"fir_filter"``) with optional
    factory parameters — or, mutually exclusive,
``loop``
    a fully serialized loop body (see :func:`loop_to_dict` /
    :func:`loop_from_dict`): name, trip count and the DDG's operations
    and explicit edges.  This is how a remote front end ships a graph
    the daemon has never seen.
``target``
    a registered target name, a machine-file path (daemon-local), or an
    inline machine-file payload (the ``target_from_dict`` schema) — or
    the constructor form ``clusters``/``unclustered``/``topology``
    mirroring the local CLI flags.
``config``
    ``SchedulerConfig`` field overrides (``{"search": "ladder"}``),
    validated against the dataclass fields.
``unroll`` / ``equivalent_k`` / ``scheduler`` / ``allocate`` / ``validate``
    the request knobs, verbatim.
``priority``
    admission lane: ``"high"``, ``"normal"`` (default) or ``"low"``.
``assembly``
    when true, the response carries the rendered assembly text.

:func:`parse_compile_payload` turns the JSON into a
:class:`ParsedJob` holding the real :class:`CompilationRequest`, so
everything downstream of admission is the ordinary session API.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..errors import ReproError, ServiceError
from ..ir.ddg import DDG
from ..ir.edges import DepEdge, DepKind
from ..ir.loop import Loop
from ..ir.opcodes import OpCode
from ..ir.operations import Operation, ValueUse
from ..machine.machine import MachineSpec, clustered_vliw, unclustered_vliw

#: Admission lanes, highest priority first.
PRIORITY_LANES: Tuple[str, ...] = ("high", "normal", "low")

#: Scheduler-config fields a payload may override.
CONFIG_FIELDS = tuple(
    f.name for f in dataclasses.fields(SchedulerConfig) if f.init
)


# ----------------------------------------------------------------------
# Loop / DDG serialization
# ----------------------------------------------------------------------


def ddg_to_dict(ddg: DDG) -> Dict[str, object]:
    """Plain-data form of a dependence graph (ops + explicit edges)."""
    return {
        "name": ddg.name,
        "operations": [
            {
                "op_id": op.op_id,
                "opcode": op.opcode.value,
                "srcs": [
                    {
                        "producer": src.producer,
                        "omega": src.omega,
                        "symbol": src.symbol,
                    }
                    for src in op.srcs
                ],
                "tag": op.tag,
            }
            for op in ddg.operations()
        ],
        "edges": [
            {
                "src": edge.src,
                "dst": edge.dst,
                "kind": edge.kind.value,
                "omega": edge.omega,
                "latency": edge.latency,
            }
            for edge in ddg.edges()
            if not edge.is_flow  # flow edges re-derive from operands
        ],
    }


def ddg_from_dict(data: Mapping[str, object]) -> DDG:
    """Rebuild a DDG from :func:`ddg_to_dict` output."""
    try:
        ops = [
            Operation(
                op_id=int(entry["op_id"]),
                opcode=OpCode(entry["opcode"]),
                srcs=tuple(
                    ValueUse(
                        producer=src.get("producer"),
                        omega=int(src.get("omega", 0)),
                        symbol=src.get("symbol"),
                    )
                    for src in entry.get("srcs", ())
                ),
                tag=str(entry.get("tag", "")),
            )
            for entry in data.get("operations", ())
        ]
        edges = [
            DepEdge(
                src=int(entry["src"]),
                dst=int(entry["dst"]),
                kind=DepKind(entry["kind"]),
                omega=int(entry.get("omega", 0)),
                latency=entry.get("latency"),
            )
            for entry in data.get("edges", ())
        ]
        return DDG.bulk(str(data.get("name", "loop")), ops, edges)
    except ServiceError:
        raise
    except (ReproError, KeyError, TypeError, ValueError) as err:
        raise ServiceError(f"invalid serialized DDG: {err}", status=400)


def loop_to_dict(loop: Loop) -> Dict[str, object]:
    """Plain-data form of a loop (metadata + serialized DDG)."""
    return {
        "name": loop.name,
        "trip_count": loop.trip_count,
        "unroll_factor": loop.unroll_factor,
        "ddg": ddg_to_dict(loop.ddg),
    }


def loop_from_dict(data: Mapping[str, object]) -> Loop:
    """Rebuild a loop from :func:`loop_to_dict` output."""
    try:
        ddg_data = data["ddg"]
    except (KeyError, TypeError):
        raise ServiceError("serialized loop payload needs a 'ddg'", status=400)
    try:
        return Loop(
            name=str(data.get("name", "loop")),
            ddg=ddg_from_dict(ddg_data),
            trip_count=int(data.get("trip_count", 100)),
            unroll_factor=int(data.get("unroll_factor", 1)),
        )
    except ServiceError:
        raise
    except (ReproError, TypeError, ValueError) as err:
        raise ServiceError(f"invalid serialized loop: {err}", status=400)


# ----------------------------------------------------------------------
# Payload parsing
# ----------------------------------------------------------------------


@dataclass
class ParsedJob:
    """One admitted compile payload, fully resolved.

    ``raw`` keeps the original JSON payload so the daemon's journal can
    persist exactly what would be needed to replay the submission;
    ``wait`` records whether a client connection is blocked on the
    result (``wait=false`` jobs are the ones worth replaying after a
    crash — their submitters poll, they don't hold a socket open).
    """

    request: object  # CompilationRequest (imported lazily, see below)
    priority: str = "normal"
    want_assembly: bool = False
    wait: bool = True
    raw: Optional[Dict[str, object]] = None


def _resolve_loop(payload: Mapping[str, object]) -> Loop:
    kernel = payload.get("kernel")
    loop_data = payload.get("loop")
    if (kernel is None) == (loop_data is None):
        raise ServiceError(
            "compile payload needs exactly one of 'kernel' or 'loop'",
            status=400,
        )
    if kernel is not None:
        from ..workloads import KERNELS, make_kernel

        if kernel not in KERNELS:
            raise ServiceError(
                f"unknown kernel {kernel!r}; available: {sorted(KERNELS)}",
                status=400,
            )
        kwargs = payload.get("kernel_args") or {}
        if not isinstance(kwargs, Mapping):
            raise ServiceError("'kernel_args' must be an object", status=400)
        try:
            return make_kernel(kernel, **dict(kwargs))
        except (ReproError, TypeError) as err:
            raise ServiceError(f"cannot build kernel {kernel!r}: {err}", status=400)
    if not isinstance(loop_data, Mapping):
        raise ServiceError("'loop' must be a serialized loop object", status=400)
    return loop_from_dict(loop_data)


def _resolve_machine(payload: Mapping[str, object]) -> MachineSpec:
    target = payload.get("target")
    if target is not None:
        from ..errors import TargetError
        from ..targets import resolve_target
        from ..targets.spec import target_from_dict

        try:
            if isinstance(target, Mapping):
                return target_from_dict(target)
            if isinstance(target, str):
                return resolve_target(target)
        except TargetError as err:
            raise ServiceError(f"invalid target: {err}", status=400)
        raise ServiceError(
            "'target' must be a name, file path or machine-file object",
            status=400,
        )
    try:
        clusters = int(payload.get("clusters", 4))
    except (TypeError, ValueError):
        raise ServiceError("'clusters' must be an integer", status=400)
    try:
        if payload.get("unclustered"):
            return unclustered_vliw(clusters)
        topology = payload.get("topology", "ring")
        return clustered_vliw(clusters, topology=str(topology))
    except ReproError as err:
        raise ServiceError(f"cannot build machine: {err}", status=400)


def _resolve_config(payload: Mapping[str, object]) -> SchedulerConfig:
    overrides = payload.get("config") or {}
    if not isinstance(overrides, Mapping):
        raise ServiceError("'config' must be an object", status=400)
    if not overrides:
        return DEFAULT_CONFIG
    unknown = sorted(set(overrides) - set(CONFIG_FIELDS))
    if unknown:
        raise ServiceError(
            f"unknown config fields: {', '.join(unknown)}; "
            f"valid: {', '.join(CONFIG_FIELDS)}",
            status=400,
        )
    try:
        return DEFAULT_CONFIG.with_(**dict(overrides))
    except ReproError as err:
        raise ServiceError(f"invalid config: {err}", status=400)


def parse_compile_payload(payload: object) -> ParsedJob:
    """Validate a JSON compile payload into a :class:`ParsedJob`."""
    from ..api import CompilationRequest
    from ..errors import ToolchainError

    if not isinstance(payload, Mapping):
        raise ServiceError("compile payload must be a JSON object", status=400)
    priority = payload.get("priority", "normal")
    if priority not in PRIORITY_LANES:
        raise ServiceError(
            f"unknown priority {priority!r}; choose from {PRIORITY_LANES}",
            status=400,
        )
    loop = _resolve_loop(payload)
    machine = _resolve_machine(payload)
    config = _resolve_config(payload)

    def _int_or_none(name: str) -> Optional[int]:
        value = payload.get(name)
        if value is None:
            return None
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ServiceError(f"{name!r} must be an integer", status=400)

    try:
        request = CompilationRequest(
            loop=loop,
            machine=machine,
            config=config,
            unroll=_int_or_none("unroll"),
            equivalent_k=_int_or_none("equivalent_k"),
            allocate=bool(payload.get("allocate", True)),
            validate=bool(payload.get("validate", False)),
            scheduler=payload.get("scheduler"),
        )
    except ToolchainError as err:
        raise ServiceError(f"invalid compile request: {err}", status=400)
    return ParsedJob(
        request=request,
        priority=priority,
        want_assembly=bool(payload.get("assembly", False)),
        wait=payload.get("wait") is not False,
        raw=dict(payload),
    )


def request_to_payload(request, priority: str = "normal", **extra) -> Dict[str, object]:
    """The JSON payload equivalent of a local :class:`CompilationRequest`.

    The loop ships serialized; the machine ships as an inline target
    payload when it knows how to serialize itself (:class:`TargetSpec`),
    or in constructor form for the paper's parametric machines.  Lets a
    client mirror any local compile over the wire
    (``ServiceClient.compile_request``).
    """
    from ..targets.spec import TargetSpec

    payload: Dict[str, object] = {
        "loop": loop_to_dict(request.loop),
        "priority": priority,
    }
    machine = request.machine
    if isinstance(machine, TargetSpec):
        payload["target"] = machine.to_dict()
    elif machine.is_clustered:
        payload["clusters"] = machine.n_clusters
        payload["topology"] = machine.topology_kind
    else:
        # The unclustered reference machine: k units of each useful kind.
        payload["clusters"] = machine.clusters[0].mem
        payload["unclustered"] = True
    config_overrides = {
        f.name: getattr(request.config, f.name)
        for f in dataclasses.fields(request.config)
        if f.init and getattr(request.config, f.name) != getattr(DEFAULT_CONFIG, f.name)
    }
    if config_overrides:
        payload["config"] = config_overrides
    if request.unroll is not None:
        payload["unroll"] = request.unroll
    if request.equivalent_k is not None:
        payload["equivalent_k"] = request.equivalent_k
    if not request.allocate:
        payload["allocate"] = False
    if request.validate:
        payload["validate"] = True
    if request.scheduler is not None:
        payload["scheduler"] = request.scheduler
    payload.update(extra)
    return payload
