"""Live service metrics: counters, gauges and a latency histogram.

Everything is plain in-process arithmetic updated from the event loop
(single-threaded, so no locks) and rendered as one JSON document by
:meth:`ServiceMetrics.snapshot` — the body of ``GET /metrics``.  The
same snapshot is flushed to stderr (and ``--metrics-out``) when the
daemon drains, so a terminated service leaves its final hit ratios
behind.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

#: Histogram bucket upper bounds in milliseconds (log-ish spacing wide
#: enough for cache hits at the bottom and cold wide-unroll compiles at
#: the top).  The last bucket is unbounded.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with streaming percentiles."""

    def __init__(self, bounds_ms: Tuple[float, ...] = LATENCY_BUCKETS_MS):
        self.bounds_ms = bounds_ms
        self.counts: List[int] = [0] * (len(bounds_ms) + 1)
        self.total = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = 1e3 * seconds
        index = len(self.bounds_ms)
        for i, bound in enumerate(self.bounds_ms):
            if ms <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms

    def quantile(self, q: float) -> Optional[float]:
        """Upper bucket bound holding quantile *q* (None when empty)."""
        if not self.total:
            return None
        rank = q * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if i < len(self.bounds_ms):
                    return self.bounds_ms[i]
                return self.max_ms
        return self.max_ms  # pragma: no cover - rank <= total always hits

    def to_dict(self) -> Dict[str, object]:
        buckets = {
            f"le_{bound:g}ms": count
            for bound, count in zip(self.bounds_ms, self.counts)
        }
        buckets["inf"] = self.counts[-1]
        return {
            "count": self.total,
            "sum_ms": round(self.sum_ms, 3),
            "mean_ms": round(self.sum_ms / self.total, 3) if self.total else None,
            "max_ms": round(self.max_ms, 3),
            "p50_ms": self.quantile(0.50),
            "p90_ms": self.quantile(0.90),
            "p99_ms": self.quantile(0.99),
            "buckets": buckets,
        }


class ServiceMetrics:
    """All counters the daemon exposes on ``/metrics``."""

    def __init__(self) -> None:
        self.started_at = time.time()
        self.requests_total = 0
        self.requests_by_lane: Dict[str, int] = {}
        self.admission_accepted = 0
        self.admission_rejected = 0
        self.admission_shed = 0
        self.coalesced = 0
        self.compiles_started = 0
        self.compiles_completed = 0
        self.compiles_failed = 0
        self.latency = LatencyHistogram()

    def record_request(self, lane: str) -> None:
        self.requests_total += 1
        self.requests_by_lane[lane] = self.requests_by_lane.get(lane, 0) + 1

    def snapshot(
        self,
        queue_depths: Dict[str, int],
        in_flight: int,
        cache_counters: Dict[str, object],
        draining: bool,
        supervisor: Optional[Dict[str, object]] = None,
        journal: Optional[Dict[str, object]] = None,
        faults: Optional[Dict[str, object]] = None,
        sweep: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """One JSON document of everything.

        The fault-tolerance sections are always present (stable schema
        for scrapers): ``supervisor`` carries respawn/quarantine
        counters; ``journal``, ``faults`` and ``sweep`` are ``None``
        when the corresponding subsystem is not configured/armed (for
        ``sweep``: before the first sweep is submitted).
        """
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "draining": draining,
            "queue_depth": dict(
                queue_depths, total=sum(queue_depths.values())
            ),
            "in_flight": in_flight,
            "requests": {
                "total": self.requests_total,
                "by_lane": dict(self.requests_by_lane),
            },
            "admission": {
                "accepted": self.admission_accepted,
                "rejected": self.admission_rejected,
                "shed": self.admission_shed,
            },
            "dedup": {"coalesced": self.coalesced},
            "cache": dict(cache_counters),
            "compiles": {
                "started": self.compiles_started,
                "completed": self.compiles_completed,
                "failed": self.compiles_failed,
            },
            "supervisor": supervisor,
            "journal": journal,
            "faults": faults,
            "sweep": sweep,
            "latency_ms": self.latency.to_dict(),
        }
