"""The pull-based sweep worker behind ``repro worker``.

A :class:`SweepWorker` is the distributed half of the self-scheduling
story in :mod:`repro.service.sweep`: it polls the coordinator for open
sweeps, computes its own decreasing chunk size locally from the
advertised remaining count (:func:`~repro.service.sweep.chunk_size` —
the coordinator never plans chunks), claims that many jobs under a
lease, compiles them, and ships the results back.

While a chunk is in flight a daemon thread heartbeats the lease at a
third of its duration using its *own* client (the compute loop may be
deep inside a scheduler when the beat is due).  A heartbeat answered
``ok: false`` means the lease expired and was requeued — the worker
notes it and keeps computing anyway: its completion still lands, either
as the first durable result or as an idempotent duplicate.  Losing the
coordinator entirely (connection refused mid-sweep: it crashed and is
restarting) is survivable too — the worker just polls until the
coordinator answers again.

Workers share the compile-side fault points: ``worker-vanish`` makes
the worker claim a chunk and then return without ever heartbeating
(the lease-expiry path's test double for SIGKILL), and ``slow-worker``
makes it a straggler by sleeping before every job.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

from .. import faults
from ..api import Toolchain
from ..api.cache import CompilationCache
from ..errors import ReproError, ServiceError, ServiceUnavailable
from .client import RetryPolicy, ServiceClient, TransportError
from .jobs import parse_compile_payload
from .sweep import chunk_size, encode_report

#: How many heartbeats fit in one lease (beat interval = lease / this).
HEARTBEATS_PER_LEASE = 3.0


class SweepWorker:
    """One pull-based worker process draining sweeps from a coordinator."""

    def __init__(
        self,
        coordinator: str,
        name: Optional[str] = None,
        toolchain: Optional[Toolchain] = None,
        cache: Optional[object] = None,
        policy: Optional[RetryPolicy] = None,
        chunk_factor: float = 2.0,
        min_chunk: int = 1,
        max_chunk: int = 32,
        poll_interval: float = 0.5,
        idle_exit: Optional[float] = None,
    ):
        """
        Args:
            coordinator: the daemon's ``host:port``.
            name: worker name for leases/metrics (default ``w<pid>``).
            toolchain: pass pipeline (must match the coordinator's for
                content-hash keys to agree; default pipeline does).
            cache: optional :class:`CompilationCache` or directory — a
                local content-hash cache consulted before compiling and
                updated after (sharing the coordinator's cache directory
                makes completions pure bookkeeping).
            policy: client retry policy (claims/completions ride it).
            chunk_factor / min_chunk / max_chunk: the local
                self-scheduling knobs fed to
                :func:`~repro.service.sweep.chunk_size`.
            poll_interval: sleep between polls when no work is granted.
            idle_exit: return from :meth:`run` after this many seconds
                without work (``None`` runs until interrupted).
        """
        self.coordinator = coordinator
        self.name = name or f"w{os.getpid()}"
        self.toolchain = toolchain or Toolchain.default()
        if cache is not None and not hasattr(cache, "get"):
            cache = CompilationCache(cache)
        self.cache = cache
        self.policy = policy or RetryPolicy()
        self.chunk_factor = chunk_factor
        self.min_chunk = min_chunk
        self.max_chunk = max_chunk
        self.poll_interval = poll_interval
        self.idle_exit = idle_exit
        self.client = ServiceClient(coordinator, policy=self.policy)
        self.stats: Dict[str, int] = {
            "chunks": 0,
            "jobs": 0,
            "compiled": 0,
            "cache_hits": 0,
            "errors": 0,
            "lease_lost": 0,
            "vanished": 0,
            "coordinator_unreachable": 0,
        }

    # ------------------------------------------------------------------

    def run(self) -> Dict[str, object]:
        """Pull chunks until the sweeps drain (or ``idle_exit`` fires).

        Returns the worker's final stats dict.
        """
        last_work = time.monotonic()
        try:
            while True:
                granted = self._poll_once()
                if self.stats["vanished"]:
                    # A vanish fault fired: this worker is "dead" — stop
                    # pulling so the lease genuinely expires.
                    break
                now = time.monotonic()
                if granted:
                    last_work = now
                    continue
                if (
                    self.idle_exit is not None
                    and now - last_work >= self.idle_exit
                ):
                    break
                time.sleep(self.poll_interval)
        finally:
            self.client.close()
        return dict(self.stats, worker=self.name)

    def _poll_once(self) -> bool:
        """One pass over the open sweeps; True when a chunk was worked."""
        try:
            listing = self.client.sweeps()
        except (TransportError, ServiceUnavailable):
            # Coordinator down (restarting after a crash, most likely):
            # keep polling — its journal will bring the sweep back.
            self.stats["coordinator_unreachable"] += 1
            return False
        except ServiceError:
            return False
        for status in listing.get("sweeps", []):
            if status.get("state") != "open":
                continue
            remaining = int(status.get("remaining", 0))
            if remaining <= 0:
                continue
            count = chunk_size(
                remaining,
                max(1, int(status.get("active_workers", 1))),
                factor=self.chunk_factor,
                min_chunk=self.min_chunk,
                max_chunk=self.max_chunk,
            )
            if self._work_one_chunk(str(status["sweep"]), count):
                return True
        return False

    def _work_one_chunk(self, sweep_id: str, count: int) -> bool:
        try:
            grant = self.client.sweep_claim(sweep_id, self.name, count)
        except (TransportError, ServiceUnavailable):
            self.stats["coordinator_unreachable"] += 1
            return False
        except ServiceError:
            return False  # sweep finished/draining between list and claim
        chunk = grant.get("chunk")
        if not chunk:
            return False
        self.stats["chunks"] += 1
        if faults.fire("worker-vanish"):
            # Claimed, now gone: never heartbeat, never complete.  The
            # coordinator's lease expiry requeues these jobs.
            self.stats["vanished"] += 1
            return True
        lease = float(grant.get("lease_seconds") or 1.0)
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(sweep_id, str(chunk), lease, stop),
            name=f"{self.name}-heartbeat",
            daemon=True,
        )
        beat.start()
        try:
            results = [self._run_job(job) for job in grant.get("jobs", [])]
        finally:
            stop.set()
            beat.join(timeout=2.0)
        try:
            self.client.sweep_complete(sweep_id, self.name, str(chunk), results)
        except (TransportError, ServiceUnavailable):
            # The completion is lost; the lease will expire and another
            # worker recomputes bit-identical results. Nothing to undo.
            self.stats["coordinator_unreachable"] += 1
        except ServiceError:
            pass  # coordinator rejected (sweep gone); nothing to undo
        return True

    def _run_job(self, job: Dict[str, object]) -> Dict[str, object]:
        """Compile one granted job into a completion entry."""
        faults.slowpoint("slow-worker")
        self.stats["jobs"] += 1
        index = int(job["index"])
        key = str(job.get("key", ""))
        started = time.perf_counter()
        try:
            report = self.cache.get(key) if self.cache is not None else None
            if report is not None:
                self.stats["cache_hits"] += 1
            else:
                parsed = parse_compile_payload(job.get("payload"))
                report = self.toolchain.compile(parsed.request)
                self.stats["compiled"] += 1
                if self.cache is not None:
                    self.cache.put(key, report)
        except ReproError as err:
            self.stats["errors"] += 1
            return {"index": index, "key": key, "error": str(err)}
        return {
            "index": index,
            "key": key,
            "report": encode_report(report),
            "seconds": round(time.perf_counter() - started, 4),
        }

    def _heartbeat_loop(
        self,
        sweep_id: str,
        chunk: str,
        lease_seconds: float,
        stop: threading.Event,
    ) -> None:
        """Extend the chunk's lease until told to stop (daemon thread).

        Uses its own single-attempt client: the compute loop may hold
        the main client deep in a compile, and a heartbeat that cannot
        land *now* is not worth retrying — the next beat comes soon.
        """
        client = ServiceClient(
            self.coordinator,
            policy=RetryPolicy(max_attempts=1, total_deadline=None),
        )
        interval = max(0.05, lease_seconds / HEARTBEATS_PER_LEASE)
        try:
            while not stop.wait(interval):
                try:
                    answer = client.sweep_heartbeat(sweep_id, self.name, chunk)
                except (TransportError, ServiceError):
                    continue  # coordinator busy/restarting; try next beat
                if not answer.get("ok", False):
                    # Lease expired under us (we were too slow): the
                    # chunk is requeued.  Keep computing — completion
                    # resolves idempotently — but count the loss.
                    self.stats["lease_lost"] += 1
                    return
        finally:
            client.close()
