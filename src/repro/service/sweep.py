"""Distributed sweep coordination: self-scheduling chunks under leases.

A **sweep** is one enumerated job space — explicit compile payloads or a
(kernel, cluster-count, topology) cross product — executed by pull-based
workers (:mod:`repro.service.worker`) against the resident daemon acting
as coordinator.  Scheduling follows the distributed chunk-calculation
self-scheduling model: the coordinator only *advertises* how much work
remains and how many workers are active; each worker computes its own
decreasing chunk size locally (:func:`chunk_size`) and claims that many
jobs.  No per-worker state needs to live on the coordinator for the
schedule to decay correctly — fast workers naturally come back sooner
and absorb the tail.

Fault model (the distributed extension of PR 8's single-daemon story):

* every granted chunk is tracked under a **lease** with a
  seeded-deterministic jittered timeout; workers heartbeat while
  computing and stragglers extend their lease;
* a lease that expires (missed heartbeats: the worker vanished, was
  SIGKILLed, or is wedged) **requeues** its unfinished jobs at the front
  of the pending queue for the next claimer;
* a job whose leases expire more than ``max_requeues`` times is
  **quarantined** as poison — the distributed analogue of the
  supervisor's poison-job verdict;
* **duplicate completions** after a lease steal resolve idempotently
  through the content-hash cache: the first durable result wins, and
  since compilation is a deterministic pure function of the request the
  loser's bits are identical anyway;
* completions for unknown chunks (the coordinator restarted and forgot
  the lease) are accepted as **orphan completions** — work is never
  thrown away just because the ledger lost the lease.

Durability rides the PR 8 journal: ``sweep-submitted`` (the spec),
``sweep-progress`` (accumulating done/failed job indices, appended per
completed chunk) and terminal ``sweep-done``/``sweep-failed`` records
under the key ``sweep:<id>``.  After a coordinator ``kill -9``,
:meth:`SweepCoordinator.recover` re-enumerates each open sweep from its
spec and re-probes the content-hash cache: jobs whose results are
durable come back ``done``, everything else is re-advertised.

Result shipping uses the same representation as the disk cache: workers
send each :class:`~repro.api.request.CompilationReport` as a
base64-encoded pickle (the daemon is a localhost/trusted-network service
— see ROADMAP's TLS/auth rung — and already trusts pickles in its shared
cache directory).  The coordinator re-derives the schedule fingerprint
from the unpickled report rather than trusting the worker's claim.
"""

from __future__ import annotations

import base64
import hashlib
import json
import math
import pickle
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..api import CompilationReport, content_hash
from ..errors import ReproError, ServiceError
from ..scheduling.fingerprint import schedule_fingerprint
from .jobs import parse_compile_payload

#: Default lease duration: long enough for a handful of ladder compiles,
#: short enough that a vanished worker's chunk requeues within a test.
DEFAULT_LEASE_SECONDS = 10.0

#: Lease expiries one job survives before it is quarantined as poison.
DEFAULT_MAX_REQUEUES = 3

#: Relative lease jitter: deadline = lease * (1 + jitter * u), u from a
#: sweep-seeded RNG — deterministic, but decorrelated across chunks so
#: requeue storms do not synchronize.
LEASE_JITTER = 0.25

#: Hard bound on jobs per sweep (the 840-program verify matrix fits
#: with plenty of headroom; anything bigger should be several sweeps).
MAX_SWEEP_JOBS = 4096

#: Terminal sweeps kept around for status queries.
SWEEP_HISTORY = 16

#: A worker is "active" while its last heartbeat/claim is younger than
#: this many lease durations.
STALE_WORKER_LEASES = 3.0


def chunk_size(
    remaining: int,
    workers: int,
    factor: float = 2.0,
    min_chunk: int = 1,
    max_chunk: int = 32,
) -> int:
    """The self-scheduling chunk a worker should claim, computed locally.

    Guided-self-scheduling shape: an even share of the remaining work
    divided by ``workers * factor``, so early chunks are large (low
    coordination overhead) and later chunks shrink toward ``min_chunk``
    (good load balance on the irregular tail).  The coordinator never
    computes this — it only advertises ``remaining`` and the active
    worker count, exactly as in the distributed chunk-calculation
    approach this module follows.
    """
    if remaining <= 0:
        return 0
    share = math.ceil(remaining / max(1.0, workers * factor))
    return max(min_chunk, min(share, max_chunk, remaining))


def _sweep_rng_seed(sweep_id: str, seed: int) -> int:
    """A stable per-sweep RNG seed (sha256, not the salted ``hash()``)."""
    digest = hashlib.sha256(f"{seed}:{sweep_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# Sweep state
# ----------------------------------------------------------------------

#: Job states within a sweep; the last two are terminal.
SWEEP_JOB_STATES = ("pending", "leased", "done", "failed")


class SweepJob:
    """One (payload, content-hash key) cell of a sweep's job space."""

    __slots__ = (
        "index", "payload", "key", "state", "requeues", "worker", "chunk",
        "report", "fingerprint", "ii", "seconds", "served_from", "error",
    )

    def __init__(self, index: int, payload: Dict[str, object], key: str):
        self.index = index
        self.payload = payload
        self.key = key
        self.state = "pending"
        self.requeues = 0
        self.worker: Optional[str] = None
        self.chunk: Optional[str] = None
        self.report: Optional[CompilationReport] = None
        self.fingerprint: Optional[object] = None
        self.ii: Optional[int] = None
        self.seconds: Optional[float] = None
        self.served_from: Optional[str] = None
        self.error: Optional[str] = None

    def describe(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "index": self.index,
            "key": self.key,
            "state": self.state,
        }
        if self.requeues:
            info["requeues"] = self.requeues
        if self.worker is not None:
            info["worker"] = self.worker
        if self.state == "done":
            info["fingerprint"] = self.fingerprint
            info["ii"] = self.ii
            info["served_from"] = self.served_from
            if self.seconds is not None:
                info["seconds"] = self.seconds
        elif self.state == "failed":
            info["error"] = self.error
        return info


@dataclass
class Chunk:
    """One granted lease over a set of job indices."""

    id: str
    worker: str
    indices: Tuple[int, ...]
    lease_seconds: float
    deadline: float  # monotonic
    heartbeats: int = 0


@dataclass
class SweepPlan:
    """A validated, enumerated sweep spec (built off the event loop)."""

    id: str
    spec: Dict[str, object]
    label: Optional[str]
    lease_seconds: float
    max_requeues: int
    seed: int
    payloads: List[Dict[str, object]]
    keys: List[str]
    #: index -> report found durable in the disk cache at planning time.
    prefilled: Dict[int, CompilationReport] = field(default_factory=dict)


class Sweep:
    """One sweep's live ledger on the coordinator."""

    def __init__(self, plan: SweepPlan):
        self.id = plan.id
        self.spec = plan.spec
        self.label = plan.label
        self.lease_seconds = plan.lease_seconds
        self.max_requeues = plan.max_requeues
        self.seed = plan.seed
        self.state = "open"
        self.recovered = False
        self.jobs: List[SweepJob] = [
            SweepJob(i, payload, key)
            for i, (payload, key) in enumerate(zip(plan.payloads, plan.keys))
        ]
        self.pending: Deque[int] = deque()
        self.chunks: Dict[str, Chunk] = {}
        self.workers: Dict[str, Dict[str, object]] = {}
        self._chunk_no = 0
        self._rng = random.Random(_sweep_rng_seed(plan.id, plan.seed))
        # Counters (rolled up into the /metrics "sweep" section).
        self.chunks_granted = 0
        self.chunks_completed = 0
        self.chunks_requeued = 0
        self.lease_expiries = 0
        self.duplicate_results = 0
        self.orphan_completions = 0
        self.invalid_results = 0
        self.cache_prefills = 0
        for job in self.jobs:
            report = plan.prefilled.get(job.index)
            if report is not None:
                self._prefill(job, report)
            else:
                self.pending.append(job.index)

    def _prefill(self, job: SweepJob, report: CompilationReport) -> None:
        job.state = "done"
        job.report = report
        job.fingerprint = schedule_fingerprint(report.result)
        job.ii = report.result.ii
        job.served_from = "cache"
        self.cache_prefills += 1

    # ------------------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def job_states(self) -> Dict[str, int]:
        counts = {state: 0 for state in SWEEP_JOB_STATES}
        for job in self.jobs:
            counts[job.state] += 1
        return counts

    def active_workers(self, now: float) -> int:
        horizon = STALE_WORKER_LEASES * self.lease_seconds
        return sum(
            1
            for info in self.workers.values()
            if now - float(info["last_seen"]) <= horizon
        )

    def touch_worker(self, name: str, now: float) -> Dict[str, object]:
        info = self.workers.get(name)
        if info is None:
            info = self.workers[name] = {
                "last_seen": now,
                "claims": 0,
                "jobs_done": 0,
                "lease_expiries": 0,
            }
        info["last_seen"] = now
        return info

    def discard_pending(self, index: int) -> None:
        """Drop *index* from the pending queue if it is queued there."""
        try:
            self.pending.remove(index)
        except ValueError:
            pass


# ----------------------------------------------------------------------
# Spec enumeration and worker-result decoding (run off the event loop)
# ----------------------------------------------------------------------


def enumerate_sweep(
    spec: object,
    toolchain,
    disk_cache=None,
) -> SweepPlan:
    """Validate a sweep spec into a :class:`SweepPlan`.

    Blocking (payload parsing, content hashing and optional disk-cache
    probing are CPU/IO work) — the daemon runs this in an executor.

    The sweep id is a content hash of the normalized spec, so
    re-submitting an identical spec is idempotent: the coordinator
    returns the existing sweep instead of forking a duplicate.
    """
    if not isinstance(spec, dict):
        raise ServiceError("sweep spec must be a JSON object", status=400)
    payloads = _enumerate_payloads(spec)
    if not payloads:
        raise ServiceError("sweep spec enumerates zero jobs", status=400)
    if len(payloads) > MAX_SWEEP_JOBS:
        raise ServiceError(
            f"sweep enumerates {len(payloads)} jobs; "
            f"the per-sweep bound is {MAX_SWEEP_JOBS}",
            status=400,
        )
    try:
        lease_seconds = float(spec.get("lease", DEFAULT_LEASE_SECONDS))
        max_requeues = int(spec.get("max_requeues", DEFAULT_MAX_REQUEUES))
        seed = int(spec.get("seed", 0))
    except (TypeError, ValueError):
        raise ServiceError(
            "'lease' must be a number, 'max_requeues'/'seed' integers",
            status=400,
        )
    if lease_seconds <= 0:
        raise ServiceError("'lease' must be > 0 seconds", status=400)
    if max_requeues < 0:
        raise ServiceError("'max_requeues' must be >= 0", status=400)
    label = spec.get("label")
    label = str(label) if label is not None else None

    keys = []
    pipeline = toolchain.pass_names
    for payload in payloads:
        parsed = parse_compile_payload(payload)
        keys.append(content_hash(parsed.request, pipeline=pipeline))
    normalized = {
        "jobs": payloads,
        "lease": lease_seconds,
        "max_requeues": max_requeues,
        "seed": seed,
        "label": label,
    }
    canonical = json.dumps(normalized, sort_keys=True, separators=(",", ":"))
    sweep_id = (
        "sw-" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]
    )
    prefilled: Dict[int, CompilationReport] = {}
    if disk_cache is not None:
        # Results merge through the content-hash cache, so a re-run of a
        # sweep whose results are already durable starts (partially)
        # done — the incremental-re-run property of the batch compiler,
        # now distributed.  Only the disk tier is probed here: this runs
        # on an executor thread and the memory LRU belongs to the loop.
        for index, key in enumerate(keys):
            report = disk_cache.get(key)
            if report is not None:
                prefilled[index] = report
    return SweepPlan(
        id=sweep_id,
        spec={"jobs": payloads, "lease": lease_seconds,
              "max_requeues": max_requeues, "seed": seed,
              **({"label": label} if label is not None else {})},
        label=label,
        lease_seconds=lease_seconds,
        max_requeues=max_requeues,
        seed=seed,
        payloads=payloads,
        keys=keys,
        prefilled=prefilled,
    )


def _enumerate_payloads(spec: Dict[str, object]) -> List[Dict[str, object]]:
    """The explicit job list of a spec (either form)."""
    jobs = spec.get("jobs")
    if jobs is not None:
        if not isinstance(jobs, list) or not all(
            isinstance(job, dict) for job in jobs
        ):
            raise ServiceError(
                "'jobs' must be a list of compile payload objects", status=400
            )
        return [dict(job) for job in jobs]
    kernels = spec.get("kernels")
    if kernels is None:
        raise ServiceError(
            "sweep spec needs 'jobs' (explicit payloads) or 'kernels' "
            "(cross-product form)",
            status=400,
        )
    if isinstance(kernels, str):
        kernels = [part for part in kernels.split(",") if part]
    if not isinstance(kernels, list):
        raise ServiceError("'kernels' must be a list or comma string", status=400)
    clusters = spec.get("clusters", [4])
    topologies = spec.get("topologies", ["ring"])
    if not isinstance(clusters, list):
        clusters = [clusters]
    if isinstance(topologies, str):
        topologies = [part for part in topologies.split(",") if part]
    if not isinstance(topologies, list):
        raise ServiceError("'topologies' must be a list or comma string", status=400)
    shared = {
        name: spec[name]
        for name in ("config", "unroll", "scheduler", "kernel_args")
        if spec.get(name) is not None
    }
    payloads = []
    for kernel in kernels:
        for topology in topologies:
            for count in clusters:
                try:
                    count = int(count)
                except (TypeError, ValueError):
                    raise ServiceError(
                        f"bad cluster count {count!r} in sweep spec", status=400
                    )
                payloads.append(
                    {
                        "kernel": str(kernel),
                        "clusters": count,
                        "topology": str(topology),
                        **shared,
                    }
                )
    return payloads


def encode_report(report: CompilationReport) -> str:
    """The wire form of one report (base64 pickle, see module doc)."""
    return base64.b64encode(
        pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_worker_results(results: object) -> List[Dict[str, object]]:
    """Validate/decode one completion's result list (executor-side).

    Each decoded entry carries either ``report_obj`` (the unpickled
    report, with the fingerprint *recomputed* from its schedule — the
    worker's claim is never trusted) or ``error`` (a deterministic
    compile failure), or ``invalid`` when the entry cannot be used.
    """
    if not isinstance(results, list):
        raise ServiceError("'results' must be a list", status=400)
    if len(results) > MAX_SWEEP_JOBS:
        raise ServiceError("'results' list implausibly long", status=400)
    decoded: List[Dict[str, object]] = []
    for entry in results:
        if not isinstance(entry, dict) or "index" not in entry:
            raise ServiceError(
                "each result needs at least an 'index'", status=400
            )
        try:
            item: Dict[str, object] = {
                "index": int(entry["index"]),
                "key": str(entry.get("key", "")),
            }
        except (TypeError, ValueError):
            raise ServiceError("result 'index' must be an integer", status=400)
        if entry.get("error") is not None:
            item["error"] = str(entry["error"])[:1000]
            decoded.append(item)
            continue
        blob = entry.get("report")
        if not isinstance(blob, str):
            item["invalid"] = "result carries neither 'error' nor 'report'"
            decoded.append(item)
            continue
        try:
            report = pickle.loads(base64.b64decode(blob.encode("ascii")))
            if not isinstance(report, CompilationReport):
                raise ServiceError("decoded object is not a CompilationReport")
            item["report_obj"] = report
            item["fingerprint"] = schedule_fingerprint(report.result)
            item["ii"] = report.result.ii
        except Exception as err:  # repro: lint-ignore[exception-discipline]: untrusted-bytes boundary - unpickling a worker-shipped report can raise nearly anything; a bad entry must requeue that one job, not fail the whole completion
            item["invalid"] = f"undecodable report: {type(err).__name__}: {err}"
        else:
            seconds = entry.get("seconds")
            if isinstance(seconds, (int, float)):
                item["seconds"] = round(float(seconds), 4)
        decoded.append(item)
    return decoded


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------


class SweepCoordinator:
    """Sweep ledger + lease bookkeeping inside a :class:`CompileService`.

    All state mutation happens in synchronous methods called from the
    daemon's event loop — every async entry point follows the pattern
    *decode off-loop, mutate synchronously, journal afterwards*, so no
    check-then-act ever straddles an ``await`` (the async-atomicity
    invariant the lint gate enforces).
    """

    def __init__(self, service, check_interval: float = 0.2):
        self.service = service
        self.check_interval = check_interval
        self.sweeps: Dict[str, Sweep] = {}
        self._order: Deque[str] = deque()
        self.recovered_sweeps = 0

    # ------------------------------------------------------------------
    # Lookup / status
    # ------------------------------------------------------------------

    def get(self, sweep_id: str) -> Sweep:
        sweep = self.sweeps.get(str(sweep_id))
        if sweep is None:
            raise ServiceError(f"unknown sweep {sweep_id!r}", status=404)
        return sweep

    def status(self, sweep: Sweep, include_jobs: bool = False) -> Dict[str, object]:
        now = time.monotonic()
        states = sweep.job_states()
        doc: Dict[str, object] = {
            "sweep": sweep.id,
            "state": sweep.state,
            "total": len(sweep.jobs),
            "done": states["done"],
            "failed": states["failed"],
            "leased": states["leased"],
            "pending": states["pending"],
            # What a worker's local chunk math consumes: claimable jobs
            # and the current active-worker estimate.
            "remaining": len(sweep.pending),
            "active_workers": sweep.active_workers(now),
            "chunks_outstanding": len(sweep.chunks),
            "lease_seconds": sweep.lease_seconds,
            "max_requeues": sweep.max_requeues,
        }
        if sweep.label is not None:
            doc["label"] = sweep.label
        if sweep.recovered:
            doc["recovered"] = True
        if include_jobs:
            doc["jobs"] = [job.describe() for job in sweep.jobs]
        return doc

    def list_sweeps(self) -> List[Dict[str, object]]:
        return [self.status(self.sweeps[sid]) for sid in self._order]

    def result_rows(
        self, sweep: Sweep, start: int, stop: int
    ) -> List[Tuple[Dict[str, object], Optional[CompilationReport]]]:
        """Describe jobs ``[start, stop)`` with their report objects.

        The caller (the daemon's results handler) base64-pickles the
        reports off-loop when the client asked for them.
        """
        start = max(0, start)
        stop = min(len(sweep.jobs), stop)
        return [
            (job.describe(), job.report) for job in sweep.jobs[start:stop]
        ]

    def counters(self) -> Optional[Dict[str, object]]:
        """The ``/metrics`` sweep section (``None`` before any sweep)."""
        if not self.sweeps:
            return None
        now = time.monotonic()
        sweep_states = {"open": 0, "done": 0, "failed": 0}
        jobs = {state: 0 for state in SWEEP_JOB_STATES}
        chunks = {
            "granted": 0, "completed": 0, "requeued": 0,
            "outstanding": 0, "lease_expiries": 0,
        }
        completions = {
            "duplicate": 0, "orphan": 0, "invalid": 0, "cache_prefills": 0,
        }
        workers: Dict[str, Dict[str, object]] = {}
        for sweep in self.sweeps.values():
            sweep_states[sweep.state] += 1
            for state, count in sweep.job_states().items():
                jobs[state] += count
            chunks["granted"] += sweep.chunks_granted
            chunks["completed"] += sweep.chunks_completed
            chunks["requeued"] += sweep.chunks_requeued
            chunks["outstanding"] += len(sweep.chunks)
            chunks["lease_expiries"] += sweep.lease_expiries
            completions["duplicate"] += sweep.duplicate_results
            completions["orphan"] += sweep.orphan_completions
            completions["invalid"] += sweep.invalid_results
            completions["cache_prefills"] += sweep.cache_prefills
            for name, info in sweep.workers.items():
                age = round(now - float(info["last_seen"]), 3)
                merged = workers.get(name)
                if merged is None:
                    merged = workers[name] = {
                        "heartbeat_age_seconds": age,
                        "claims": 0,
                        "jobs_done": 0,
                        "lease_expiries": 0,
                    }
                merged["heartbeat_age_seconds"] = min(
                    merged["heartbeat_age_seconds"], age
                )
                merged["claims"] += info["claims"]
                merged["jobs_done"] += info["jobs_done"]
                merged["lease_expiries"] += info["lease_expiries"]
        jobs["total"] = sum(jobs[state] for state in SWEEP_JOB_STATES)
        return {
            "sweeps": sweep_states,
            "jobs": jobs,
            "chunks": chunks,
            "completions": completions,
            "workers": dict(sorted(workers.items())),
            "recovered_sweeps": self.recovered_sweeps,
        }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def plan(self, spec: object) -> SweepPlan:
        """Enumerate + validate *spec* (blocking; run in an executor)."""
        return enumerate_sweep(
            spec, self.service.toolchain, self.service.cache.disk
        )

    async def submit(self, spec: object) -> Dict[str, object]:
        """Admit one sweep spec; idempotent on the spec's content hash."""
        if self.service._draining:
            raise ServiceError(
                "service is draining; not admitting sweeps", status=503
            )
        import asyncio

        loop = asyncio.get_running_loop()
        plan = await loop.run_in_executor(None, self.plan, spec)
        sweep = self.sweeps.get(plan.id)
        if sweep is not None:
            return self.status(sweep)
        sweep = self._install(Sweep(plan))
        # Durability before acknowledgement, like job submission: the
        # spec is on disk before any worker can see the sweep id.
        await self.service._journal_event(
            "sweep-submitted",
            f"sweep:{sweep.id}",
            payload=sweep.spec,
            total=len(sweep.jobs),
        )
        prefilled = {
            str(job.index): job.key
            for job in sweep.jobs
            if job.state == "done"
        }
        if prefilled:
            await self.service._journal_event(
                "sweep-progress", f"sweep:{sweep.id}", done=prefilled
            )
        await self._maybe_finish(sweep)
        return self.status(sweep)

    def _install(self, sweep: Sweep) -> Sweep:
        self.sweeps[sweep.id] = sweep
        self._order.append(sweep.id)
        while len(self._order) > SWEEP_HISTORY:
            old = self._order[0]
            if self.sweeps.get(old) is not None and self.sweeps[old].terminal:
                self._order.popleft()
                del self.sweeps[old]
            else:  # still open: keep it, trim later
                break
        return sweep

    # ------------------------------------------------------------------
    # Worker-facing: claim / heartbeat / complete
    # ------------------------------------------------------------------

    def claim(self, sweep_id: str, body: object) -> Dict[str, object]:
        """Grant up to ``count`` pending jobs to ``worker`` under a lease."""
        if self.service._draining:
            raise ServiceError(
                "service is draining; not granting chunks", status=503
            )
        worker, count = self._worker_and_count(body)
        sweep = self.get(sweep_id)
        now = time.monotonic()
        info = sweep.touch_worker(worker, now)
        grant: Dict[str, object] = {
            "sweep": sweep.id,
            "state": sweep.state,
            "chunk": None,
            "jobs": [],
            "remaining": len(sweep.pending),
            "active_workers": sweep.active_workers(now),
        }
        if sweep.state != "open" or not sweep.pending:
            return grant
        indices = tuple(
            sweep.pending.popleft()
            for _ in range(min(count, len(sweep.pending)))
        )
        sweep._chunk_no += 1
        chunk_id = f"c{sweep._chunk_no}"
        # Seeded jitter keeps expiry deterministic per (sweep, chunk)
        # sequence while decorrelating requeue timing across chunks.
        lease = sweep.lease_seconds * (1.0 + LEASE_JITTER * sweep._rng.random())
        chunk = Chunk(
            id=chunk_id,
            worker=worker,
            indices=indices,
            lease_seconds=lease,
            deadline=now + lease,
        )
        sweep.chunks[chunk_id] = chunk
        for index in indices:
            job = sweep.jobs[index]
            job.state = "leased"
            job.worker = worker
            job.chunk = chunk_id
        info["claims"] = int(info["claims"]) + 1
        sweep.chunks_granted += 1
        grant.update(
            chunk=chunk_id,
            lease_seconds=round(lease, 3),
            jobs=[
                {
                    "index": index,
                    "key": sweep.jobs[index].key,
                    "payload": sweep.jobs[index].payload,
                }
                for index in indices
            ],
            remaining=len(sweep.pending),
        )
        return grant

    def heartbeat(self, sweep_id: str, body: object) -> Dict[str, object]:
        """Extend one chunk's lease; tells the worker if the lease died."""
        worker, _ = self._worker_and_count(body, need_count=False)
        chunk_id = self._chunk_id(body)
        sweep = self.get(sweep_id)
        now = time.monotonic()
        sweep.touch_worker(worker, now)
        chunk = sweep.chunks.get(chunk_id)
        if chunk is None or chunk.worker != worker:
            # Expired-and-requeued (or stolen) — the worker may finish
            # and complete anyway; the merge path resolves duplicates.
            return {
                "sweep": sweep.id,
                "chunk": chunk_id,
                "ok": False,
                "reason": "lease not held (expired, requeued or unknown)",
            }
        chunk.deadline = now + chunk.lease_seconds
        chunk.heartbeats += 1
        return {
            "sweep": sweep.id,
            "chunk": chunk_id,
            "ok": True,
            "lease_seconds": round(chunk.lease_seconds, 3),
        }

    async def complete(self, sweep_id: str, body: object) -> Dict[str, object]:
        """Merge one chunk's results; idempotent under duplicates/orphans."""
        worker, _ = self._worker_and_count(body, need_count=False)
        chunk_id = self._chunk_id(body)
        if not isinstance(body, dict):
            raise ServiceError("completion body must be an object", status=400)
        import asyncio

        loop = asyncio.get_running_loop()
        decoded = await loop.run_in_executor(
            None, decode_worker_results, body.get("results")
        )
        sweep = self.get(sweep_id)
        ack, done, failed = self._merge(sweep, worker, chunk_id, decoded)
        if done or failed:
            await self.service._journal_event(
                "sweep-progress",
                f"sweep:{sweep.id}",
                done=done or None,
                failed=failed or None,
            )
        await self._maybe_finish(sweep)
        ack["state"] = sweep.state
        return ack

    def _merge(
        self,
        sweep: Sweep,
        worker: str,
        chunk_id: str,
        decoded: List[Dict[str, object]],
    ) -> Tuple[Dict[str, object], Dict[str, str], Dict[str, str]]:
        """Fold decoded results into the ledger (synchronous, no awaits)."""
        now = time.monotonic()
        info = sweep.touch_worker(worker, now)
        chunk = sweep.chunks.pop(chunk_id, None)
        orphan = chunk is None
        if orphan:
            sweep.orphan_completions += 1
        else:
            sweep.chunks_completed += 1
            # Jobs granted in the chunk but absent from the results (a
            # partial completion) go straight back to pending.
            reported = {int(entry["index"]) for entry in decoded}
            for index in chunk.indices:
                job = sweep.jobs[index]
                if index not in reported and job.chunk == chunk_id and (
                    job.state == "leased"
                ):
                    self._requeue(sweep, job)
        done: Dict[str, str] = {}
        failed: Dict[str, str] = {}
        accepted = duplicates = invalid = 0
        for entry in decoded:
            index = int(entry["index"])
            if not (0 <= index < len(sweep.jobs)):
                sweep.invalid_results += 1
                invalid += 1
                continue
            job = sweep.jobs[index]
            if entry["key"] and entry["key"] != job.key:
                sweep.invalid_results += 1
                invalid += 1
                continue
            if job.state in ("done", "failed"):
                # Lease-steal aftermath: someone already landed this job.
                # First durable result won; the bits were identical.
                sweep.duplicate_results += 1
                duplicates += 1
                continue
            if entry.get("invalid"):
                sweep.invalid_results += 1
                invalid += 1
                if job.state == "leased" and job.chunk == chunk_id:
                    self._requeue(sweep, job)
                continue
            if job.state == "pending":
                sweep.discard_pending(index)
            if entry.get("error") is not None:
                job.state = "failed"
                job.error = str(entry["error"])
                job.worker = worker
                job.chunk = None
                failed[str(index)] = job.error
                accepted += 1
                continue
            report = entry["report_obj"]
            existing, _tier = self.service.cache.get_tiered(job.key)
            if existing is not None:
                # First durable result wins; results are bit-identical
                # by construction so which object we keep is cosmetic.
                report = existing
                job.served_from = "cache"
            else:
                self.service.cache.put(job.key, report)
                job.served_from = worker
            job.state = "done"
            job.report = report
            job.fingerprint = entry["fingerprint"]
            job.ii = entry.get("ii")
            job.seconds = entry.get("seconds")
            job.worker = worker
            job.chunk = None
            done[str(index)] = job.key
            info["jobs_done"] = int(info["jobs_done"]) + 1
            accepted += 1
        ack = {
            "sweep": sweep.id,
            "chunk": chunk_id,
            "accepted": accepted,
            "duplicates": duplicates,
            "invalid": invalid,
            "orphan": orphan,
            "remaining": len(sweep.pending),
        }
        return ack, done, failed

    def _requeue(self, sweep: Sweep, job: SweepJob) -> None:
        """One leased job back to the queue front (or poison quarantine)."""
        job.requeues += 1
        job.chunk = None
        if job.requeues > sweep.max_requeues:
            job.state = "failed"
            job.error = (
                f"quarantined: {job.requeues} leases expired without a "
                f"completion (last worker {job.worker!r})"
            )
            return
        job.state = "pending"
        job.worker = None
        # Front of the queue: the job already waited its turn once.
        sweep.pending.appendleft(job.index)

    def _worker_and_count(
        self, body: object, need_count: bool = True
    ) -> Tuple[str, int]:
        if not isinstance(body, dict):
            raise ServiceError("request body must be an object", status=400)
        worker = body.get("worker")
        if not worker or not isinstance(worker, str):
            raise ServiceError("'worker' (a non-empty name) is required", status=400)
        count = 1
        if need_count:
            try:
                count = int(body.get("count", 1))
            except (TypeError, ValueError):
                raise ServiceError("'count' must be an integer", status=400)
            if count < 1:
                raise ServiceError("'count' must be >= 1", status=400)
            count = min(count, MAX_SWEEP_JOBS)
        return str(worker), count

    @staticmethod
    def _chunk_id(body: object) -> str:
        if not isinstance(body, dict) or not body.get("chunk"):
            raise ServiceError("'chunk' (a chunk id) is required", status=400)
        return str(body["chunk"])

    # ------------------------------------------------------------------
    # Lease expiry (the coordinator's periodic tick)
    # ------------------------------------------------------------------

    async def run_ticks(self) -> None:
        """Periodic lease scan; owned as a task by the daemon."""
        import asyncio

        while True:
            await asyncio.sleep(self.check_interval)
            for sweep, failed in self.expire_leases():
                if failed:
                    await self.service._journal_event(
                        "sweep-progress", f"sweep:{sweep.id}", failed=failed
                    )
                await self._maybe_finish(sweep)

    def expire_leases(
        self, now: Optional[float] = None
    ) -> List[Tuple[Sweep, Dict[str, str]]]:
        """Requeue every chunk whose lease deadline passed (synchronous).

        Returns the sweeps that changed, each with the job indices the
        expiry *quarantined* (so the caller can journal them).
        """
        now = time.monotonic() if now is None else now
        touched: List[Tuple[Sweep, Dict[str, str]]] = []
        for sweep in self.sweeps.values():
            if sweep.terminal:
                continue
            expired = [
                chunk for chunk in sweep.chunks.values() if chunk.deadline <= now
            ]
            if not expired:
                continue
            failed: Dict[str, str] = {}
            for chunk in expired:
                del sweep.chunks[chunk.id]
                sweep.lease_expiries += 1
                sweep.chunks_requeued += 1
                info = sweep.workers.get(chunk.worker)
                if info is not None:
                    info["lease_expiries"] = int(info["lease_expiries"]) + 1
                for index in chunk.indices:
                    job = sweep.jobs[index]
                    if job.state != "leased" or job.chunk != chunk.id:
                        continue  # completed (or re-leased) meanwhile
                    self._requeue(sweep, job)
                    if job.state == "failed":
                        failed[str(index)] = str(job.error)
            touched.append((sweep, failed))
        return touched

    async def _maybe_finish(self, sweep: Sweep) -> None:
        """Close the sweep out once every job is terminal."""
        if sweep.terminal:
            return
        states = sweep.job_states()
        if states["pending"] or states["leased"]:
            return
        # Mutate before the journal await: a concurrent completion then
        # sees the terminal state and resolves as a duplicate.
        sweep.state = "failed" if states["failed"] and not states["done"] else "done"
        if states["failed"] and sweep.state == "done":
            # Partially failed sweeps still finish: per-job errors are
            # deterministic compile outcomes, not coordinator trouble.
            pass
        event = "sweep-done" if sweep.state == "done" else "sweep-failed"
        await self.service._journal_event(
            event,
            f"sweep:{sweep.id}",
            done=str(states["done"]),
            failed=str(states["failed"]),
        )

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    async def recover(self, entry) -> None:
        """Rebuild one open sweep from its journal entry (startup path).

        The spec is re-enumerated and the content-hash cache re-probed:
        jobs whose results are durable come back ``done`` (first durable
        result wins — exactly the duplicate-completion rule), indices
        the journal recorded as failed stay failed, and everything else
        is re-advertised to workers.
        """
        import asyncio

        key = entry.key
        sweep_id = key.split(":", 1)[1] if ":" in key else key
        if entry.payload is None:
            await self.service._journal_event(
                "sweep-failed", key,
                error="journal record carries no sweep spec to replay",
            )
            return
        loop = asyncio.get_running_loop()
        try:
            plan = await loop.run_in_executor(None, self.plan, entry.payload)
        except ServiceError as err:
            await self.service._journal_event(
                "sweep-failed", key, error=f"replay rejected: {err}"
            )
            return
        if plan.id != sweep_id:
            # The spec no longer hashes to the journaled id (hand-edited
            # journal); recover it under the id it was journaled as.
            plan.id = sweep_id
        sweep = Sweep(plan)
        sweep.recovered = True
        for index_str, error in entry.sweep_failed.items():
            try:
                index = int(index_str)
            except ValueError:
                continue
            if 0 <= index < len(sweep.jobs):
                job = sweep.jobs[index]
                if job.state == "pending":
                    sweep.discard_pending(index)
                if job.state != "done":
                    job.state = "failed"
                    job.error = str(error)
        self._install(sweep)
        self.recovered_sweeps += 1
        await self._maybe_finish(sweep)
