"""Synchronous client for the compilation service.

:class:`ServiceClient` is a small blocking wrapper over the daemon's
HTTP surface — plain ``socket`` + the framing helpers from
:mod:`repro.service.http`, no third-party dependencies and no asyncio on
the client side.  It backs ``repro schedule --remote host:port`` and is
the natural handle for driving a shared daemon from scripts::

    from repro.service import ServiceClient

    with ServiceClient("127.0.0.1:8731") as client:
        result = client.compile({"kernel": "fir_filter", "clusters": 4})
        print(result["report"]["ii"], result["served_from"])

Every call opens one connection (the server is ``Connection: close``);
open sockets are tracked on the client and released by :meth:`close`
(or the ``with`` block), so an exception mid-stream never leaks a
handle.

Transient failures are retried under a :class:`RetryPolicy`:

* **transport errors** — connection refused/reset, read timeouts,
  truncated responses — are retried with exponential backoff plus
  deterministic *seeded* jitter (no unseeded RNG anywhere, per the
  project determinism rule: two clients built with the same
  ``jitter_seed`` back off identically);
* **backpressure** — a 429/503 carrying a ``Retry-After`` header — is
  retried after the server-suggested delay.

Re-submission is safe because every compile is keyed on its content
hash server-side: a retried POST either coalesces onto the original
in-flight job or is served from cache — it never runs twice.
"""

from __future__ import annotations

import dataclasses
import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple, Union

from ..errors import ServiceError, ServiceUnavailable
from .http import ProtocolError, decode_chunks
from .jobs import request_to_payload

#: Default connect timeout: establishing a TCP connection to a live
#: daemon is milliseconds-scale; ten seconds means "it is not there".
DEFAULT_CONNECT_TIMEOUT = 10.0

#: Default read timeout: compiles are seconds-scale; leave margin for a
#: queued job behind a deep backlog.
DEFAULT_READ_TIMEOUT = 300.0

#: Back-compat alias for the pre-split single timeout (read semantics).
DEFAULT_TIMEOUT = DEFAULT_READ_TIMEOUT


class TransportError(ServiceError):
    """Connection-level failure (refused, reset, timed out, truncated).

    Distinct from a server-sent error status: the request may never
    have reached the daemon, so the retry loop treats these as always
    safe to retry (service requests are idempotent, see module doc).
    """

    def __init__(self, message: str):
        super().__init__(message, status=503)


@dataclass(frozen=True)
class RetryPolicy:
    """When and how a :class:`ServiceClient` retries.

    ``max_attempts=1`` disables retrying entirely.  Backoff before
    attempt *n* (2-based) is
    ``min(cap, base * factor**(n-2)) * (1 + jitter * u)`` with *u*
    drawn from a :class:`random.Random` seeded with ``jitter_seed`` —
    deterministic per client, decorrelated across differently-seeded
    clients.  ``retry_busy`` gates honoring ``Retry-After`` on 429/503.

    ``total_deadline`` bounds one exchange's *total* wall clock
    (monotonic), retries and backoff sleeps included: a daemon that
    keeps answering 503 + ``Retry-After`` cannot pin a caller forever —
    once the next sleep would overrun the deadline the client raises
    :class:`~repro.errors.ServiceUnavailable` instead of sleeping.
    ``None`` restores the old unbounded behavior.
    """

    max_attempts: int = 4
    connect_timeout: float = DEFAULT_CONNECT_TIMEOUT
    read_timeout: float = DEFAULT_READ_TIMEOUT
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.5
    jitter_seed: int = 0
    retry_busy: bool = True
    total_deadline: Optional[float] = 600.0

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Sleep before *attempt* (the first retry is attempt 2)."""
        step = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 2),
        )
        return step * (1.0 + self.jitter * rng.random())


#: A policy that never retries (probing exact admission behavior).
NO_RETRY = RetryPolicy(max_attempts=1)


def _parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    text = str(address)
    host, sep, port = text.rpartition(":")
    if not sep:
        raise ServiceError(
            f"service address {text!r} must look like 'host:port'", status=400
        )
    try:
        return (host or "127.0.0.1"), int(port)
    except ValueError:
        raise ServiceError(f"bad port in service address {text!r}", status=400)


class ServiceClient:
    """Blocking, retrying client for one ``repro serve`` daemon.

    A client is cheap to construct; build one per thread when the
    deterministic backoff sequence matters (the jitter RNG is
    per-client state).
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        timeout: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
    ):
        """
        Args:
            address: ``"host:port"`` or a ``(host, port)`` tuple.
            timeout: back-compat single timeout — sets both the connect
                and read timeouts of *policy* when given.
            policy: retry/timeout policy (default :class:`RetryPolicy`).
        """
        self.host, self.port = _parse_address(address)
        policy = policy or RetryPolicy()
        if timeout is not None:
            policy = dataclasses.replace(
                policy, connect_timeout=timeout, read_timeout=timeout
            )
        self.policy = policy
        self._rng = random.Random(policy.jitter_seed)
        self._sockets: set = set()
        self.retries: Dict[str, int] = {"transport": 0, "busy": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close every socket this client still has open."""
        while self._sockets:
            self._release(self._sockets.pop())

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        """One tracked connection; release with :meth:`_release`."""
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.policy.connect_timeout
            )
        except OSError as err:
            raise TransportError(
                f"cannot reach service at {self.host}:{self.port}: {err}"
            )
        sock.settimeout(self.policy.read_timeout)
        self._sockets.add(sock)
        return sock

    def _release(self, sock: socket.socket) -> None:
        self._sockets.discard(sock)
        try:
            sock.close()
        except OSError:  # pragma: no cover - close on a dead socket
            pass

    def _send_request(
        self, sock: socket.socket, method: str, path: str, payload: Optional[object]
    ) -> None:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        sock.sendall(head + body)

    @staticmethod
    def _split_head(raw: bytes) -> Tuple[int, Dict[str, str], bytes]:
        head, sep, rest = raw.partition(b"\r\n\r\n")
        if not sep:
            raise TransportError("truncated response from service")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ProtocolError(f"malformed status line {lines[0]!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise ProtocolError(f"malformed status code in {lines[0]!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, rest

    def _roundtrip_once(
        self, method: str, path: str, payload: Optional[object]
    ) -> Tuple[int, Dict[str, str], object]:
        """One request/response exchange (fixed-length responses)."""
        sock = self._connect()
        try:
            self._send_request(sock, method, path, payload)
            raw = b""
            while True:
                try:
                    piece = sock.recv(65536)
                except OSError as err:
                    raise TransportError(f"read from service failed: {err}")
                if not piece:
                    break
                raw += piece
        finally:
            self._release(sock)
        status, headers, body = self._split_head(raw)
        if headers.get("transfer-encoding") == "chunked":
            chunks, _, finished = decode_chunks(body)
            if not finished:
                raise TransportError("truncated chunked response")
            body = b"".join(chunks)
        try:
            document = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ProtocolError(f"service sent invalid JSON: {err}")
        return status, headers, document

    def _roundtrip(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        retry_busy: Optional[bool] = None,
    ) -> Tuple[int, Dict[str, str], object]:
        """The retrying exchange (see the module doc for the policy)."""
        policy = self.policy
        busy_ok = policy.retry_busy if retry_busy is None else retry_busy
        deadline = None
        if policy.total_deadline is not None:
            deadline = time.monotonic() + policy.total_deadline
        attempt = 0
        while True:
            attempt += 1
            try:
                status, headers, document = self._roundtrip_once(
                    method, path, payload
                )
            except TransportError:
                if attempt >= policy.max_attempts:
                    raise
                self.retries["transport"] += 1
                self._backoff_sleep(
                    policy.backoff(attempt + 1, self._rng), deadline, path
                )
                continue
            if (
                busy_ok
                and status in (429, 503)
                and "retry-after" in headers
                and attempt < policy.max_attempts
            ):
                self.retries["busy"] += 1
                try:
                    delay = float(headers["retry-after"])
                except ValueError:
                    delay = policy.backoff(attempt + 1, self._rng)
                self._backoff_sleep(delay, deadline, path)
                continue
            return status, headers, document

    def _backoff_sleep(
        self, delay: float, deadline: Optional[float], path: str
    ) -> None:
        """Sleep before a retry — unless that would bust the deadline."""
        if deadline is not None and time.monotonic() + delay > deadline:
            raise ServiceUnavailable(
                f"service at {self.host}:{self.port} still unavailable for "
                f"{path} after {self.policy.total_deadline:g}s; giving up"
            )
        time.sleep(delay)

    def _expect_ok(
        self, status: int, document: object, headers: Optional[Dict[str, str]] = None
    ) -> object:
        if status >= 400:
            message = (
                document.get("error", f"service error {status}")
                if isinstance(document, dict)
                else f"service error {status}"
            )
            retry_after = None
            if headers and "retry-after" in headers:
                try:
                    retry_after = float(headers["retry-after"])
                except ValueError:
                    retry_after = None
            raise ServiceError(
                str(message), status=status, retry_after=retry_after
            )
        return document

    # ------------------------------------------------------------------
    # API calls
    # ------------------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        """Daemon liveness: ``{"status": "ok" | "draining", ...}``.

        Never busy-retried: a draining daemon's 503 *is* the answer.
        """
        _, _, document = self._roundtrip("GET", "/healthz", retry_busy=False)
        return document  # 503-when-draining still carries the body

    def metrics(self) -> Dict[str, object]:
        """The full ``/metrics`` snapshot."""
        status, headers, document = self._roundtrip("GET", "/metrics")
        return self._expect_ok(status, document, headers)

    def compile(self, payload: Dict[str, object], wait: bool = True) -> Dict[str, object]:
        """Submit one compile payload (see :mod:`repro.service.jobs`).

        With ``wait=True`` (default) blocks until the result document;
        with ``wait=False`` returns the 202 admission receipt
        (``{"job": id, ...}``) immediately.
        """
        body = dict(payload)
        if not wait:
            body["wait"] = False
        status, headers, document = self._roundtrip("POST", "/compile", body)
        return self._expect_ok(status, document, headers)

    def compile_request(
        self, request, priority: str = "normal", **extra
    ) -> Dict[str, object]:
        """Compile a local :class:`~repro.api.request.CompilationRequest`
        remotely (serializes the loop + machine + config over the wire)."""
        return self.compile(request_to_payload(request, priority=priority, **extra))

    def job(self, job_id: int) -> Dict[str, object]:
        """Status document for one job id."""
        status, headers, document = self._roundtrip("GET", f"/jobs/{job_id}")
        return self._expect_ok(status, document, headers)

    def events(self, job_id: int, since: int = 0) -> Iterator[Dict[str, object]]:
        """Stream a job's events until it reaches a terminal state.

        Yields each event dict as the daemon emits it (chunked JSON
        lines decoded incrementally).  The stream is **resumable**: a
        mid-stream disconnect (reset by peer, truncated stream) makes
        the iterator reconnect with ``?since=<consumed>`` — the daemon
        replays only the events this iterator has not yielded yet, so
        the consumer sees each event exactly once.  *since* starts the
        stream at a given offset for callers resuming across their own
        restarts.  Reconnects share the policy's ``max_attempts`` bound
        on *consecutive* failures (progress resets the count); the
        socket is always released, even when the consumer abandons the
        generator mid-stream.
        """
        consumed = max(0, int(since))
        failures = 0
        while True:
            progressed = False
            try:
                for event in self._events_once(job_id, consumed):
                    consumed += 1
                    progressed = True
                    yield event
                return
            except TransportError:
                if progressed:
                    failures = 0
                failures += 1
                if failures >= self.policy.max_attempts:
                    raise
                self.retries["transport"] += 1
                time.sleep(self.policy.backoff(failures + 1, self._rng))

    def _events_once(
        self, job_id: int, start: int
    ) -> Iterator[Dict[str, object]]:
        """One event-stream connection from offset *start* (no retry).

        Raises :class:`TransportError` when the stream dies before the
        terminating zero-length chunk — the resume wrapper's signal to
        reconnect.  (The pre-resume client swallowed that EOF and
        silently dropped the tail of the stream.)
        """
        sock = self._connect()
        try:
            self._send_request(
                sock, "GET", f"/jobs/{job_id}/events?since={start}", None
            )
            buffer = b""
            head_done = False
            status = 200
            finished = False
            pending_text = b""
            while not finished:
                try:
                    piece = sock.recv(65536)
                except OSError as err:
                    raise TransportError(f"event stream read failed: {err}")
                if not piece:
                    break
                buffer += piece
                if not head_done:
                    if b"\r\n\r\n" not in buffer:
                        continue
                    status, headers, buffer = self._split_head(buffer)
                    head_done = True
                    if status >= 400 or headers.get("transfer-encoding") != "chunked":
                        # Error document arrives fixed-length; drain it.
                        while True:
                            piece = sock.recv(65536)
                            if not piece:
                                break
                            buffer += piece
                        document = json.loads(buffer.decode("utf-8") or "{}")
                        self._expect_ok(status, document, headers)
                        return
                chunks, buffer, finished = decode_chunks(buffer)
                for chunk in chunks:
                    pending_text += chunk
                    while b"\n" in pending_text:
                        line, _, pending_text = pending_text.partition(b"\n")
                        if line.strip():
                            yield json.loads(line.decode("utf-8"))
            if not finished:
                raise TransportError(
                    "event stream severed before the terminal event"
                )
        finally:
            self._release(sock)

    # ------------------------------------------------------------------
    # Sweep API (coordinator + worker verbs, see repro.service.sweep)
    # ------------------------------------------------------------------

    def sweeps(self) -> Dict[str, object]:
        """Every sweep the coordinator remembers: ``{"sweeps": [...]}``."""
        status, headers, document = self._roundtrip("GET", "/sweeps")
        return self._expect_ok(status, document, headers)

    def submit_sweep(self, spec: Dict[str, object]) -> Dict[str, object]:
        """Submit one sweep spec; idempotent on the spec's content hash."""
        status, headers, document = self._roundtrip("POST", "/sweeps", spec)
        return self._expect_ok(status, document, headers)

    def sweep(self, sweep_id: str, jobs: bool = False) -> Dict[str, object]:
        """One sweep's status (``jobs=True`` adds the per-job detail)."""
        path = f"/sweeps/{sweep_id}"
        if jobs:
            path += "?jobs=1"
        status, headers, document = self._roundtrip("GET", path)
        return self._expect_ok(status, document, headers)

    def sweep_results(
        self,
        sweep_id: str,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        pickle: bool = False,
    ) -> Dict[str, object]:
        """A page of per-job results (``pickle=True`` ships reports)."""
        params = []
        if start is not None:
            params.append(f"start={int(start)}")
        if stop is not None:
            params.append(f"stop={int(stop)}")
        if pickle:
            params.append("pickle=1")
        path = f"/sweeps/{sweep_id}/results"
        if params:
            path += "?" + "&".join(params)
        status, headers, document = self._roundtrip("GET", path)
        return self._expect_ok(status, document, headers)

    def sweep_claim(
        self, sweep_id: str, worker: str, count: int = 1
    ) -> Dict[str, object]:
        """Claim up to *count* jobs under a lease (worker verb).

        *count* is the worker's own self-scheduling chunk size — see
        :func:`repro.service.sweep.chunk_size`.
        """
        status, headers, document = self._roundtrip(
            "POST",
            f"/sweeps/{sweep_id}/claim",
            {"worker": worker, "count": int(count)},
        )
        return self._expect_ok(status, document, headers)

    def sweep_heartbeat(
        self, sweep_id: str, worker: str, chunk: str
    ) -> Dict[str, object]:
        """Extend one chunk's lease (worker verb; never busy-retried —
        a heartbeat is only useful now)."""
        status, headers, document = self._roundtrip(
            "POST",
            f"/sweeps/{sweep_id}/heartbeat",
            {"worker": worker, "chunk": chunk},
            retry_busy=False,
        )
        return self._expect_ok(status, document, headers)

    def sweep_complete(
        self, sweep_id: str, worker: str, chunk: str, results
    ) -> Dict[str, object]:
        """Deliver one chunk's results (worker verb; idempotent)."""
        status, headers, document = self._roundtrip(
            "POST",
            f"/sweeps/{sweep_id}/complete",
            {"worker": worker, "chunk": chunk, "results": list(results)},
        )
        return self._expect_ok(status, document, headers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ServiceClient {self.host}:{self.port}>"
