"""Synchronous client for the compilation service.

:class:`ServiceClient` is a small blocking wrapper over the daemon's
HTTP surface — plain ``socket`` + the framing helpers from
:mod:`repro.service.http`, no third-party dependencies and no asyncio on
the client side.  It backs ``repro schedule --remote host:port`` and is
the natural handle for driving a shared daemon from scripts::

    from repro.service import ServiceClient

    client = ServiceClient("127.0.0.1:8731")
    result = client.compile({"kernel": "fir_filter", "clusters": 4})
    print(result["report"]["ii"], result["served_from"])

Every call opens one connection (the server is ``Connection: close``),
so a client object is stateless and trivially thread-safe.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Iterator, Optional, Tuple, Union

from ..errors import ServiceError
from .http import ProtocolError, decode_chunks
from .jobs import request_to_payload

#: Default socket timeout: compiles are seconds-scale; leave margin for a
#: queued job behind a deep backlog.
DEFAULT_TIMEOUT = 300.0


def _parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    text = str(address)
    host, sep, port = text.rpartition(":")
    if not sep:
        raise ServiceError(
            f"service address {text!r} must look like 'host:port'", status=400
        )
    try:
        return (host or "127.0.0.1"), int(port)
    except ValueError:
        raise ServiceError(f"bad port in service address {text!r}", status=400)


class ServiceClient:
    """Blocking client for one ``repro serve`` daemon."""

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        timeout: float = DEFAULT_TIMEOUT,
    ):
        self.host, self.port = _parse_address(address)
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            return socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as err:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {err}",
                status=503,
            )

    def _send_request(
        self, sock: socket.socket, method: str, path: str, payload: Optional[object]
    ) -> None:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        sock.sendall(head + body)

    @staticmethod
    def _split_head(raw: bytes) -> Tuple[int, Dict[str, str], bytes]:
        head, sep, rest = raw.partition(b"\r\n\r\n")
        if not sep:
            raise ProtocolError("truncated response from service")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ProtocolError(f"malformed status line {lines[0]!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise ProtocolError(f"malformed status code in {lines[0]!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, rest

    def _roundtrip(
        self, method: str, path: str, payload: Optional[object] = None
    ) -> Tuple[int, object]:
        """One full request/response exchange (fixed-length responses)."""
        with self._connect() as sock:
            self._send_request(sock, method, path, payload)
            raw = b""
            while True:
                piece = sock.recv(65536)
                if not piece:
                    break
                raw += piece
        status, headers, body = self._split_head(raw)
        if headers.get("transfer-encoding") == "chunked":
            chunks, _, finished = decode_chunks(body)
            if not finished:
                raise ProtocolError("truncated chunked response")
            body = b"".join(chunks)
        try:
            document = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ProtocolError(f"service sent invalid JSON: {err}")
        return status, document

    def _expect_ok(self, status: int, document: object) -> object:
        if status >= 400:
            message = (
                document.get("error", f"service error {status}")
                if isinstance(document, dict)
                else f"service error {status}"
            )
            raise ServiceError(str(message), status=status)
        return document

    # ------------------------------------------------------------------
    # API calls
    # ------------------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        """Daemon liveness: ``{"status": "ok" | "draining", ...}``."""
        _, document = self._roundtrip("GET", "/healthz")
        return document  # 503-when-draining still carries the body

    def metrics(self) -> Dict[str, object]:
        """The full ``/metrics`` snapshot."""
        status, document = self._roundtrip("GET", "/metrics")
        return self._expect_ok(status, document)

    def compile(self, payload: Dict[str, object], wait: bool = True) -> Dict[str, object]:
        """Submit one compile payload (see :mod:`repro.service.jobs`).

        With ``wait=True`` (default) blocks until the result document;
        with ``wait=False`` returns the 202 admission receipt
        (``{"job": id, ...}``) immediately.
        """
        body = dict(payload)
        if not wait:
            body["wait"] = False
        status, document = self._roundtrip("POST", "/compile", body)
        return self._expect_ok(status, document)

    def compile_request(
        self, request, priority: str = "normal", **extra
    ) -> Dict[str, object]:
        """Compile a local :class:`~repro.api.request.CompilationRequest`
        remotely (serializes the loop + machine + config over the wire)."""
        return self.compile(request_to_payload(request, priority=priority, **extra))

    def job(self, job_id: int) -> Dict[str, object]:
        """Status document for one job id."""
        status, document = self._roundtrip("GET", f"/jobs/{job_id}")
        return self._expect_ok(status, document)

    def events(self, job_id: int) -> Iterator[Dict[str, object]]:
        """Stream a job's events until it reaches a terminal state.

        Yields each event dict as the daemon emits it (chunked JSON
        lines decoded incrementally).
        """
        with self._connect() as sock:
            self._send_request(sock, "GET", f"/jobs/{job_id}/events", None)
            buffer = b""
            head_done = False
            status = 200
            finished = False
            pending_text = b""
            while not finished:
                piece = sock.recv(65536)
                if not piece:
                    break
                buffer += piece
                if not head_done:
                    if b"\r\n\r\n" not in buffer:
                        continue
                    status, headers, buffer = self._split_head(buffer)
                    head_done = True
                    if status >= 400 or headers.get("transfer-encoding") != "chunked":
                        # Error document arrives fixed-length; drain it.
                        while True:
                            piece = sock.recv(65536)
                            if not piece:
                                break
                            buffer += piece
                        document = json.loads(buffer.decode("utf-8") or "{}")
                        self._expect_ok(status, document)
                        return
                chunks, buffer, finished = decode_chunks(buffer)
                for chunk in chunks:
                    pending_text += chunk
                    while b"\n" in pending_text:
                        line, _, pending_text = pending_text.partition(b"\n")
                        if line.strip():
                            yield json.loads(line.decode("utf-8"))
            if pending_text.strip():
                yield json.loads(pending_text.decode("utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ServiceClient {self.host}:{self.port}>"
