"""Minimal HTTP/1.1 framing for the compilation service.

The daemon speaks plain HTTP so any client (curl, a browser, the bundled
:mod:`repro.service.client`) can drive it, but it only needs a sliver of
the protocol: request-line + headers + ``Content-Length`` bodies in, and
fixed-length or ``chunked`` responses out.  This module implements that
sliver over ``asyncio`` streams with the parsing kept in pure functions
(:func:`parse_request_head`, :func:`format_response_head`,
:func:`encode_chunk`, :func:`decode_chunks`) so the framing has direct
unit tests without a socket in sight.

Connections are one-shot: every response carries ``Connection: close``
and the server closes the stream after writing it.  That forgoes
keep-alive but makes the framing trivially robust — a client can read to
EOF — and compile requests are seconds-scale, so per-request connection
cost is noise.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Mapping, Optional, Tuple

from .. import faults
from ..errors import ServiceError

#: Largest request body the daemon will buffer (serialized DDGs for the
#: biggest unrolled loops are ~100 KiB; 16 MiB leaves lots of headroom).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Largest request head (request line + headers) accepted.
MAX_HEAD_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ServiceError):
    """Malformed HTTP traffic (maps to a 400 when possible)."""

    def __init__(self, message: str):
        super().__init__(message, status=400)


@dataclass
class HTTPRequest:
    """One parsed request: the head plus the (possibly empty) body."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def route(self) -> Tuple[str, ...]:
        """Path segments, query string stripped: ``/jobs/3/events`` ->
        ``("jobs", "3", "events")``."""
        path = self.path.split("?", 1)[0]
        return tuple(seg for seg in path.split("/") if seg)

    @property
    def query(self) -> Dict[str, str]:
        """Decoded query parameters (no repeated keys, no URL escapes —
        the service API uses only simple tokens)."""
        if "?" not in self.path:
            return {}
        params: Dict[str, str] = {}
        for pair in self.path.split("?", 1)[1].split("&"):
            if not pair:
                continue
            key, _, value = pair.partition("=")
            params[key] = value
        return params

    def json(self) -> object:
        """The body decoded as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ProtocolError(f"request body is not valid JSON: {err}")


# ----------------------------------------------------------------------
# Pure parsing / formatting
# ----------------------------------------------------------------------


def parse_request_head(head: bytes) -> HTTPRequest:
    """Parse the request line and headers (everything before the body).

    *head* must not include the terminating blank line.  Header names are
    lower-cased; duplicate headers keep the last value (none of the
    service's headers are list-valued).
    """
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as err:  # pragma: no cover - latin-1 total
        raise ProtocolError(f"undecodable request head: {err}")
    lines = text.split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, path, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol version {version!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return HTTPRequest(method=method.upper(), path=path, headers=headers)


def format_response_head(
    status: int,
    content_length: Optional[int] = None,
    content_type: str = "application/json",
    chunked: bool = False,
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """The status line + headers + blank line for one response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    elif content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    if extra_headers:
        for name, value in extra_headers.items():
            lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def json_response(
    status: int,
    payload: object,
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """A complete fixed-length JSON response."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return (
        format_response_head(
            status, content_length=len(body), extra_headers=extra_headers
        )
        + body
    )


def encode_chunk(data: bytes) -> bytes:
    """One chunk of a ``Transfer-Encoding: chunked`` body."""
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


#: The terminating zero-length chunk.
LAST_CHUNK = b"0\r\n\r\n"


def decode_chunks(data: bytes) -> Tuple[List[bytes], bytes, bool]:
    """Incrementally decode a chunked body.

    Returns ``(chunks, remainder, finished)``: every complete chunk
    found in *data*, the undecoded tail to prepend to the next read, and
    whether the zero-length terminator was seen.  Used by the sync
    client, which reads the event stream socket in arbitrary slices.
    """
    chunks: List[bytes] = []
    rest = data
    while True:
        head, sep, tail = rest.partition(b"\r\n")
        if not sep:
            return chunks, rest, False
        try:
            size = int(head.split(b";", 1)[0], 16)
        except ValueError:
            raise ProtocolError(f"malformed chunk size {head!r}")
        if len(tail) < size + 2:
            return chunks, rest, False
        body, trailer = tail[:size], tail[size : size + 2]
        if trailer != b"\r\n":
            raise ProtocolError("chunk body missing CRLF terminator")
        rest = tail[size + 2 :]
        if size == 0:
            return chunks, rest, True
        chunks.append(body)


# ----------------------------------------------------------------------
# Async stream I/O
# ----------------------------------------------------------------------


async def read_request(reader) -> Optional[HTTPRequest]:
    """Read one request from an ``asyncio.StreamReader``.

    Returns ``None`` when the peer closed the connection before sending
    a request line (a health-checker port probe, for example).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None
        raise ProtocolError("connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise ProtocolError(f"request head exceeds {MAX_HEAD_BYTES} bytes")
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError(f"request head exceeds {MAX_HEAD_BYTES} bytes")
    request = parse_request_head(head[:-4])
    length_header = request.headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError:
        raise ProtocolError(f"bad Content-Length {length_header!r}")
    if length < 0:
        raise ProtocolError(f"bad Content-Length {length_header!r}")
    if length > MAX_BODY_BYTES:
        raise ServiceError(
            f"request body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit",
            status=413,
        )
    if length:
        request.body = await reader.readexactly(length)
    return request


async def write_response(writer, data: bytes) -> None:
    """Write a complete pre-formatted response and flush it.

    The ``conn-reset`` fault point lives here: when armed, the daemon
    aborts the transport instead of answering — the client sees the
    reset-by-peer every load balancer eventually delivers for real, and
    its retry path gets exercised on demand.
    """
    if faults.fire("conn-reset"):
        transport = writer.transport
        if transport is not None:
            transport.abort()
        return
    writer.write(data)
    await writer.drain()


async def write_event_stream(writer, events: AsyncIterator[dict]) -> None:
    """Stream *events* as chunked JSON lines, then the final chunk.

    ``conn-reset`` is checked before every event, not just at the head:
    an armed fault can sever the stream mid-flight, which is exactly the
    failure the client's ``since=``-offset resume path exists for.
    """
    writer.write(format_response_head(200, chunked=True))
    await writer.drain()
    async for event in events:
        if faults.fire("conn-reset"):
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return
        line = (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
        writer.write(encode_chunk(line))
        await writer.drain()
    writer.write(LAST_CHUNK)
    await writer.drain()
