"""The :class:`Toolchain`: an ordered pass pipeline with one entry point.

``Toolchain.default()`` reproduces the paper's flow exactly as the old
``compile_loop`` driver did; experiments derive variants by swapping,
dropping or inserting passes::

    two_phase = Toolchain.default().with_pass("schedule", "schedule_two_phase")
    report = two_phase.compile(CompilationRequest(loop, machine))

Every :meth:`Toolchain.compile` call returns a
:class:`~repro.api.request.CompilationReport` carrying the compiled loop,
per-pass wall-clock timings, the II-search trajectory and diagnostics.
"""

from __future__ import annotations

import time
from typing import Iterable, Tuple, Union

from ..errors import ToolchainError
from ..scheduling.pipeline import CompiledLoop
from .passes import Pass, PassContext, get_pass
from .request import CompilationReport, CompilationRequest, PassTiming

PassLike = Union[str, Pass]

#: The paper's flow, as run by ``compile_loop`` since the seed.
DEFAULT_PASSES: Tuple[str, ...] = ("unroll", "single_use", "schedule", "allocate")


def _resolve(passes: Iterable[PassLike]) -> Tuple[Pass, ...]:
    resolved = []
    for entry in passes:
        pass_ = get_pass(entry) if isinstance(entry, str) else entry
        if not isinstance(pass_, Pass):
            raise ToolchainError(f"not a pass: {entry!r}")
        resolved.append(pass_)
    names = [p.name for p in resolved]
    if len(set(names)) != len(names):
        raise ToolchainError(f"duplicate pass names in pipeline: {names}")
    return tuple(resolved)


class Toolchain:
    """An immutable, ordered pipeline of named passes."""

    def __init__(self, passes: Iterable[PassLike] = DEFAULT_PASSES, name: str = "toolchain"):
        self.name = name
        self._passes = _resolve(passes)
        if not self._passes:
            raise ToolchainError("a toolchain needs at least one pass")

    @classmethod
    def default(cls) -> "Toolchain":
        """The paper's flow: unroll -> single_use -> schedule -> allocate."""
        return cls(DEFAULT_PASSES, name="default")

    @classmethod
    def full(cls) -> "Toolchain":
        """The default flow plus assembly emission."""
        return cls(DEFAULT_PASSES + ("codegen",), name="full")

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    @property
    def passes(self) -> Tuple[Pass, ...]:
        return self._passes

    @property
    def pass_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self._passes)

    def _index_of(self, name: str) -> int:
        for index, pass_ in enumerate(self._passes):
            if pass_.name == name:
                return index
        raise ToolchainError(
            f"toolchain {self.name!r} has no pass {name!r} "
            f"(pipeline: {self.pass_names})"
        )

    def with_pass(self, name: str, replacement: PassLike) -> "Toolchain":
        """Return a copy with the pass named *name* swapped out."""
        index = self._index_of(name)
        passes = list(self._passes)
        passes[index] = replacement
        return Toolchain(passes, name=self.name)

    def without_pass(self, name: str) -> "Toolchain":
        """Return a copy with the pass named *name* removed."""
        index = self._index_of(name)
        passes = list(self._passes)
        del passes[index]
        return Toolchain(passes, name=self.name)

    def insert_after(self, name: str, new_pass: PassLike) -> "Toolchain":
        """Return a copy with *new_pass* inserted right after *name*."""
        index = self._index_of(name)
        passes = list(self._passes)
        passes.insert(index + 1, new_pass)
        return Toolchain(passes, name=self.name)

    def insert_before(self, name: str, new_pass: PassLike) -> "Toolchain":
        """Return a copy with *new_pass* inserted right before *name*."""
        index = self._index_of(name)
        passes = list(self._passes)
        passes.insert(index, new_pass)
        return Toolchain(passes, name=self.name)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def compile(self, request: CompilationRequest) -> CompilationReport:
        """Run every pass over *request* and return the report."""
        ctx = PassContext(
            request=request,
            ddg=request.loop.ddg,
            unroll_factor=request.loop.unroll_factor,
        )
        timings = []
        for pass_ in self._passes:
            started = time.perf_counter()
            pass_.run(ctx)
            timings.append(PassTiming(pass_.name, time.perf_counter() - started))
        if ctx.result is None:
            raise ToolchainError(
                f"toolchain {self.name!r} produced no schedule; "
                f"pipeline {self.pass_names} lacks a scheduling pass"
            )
        compiled = CompiledLoop(
            loop=request.loop,
            machine=request.machine,
            unroll_factor=ctx.unroll_factor,
            result=ctx.result,
            allocation=ctx.allocation,
        )
        return CompilationReport(
            request=request,
            compiled=compiled,
            timings=tuple(timings),
            ii_trajectory=tuple(ctx.ii_trajectory),
            diagnostics=tuple(ctx.diagnostics),
            artifacts=ctx.artifacts,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Toolchain {self.name!r} passes={list(self.pass_names)}>"
