"""The unified compilation-session API.

Single entry point for every compilation in the repository::

    from repro.api import CompilationRequest, Toolchain, compile_many

    report = Toolchain.default().compile(CompilationRequest(loop, machine))
    print(report.summary(), report.pass_seconds())

    reports = compile_many(requests, workers=8, cache="~/.cache/repro")

Layers:

* :mod:`repro.api.passes`    — the pass registry and the paper's five
  builtin passes (``unroll``, ``single_use``, ``schedule``, ``allocate``,
  ``codegen``) plus the two-phase baseline swap;
* :mod:`repro.api.toolchain` — ordered pass pipelines;
* :mod:`repro.api.request`   — request/report value types;
* :mod:`repro.api.cache`     — content hashing and the on-disk store;
* :mod:`repro.api.batch`     — multiprocessing fan-out with memoisation.
"""

from .batch import BatchCompiler, DEFAULT_WORKERS, compile_many
from .cache import (
    CacheStats,
    CompilationCache,
    MemoryCache,
    TieredCache,
    content_hash,
    ddg_signature,
    machine_signature,
    schedule_fingerprint,
)
from .passes import (
    AllocatePass,
    CodegenPass,
    PASS_REGISTRY,
    Pass,
    PassContext,
    SchedulePass,
    SingleUsePass,
    TwoPhaseSchedulePass,
    UnrollPass,
    get_pass,
    register_pass,
    registered_passes,
)
from .request import (
    CompilationReport,
    CompilationRequest,
    PassTiming,
    SCHEDULER_CHOICES,
)
from .toolchain import DEFAULT_PASSES, Toolchain

__all__ = [
    "AllocatePass",
    "BatchCompiler",
    "CacheStats",
    "CodegenPass",
    "CompilationCache",
    "CompilationReport",
    "CompilationRequest",
    "DEFAULT_PASSES",
    "DEFAULT_WORKERS",
    "MemoryCache",
    "PASS_REGISTRY",
    "Pass",
    "PassContext",
    "PassTiming",
    "SCHEDULER_CHOICES",
    "SchedulePass",
    "SingleUsePass",
    "TieredCache",
    "Toolchain",
    "TwoPhaseSchedulePass",
    "UnrollPass",
    "compile_many",
    "content_hash",
    "ddg_signature",
    "get_pass",
    "machine_signature",
    "register_pass",
    "registered_passes",
    "schedule_fingerprint",
]
