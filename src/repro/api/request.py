"""Compilation requests and structured reports.

A :class:`CompilationRequest` names everything one compilation depends on
— the loop, the machine, the latency model, the scheduler configuration
and the driver knobs that used to be loose keyword arguments of
``compile_loop``.  Because the request is a plain frozen value it can be
hashed (:meth:`CompilationRequest.cache_key`), pickled across worker
processes, and recorded next to its result.

A :class:`CompilationReport` is what a :class:`~repro.api.toolchain.Toolchain`
returns: the :class:`~repro.scheduling.pipeline.CompiledLoop` plus
per-pass wall-clock timings, the II-search trajectory, diagnostics from
every pass, and cache provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..errors import ToolchainError
from ..ir.loop import Loop
from ..ir.opcodes import DEFAULT_LATENCIES, LatencyModel
from ..machine.machine import MachineSpec
from ..scheduling.pipeline import CompiledLoop
from ..scheduling.result import ScheduleResult
from ..targets.spec import TargetSpec

#: Scheduler names a request may force (``None`` = pick by machine shape).
SCHEDULER_CHOICES = ("ims", "dms", "two_phase")


@dataclass(frozen=True)
class CompilationRequest:
    """One compilation job: a loop, a machine, and the driver knobs.

    Attributes:
        loop: the base (un-unrolled) loop to compile.
        machine: the target — a :class:`MachineSpec`/:class:`TargetSpec`
            value, a registered target name (``"mesh-3x3"``) or a path to
            a ``.toml``/``.json`` machine file.  Strings are resolved at
            construction.
        latencies: operation latency model.  ``None`` (the default)
            inherits: the machine's own model for a :class:`TargetSpec`,
            :data:`DEFAULT_LATENCIES` otherwise.  Any explicit model —
            including ``DEFAULT_LATENCIES`` itself — wins over the
            target's.
        config: scheduler tunables, including the II-search policy
            (``config.search``: ``"adaptive"``/``"ladder"``/
            ``"portfolio"`` — see :mod:`repro.scheduling.search`); part
            of the cache key, so reports compiled under different
            policies never alias.
        unroll: explicit unroll factor; ``None`` picks it automatically.
        equivalent_k: per-kind FU count of the unclustered reference used
            by the automatic unroll choice (so a clustered/unclustered
            comparison pair shares one factor).
        allocate: run queue allocation (clustered machines only).
        validate: run the independent schedule checker on the result.
        scheduler: force ``"ims"``, ``"dms"`` or ``"two_phase"``; ``None``
            selects DMS for clustered machines and IMS otherwise.
    """

    loop: Loop
    machine: Union[MachineSpec, str]
    latencies: Optional[LatencyModel] = None
    config: SchedulerConfig = DEFAULT_CONFIG
    unroll: Optional[int] = None
    equivalent_k: Optional[int] = None
    allocate: bool = True
    validate: bool = False
    scheduler: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.machine, str):
            from ..targets import resolve_target

            object.__setattr__(self, "machine", resolve_target(self.machine))
        if not isinstance(self.machine, MachineSpec):
            raise ToolchainError(
                f"machine must be a MachineSpec or a target name/file, "
                f"got {type(self.machine).__name__}"
            )
        if self.latencies is None:
            inherited = (
                self.machine.latencies
                if isinstance(self.machine, TargetSpec)
                else DEFAULT_LATENCIES
            )
            object.__setattr__(self, "latencies", inherited)
        if self.unroll is not None and self.unroll < 1:
            raise ToolchainError(f"unroll must be >= 1, got {self.unroll}")
        if self.equivalent_k is not None and self.equivalent_k < 1:
            raise ToolchainError(
                f"equivalent_k must be >= 1, got {self.equivalent_k}"
            )
        if self.scheduler is not None and self.scheduler not in SCHEDULER_CHOICES:
            raise ToolchainError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {SCHEDULER_CHOICES} or None"
            )

    def cache_key(self) -> str:
        """Content hash identifying this request's result."""
        from .cache import content_hash

        return content_hash(self)

    def describe(self) -> str:
        """One-line human description."""
        sched = self.scheduler or "auto"
        return (
            f"{self.loop.name} on {self.machine.name} "
            f"(scheduler={sched}, unroll={self.unroll or 'auto'})"
        )


@dataclass(frozen=True)
class PassTiming:
    """Wall-clock cost of one pass in one compilation."""

    pass_name: str
    seconds: float


@dataclass
class CompilationReport:
    """Everything one toolchain run produced, beyond the schedule itself."""

    request: CompilationRequest
    compiled: CompiledLoop
    timings: Tuple[PassTiming, ...] = ()
    ii_trajectory: Tuple[int, ...] = ()
    diagnostics: Tuple[str, ...] = ()
    artifacts: Dict[str, object] = field(default_factory=dict)
    cache_hit: bool = False
    cache_key: Optional[str] = None

    @property
    def result(self) -> ScheduleResult:
        return self.compiled.result

    @property
    def total_seconds(self) -> float:
        """Wall-clock sum over all passes."""
        return sum(t.seconds for t in self.timings)

    def pass_seconds(self) -> Dict[str, float]:
        """Pass name -> wall-clock seconds (summed over repeated names)."""
        totals: Dict[str, float] = {}
        for timing in self.timings:
            totals[timing.pass_name] = (
                totals.get(timing.pass_name, 0.0) + timing.seconds
            )
        return totals

    def summary(self) -> str:
        """One-line report description."""
        result = self.result
        origin = "cache" if self.cache_hit else f"{1e3 * self.total_seconds:.1f}ms"
        return (
            f"{result.loop_name}: {result.scheduler.upper()} on "
            f"{result.machine.name} II={result.ii} (MII={result.mii}) "
            f"unroll={self.compiled.unroll_factor} "
            f"ipc={self.compiled.ipc:.2f} [{origin}]"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary (metrics only, no graphs)."""
        result = self.result
        return {
            "loop": result.loop_name,
            "machine": result.machine.name,
            "clusters": result.machine.n_clusters,
            "scheduler": result.scheduler,
            "ii": result.ii,
            "mii": result.mii,
            "res_mii": result.res_mii,
            "rec_mii": result.rec_mii,
            "stage_count": result.stage_count,
            "unroll": self.compiled.unroll_factor,
            "cycles": self.compiled.cycles,
            "ipc": self.compiled.ipc,
            "n_moves": result.n_moves,
            "n_copies": result.n_copies,
            "ii_trajectory": list(self.ii_trajectory),
            "timings_ms": {
                name: 1e3 * seconds
                for name, seconds in self.pass_seconds().items()
            },
            "diagnostics": list(self.diagnostics),
            "cache_hit": self.cache_hit,
            "cache_key": self.cache_key,
        }
