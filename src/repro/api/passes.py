"""Named, composable compilation passes.

The paper's flow — unroll, single-use copy insertion, DMS/IMS scheduling,
queue allocation, code generation — is expressed here as five registered
passes.  A :class:`~repro.api.toolchain.Toolchain` strings passes together
by name; ablations and baselines swap a single pass instead of
re-implementing the whole driver.

Passes communicate through a mutable :class:`PassContext`.  Every pass is
stateless (all per-compilation state lives on the context), so one pass
instance can serve many concurrent compilations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..codegen import assembly_for
from ..config import SchedulerConfig
from ..errors import SchedulingError, ToolchainError
from ..ir.ddg import DDG
from ..ir.loop import Loop
from ..ir.opcodes import LatencyModel, USEFUL_FU_KINDS
from ..ir.transforms import single_use_ddg, unroll_ddg
from ..machine.machine import MachineSpec
from ..registers.queues import QueueAllocation, allocate_queues
from ..scheduling.checker import validate_schedule
from ..scheduling.dms import DistributedModuloScheduler
from ..scheduling.ims import IterativeModuloScheduler
from ..scheduling.pipeline import choose_unroll_factor
from ..scheduling.result import ScheduleResult
from ..scheduling.twophase import TwoPhaseScheduler
from .request import CompilationRequest


@dataclass
class PassContext:
    """Mutable state threaded through a toolchain run.

    ``ddg`` starts as the request's loop body and is rewritten by the
    transform passes; ``result``/``allocation``/``artifacts`` are filled
    in by the later passes.  ``diagnostics`` collects one-line notes from
    every pass for the final report.
    """

    request: CompilationRequest
    ddg: DDG = None
    unroll_factor: int = 1
    result: Optional[ScheduleResult] = None
    allocation: Optional[QueueAllocation] = None
    ii_trajectory: List[int] = field(default_factory=list)
    diagnostics: List[str] = field(default_factory=list)
    artifacts: Dict[str, object] = field(default_factory=dict)

    @property
    def loop(self) -> Loop:
        return self.request.loop

    @property
    def machine(self) -> MachineSpec:
        return self.request.machine

    @property
    def latencies(self) -> LatencyModel:
        return self.request.latencies

    @property
    def config(self) -> SchedulerConfig:
        return self.request.config

    def note(self, message: str) -> None:
        """Record a diagnostic line for the report."""
        self.diagnostics.append(message)


class Pass:
    """One named stage of the compilation pipeline."""

    #: Registry / pipeline name; subclasses must override.
    name: str = ""

    def run(self, ctx: PassContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<pass {self.name or type(self).__name__}>"


#: Global pass registry: name -> shared (stateless) pass instance.
PASS_REGISTRY: Dict[str, Pass] = {}


def register_pass(pass_: Pass, *, replace: bool = False) -> Pass:
    """Register *pass_* under its :attr:`Pass.name`.

    Registering a name twice is an error unless ``replace=True`` — silent
    shadowing is how copy-pasted drivers drift apart, which this registry
    exists to prevent.
    """
    if not isinstance(pass_, Pass):
        raise ToolchainError(f"register_pass needs a Pass instance, got {pass_!r}")
    if not pass_.name:
        raise ToolchainError(f"pass {pass_!r} has no name")
    if pass_.name in PASS_REGISTRY and not replace:
        raise ToolchainError(
            f"pass {pass_.name!r} is already registered "
            "(pass replace=True to override)"
        )
    PASS_REGISTRY[pass_.name] = pass_
    return pass_


def get_pass(name: str) -> Pass:
    """Look up a registered pass by name."""
    try:
        return PASS_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(PASS_REGISTRY))
        raise ToolchainError(
            f"unknown pass {name!r}; registered passes: {known}"
        ) from None


def registered_passes() -> Tuple[str, ...]:
    """Names of all registered passes, sorted."""
    return tuple(sorted(PASS_REGISTRY))


# ----------------------------------------------------------------------
# Builtin passes (the paper's flow)
# ----------------------------------------------------------------------


class UnrollPass(Pass):
    """Unroll the loop body to saturate the target issue width.

    The factor is the request's explicit ``unroll`` if given, otherwise
    the projected-II minimiser on the unclustered machine of
    ``equivalent_k`` units per kind (defaulting to the machine's own
    useful-FU count, exactly as ``compile_loop`` always did).
    """

    name = "unroll"

    def run(self, ctx: PassContext) -> None:
        loop = ctx.loop
        if loop.unroll_factor != 1:
            raise SchedulingError(
                f"loop {loop.name!r} is already unrolled; pass the base loop"
            )
        unroll = ctx.request.unroll
        if unroll is None:
            k = ctx.request.equivalent_k
            if k is None:
                k = max(1, ctx.machine.useful_fus // len(USEFUL_FU_KINDS))
            unroll = choose_unroll_factor(
                loop.ddg, k, latencies=ctx.latencies, cap=ctx.config.unroll_cap
            )
        ctx.unroll_factor = unroll
        ctx.ddg = unroll_ddg(loop.ddg, unroll)
        ctx.note(f"unroll: factor {unroll} -> {len(ctx.ddg)} ops")


class SingleUsePass(Pass):
    """Rewrite multiple-use lifetimes into single-use copies.

    Clustered machines only: a central register file needs no copies, so
    the pass is a no-op (with a diagnostic) on unclustered targets.
    """

    name = "single_use"

    def run(self, ctx: PassContext) -> None:
        if not ctx.machine.is_clustered:
            ctx.note("single_use: skipped (unclustered machine)")
            return
        before = len(ctx.ddg)
        ctx.ddg = single_use_ddg(ctx.ddg, strategy=ctx.config.single_use_strategy)
        ctx.note(
            f"single_use: {ctx.config.single_use_strategy} strategy inserted "
            f"{len(ctx.ddg) - before} copies"
        )


class SchedulePass(Pass):
    """Run the modulo scheduler and record the II-search trajectory.

    The scheduler is the request's forced choice when set (``"ims"``,
    ``"dms"`` or ``"two_phase"``), otherwise DMS on clustered machines
    and IMS on unclustered ones.  A subclass may pin the choice instead
    (see :class:`TwoPhaseSchedulePass`).
    """

    name = "schedule"

    _SCHEDULERS = {
        "ims": IterativeModuloScheduler,
        "dms": DistributedModuloScheduler,
        "two_phase": TwoPhaseScheduler,
    }

    def __init__(self, forced_scheduler: Optional[str] = None):
        if (
            forced_scheduler is not None
            and forced_scheduler not in self._SCHEDULERS
        ):
            raise ToolchainError(
                f"unknown scheduler {forced_scheduler!r}; "
                f"choose from {tuple(self._SCHEDULERS)}"
            )
        self._forced = forced_scheduler

    def run(self, ctx: PassContext) -> None:
        choice = self._forced or ctx.request.scheduler
        if choice is None:
            choice = "dms" if ctx.machine.is_clustered else "ims"
        scheduler = self._SCHEDULERS[choice](
            ctx.machine, ctx.latencies, ctx.config
        )
        result = scheduler.schedule(ctx.ddg)
        ctx.result = result
        # The search layer records the II candidates it actually visited
        # (a galloping policy skips rungs, so the walk is no longer a
        # contiguous range).  Schedulers predating the layer (two-phase)
        # leave the trajectory empty; reconstruct their contiguous walk.
        attempts = max(1, result.stats.ii_attempts)
        if result.ii_trajectory:
            ctx.ii_trajectory = list(result.ii_trajectory)
        else:
            ctx.ii_trajectory = list(
                range(result.ii - attempts + 1, result.ii + 1)
            )
        if ctx.request.validate:
            validate_schedule(result)
        ctx.note(
            f"schedule: {result.scheduler} II={result.ii} (MII={result.mii}) "
            f"after {attempts} II attempt(s)"
        )


class TwoPhaseSchedulePass(SchedulePass):
    """Partition-then-schedule baseline as a drop-in ``schedule`` swap."""

    name = "schedule_two_phase"

    def __init__(self):
        super().__init__("two_phase")


class AllocatePass(Pass):
    """Map lifetimes onto LRF/CQRF queues (clustered machines only)."""

    name = "allocate"

    def run(self, ctx: PassContext) -> None:
        if ctx.result is None:
            raise ToolchainError("allocate: no schedule yet (run 'schedule' first)")
        if not (ctx.request.allocate and ctx.machine.is_clustered):
            ctx.note("allocate: skipped")
            return
        ctx.allocation = allocate_queues(ctx.result)
        ctx.note(f"allocate: {len(ctx.allocation.files)} queue files in use")


class CodegenPass(Pass):
    """Emit VLIW assembly into ``ctx.artifacts['assembly']``."""

    name = "codegen"

    def run(self, ctx: PassContext) -> None:
        if ctx.result is None:
            raise ToolchainError("codegen: no schedule yet (run 'schedule' first)")
        ctx.artifacts["assembly"] = assembly_for(ctx.result, ctx.allocation)
        ctx.note("codegen: assembly emitted")


for _builtin in (
    UnrollPass(),
    SingleUsePass(),
    SchedulePass(),
    TwoPhaseSchedulePass(),
    AllocatePass(),
    CodegenPass(),
):
    register_pass(_builtin)
