"""Content-addressed on-disk memoisation for compilation results.

The cache key is a SHA-256 over a canonical serialisation of everything a
compilation depends on: the DDG (operations, operands, explicit edges),
the loop metadata, the machine specification, the latency model, the
scheduler configuration and the request knobs.  Two requests with the
same key are guaranteed to produce bit-identical schedules (compilation
is deterministic), so re-running a figure sweep against a warm cache is
near-instant.

Entries are pickled :class:`~repro.api.request.CompilationReport` objects
written atomically (tmp file + rename), so a cache directory can be
shared by the worker processes of a :class:`~repro.api.batch.BatchCompiler`.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from .. import faults
from ..errors import CacheError
from ..ir.ddg import DDG
from ..machine.machine import MachineSpec
from ..scheduling.result import ScheduleResult
from ..targets.spec import LATENCY_FIELDS
from .request import CompilationReport, CompilationRequest

#: Bump when the canonical serialisation (or result semantics) change, so
#: stale cache directories invalidate themselves instead of lying.
#: v2: machine signatures carry topology parameters and per-target
#: latency models (declarative target-description API).
#: v3: scheduler configs carry the II-search policy fields (search,
#: search_workers, thrash_cap_ratio) and the default policy is adaptive,
#: whose emitted schedules may differ bit-wise from the ladder's.
CACHE_SCHEMA_VERSION = 3


# ----------------------------------------------------------------------
# Canonical content hashing
# ----------------------------------------------------------------------


def ddg_signature(ddg: DDG) -> Tuple:
    """Canonical, order-independent description of a dependence graph."""
    ops = tuple(
        (
            op.op_id,
            op.opcode.value,
            tuple((s.producer, s.omega, s.symbol) for s in op.srcs),
            op.tag,
        )
        for op in ddg.operations()
    )
    explicit = tuple(
        (e.src, e.dst, e.kind.value, e.omega, e.latency)
        for e in ddg.edges()
        if not e.is_flow
    )
    return (ddg.name, ops, explicit)


def machine_signature(machine: MachineSpec) -> Tuple:
    """Canonical description of a machine (or serialised target) spec.

    The signature covers everything that can change a schedule: cluster
    FU mixes, queue-file shapes, and the full interconnect description
    (kind *and* parameters — a 3x3 and a 1x9 mesh are different
    machines).  A target's own latency model rides along so editing a
    machine file always invalidates its batch-cache entries, even though
    requests also hash their effective latencies separately.
    """
    latencies: Tuple = ()
    target_latencies = getattr(machine, "latencies", None)
    if target_latencies is not None:
        latencies = tuple(
            getattr(target_latencies, name) for name in LATENCY_FIELDS
        )
    return (
        machine.name,
        machine.topology_kind,
        tuple(machine.topology_params),
        (machine.cqrf.n_queues, machine.cqrf.queue_depth),
        tuple(
            (c.mem, c.alu, c.mul, c.copy, c.lrf.n_queues, c.lrf.queue_depth)
            for c in machine.clusters
        ),
        latencies,
    )


def content_hash(
    request: CompilationRequest, pipeline: Optional[Tuple[str, ...]] = None
) -> str:
    """SHA-256 content hash identifying *request*'s compilation result.

    *pipeline* is the pass-name tuple of the toolchain that will run the
    request (``None`` = the default pipeline): two toolchains with
    different pipelines must never share a cache entry, or a baseline
    sweep could silently read its competitor's schedules.  Pass names
    are the identity here because the registry enforces one pass per
    name.
    """
    from .toolchain import DEFAULT_PASSES

    loop = request.loop
    latencies = request.latencies
    config = request.config
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "pipeline": list(pipeline if pipeline is not None else DEFAULT_PASSES),
        "loop": {
            "name": loop.name,
            "trip_count": loop.trip_count,
            "unroll_factor": loop.unroll_factor,
            "ddg": ddg_signature(loop.ddg),
        },
        "machine": machine_signature(request.machine),
        "latencies": [getattr(latencies, name) for name in LATENCY_FIELDS],
        "config": [
            [f.name, getattr(config, f.name)]
            for f in dataclasses.fields(config)
            if f.init
        ],
        "unroll": request.unroll,
        "equivalent_k": request.equivalent_k,
        "allocate": request.allocate,
        "validate": request.validate,
        "scheduler": request.scheduler,
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def schedule_fingerprint(result: ScheduleResult) -> Tuple:
    """Canonical deep value of a schedule, for bit-identity comparisons.

    Two results with equal fingerprints encode the same schedule: same
    loop, machine, II/bounds, final graph and per-op placements.
    """
    return (
        result.loop_name,
        machine_signature(result.machine),
        result.scheduler,
        result.ii,
        result.res_mii,
        result.rec_mii,
        ddg_signature(result.ddg),
        tuple(
            (op_id, p.time, p.cluster)
            for op_id, p in sorted(result.placements.items())
        ),
    )


# ----------------------------------------------------------------------
# On-disk store
# ----------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss/write counters for one cache handle."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Entries that existed but could not be loaded (corrupt/unreadable).
    #: These also count as misses; a rising value means the cache
    #: directory is being damaged faster than it is repopulated.
    errors: int = 0

    def summary(self) -> str:
        text = f"cache: {self.hits} hits, {self.misses} misses, {self.writes} writes"
        if self.errors:
            text += f", {self.errors} errors"
        return text


class CompilationCache:
    """A directory of pickled compilation reports, keyed by content hash."""

    def __init__(self, root: os.PathLike):
        self.root = Path(root).expanduser()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as err:
            raise CacheError(f"cannot create cache directory {self.root}: {err}")
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """Entry path for *key* (two-level fan-out to keep dirs small)."""
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[CompilationReport]:
        """Load the report for *key*, or ``None`` on a miss.

        Read-repair: a corrupt or unreadable entry counts as a miss
        *and is deleted*, so a damaged cache degrades to recompilation
        (whose ``put`` rewrites the entry) instead of failing the same
        way on every future lookup.
        """
        path = self.path_for(key)
        faults.damage_cache_entry(path)
        try:
            with open(path, "rb") as handle:
                report = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError, TypeError):
            # Everything a truncated/corrupt/stale-schema pickle can
            # throw.  Anything outside this set (MemoryError, a bug in
            # CompilationReport.__setstate__) propagates — swallowing it
            # here hid real failures before the `errors` counter existed.
            self.stats.errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            return None
        if not isinstance(report, CompilationReport):
            # Unpickled cleanly but is the wrong thing (e.g. an entry
            # written by foreign tooling): just as corrupt for our
            # purposes — repair it away too.
            self.stats.errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        report.cache_hit = True
        report.cache_key = key
        return report

    def put(self, key: str, report: CompilationReport) -> None:
        """Store *report* under *key* atomically."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        report.cache_key = key
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(report, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for entry in self.root.glob("*/*.pkl"):
            entry.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CompilationCache {str(self.root)!r} entries={len(self)}>"


# ----------------------------------------------------------------------
# In-memory tier
# ----------------------------------------------------------------------


class MemoryCache:
    """A bounded in-memory LRU of compilation reports, keyed like the
    disk cache.

    Entries are kept un-flagged (``cache_hit=False``); :meth:`get`
    returns a shallow copy with the provenance flags set, so handing the
    same entry to many callers never lets one caller's flag mutation
    leak into another's report (the disk tier gets the same isolation
    for free from unpickling).

    The capacity bound is an entry count, not bytes: reports for the
    kernel suite are small and uniform, and a count keeps eviction O(1).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise CacheError(f"MemoryCache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CompilationReport]" = OrderedDict()
        self.stats = CacheStats()
        self.evictions = 0

    def get(self, key: str) -> Optional[CompilationReport]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        report = copy.copy(entry)
        report.cache_hit = True
        report.cache_key = key
        return report

    def put(self, key: str, report: CompilationReport) -> None:
        stored = copy.copy(report)
        stored.cache_hit = False
        stored.cache_key = key
        self._entries[key] = stored
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self.stats.writes += 1

    def clear(self) -> int:
        removed = len(self._entries)
        self._entries.clear()
        return removed

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MemoryCache entries={len(self)}/{self.capacity} "
            f"hits={self.stats.hits} evictions={self.evictions}>"
        )


class TieredCache:
    """Memory LRU in front of an (optional) disk cache, one interface.

    Lookup order is memory first, then disk; a disk hit is promoted into
    the memory tier so a warm daemon stops touching the filesystem for
    its working set.  Writes go to both tiers.  The object satisfies the
    same ``get``/``put``/``stats`` duck type as :class:`CompilationCache`,
    so a :class:`~repro.api.batch.BatchCompiler` can ride a tiered cache
    unchanged.
    """

    def __init__(
        self,
        memory: Optional[MemoryCache] = None,
        disk: Optional[CompilationCache] = None,
    ):
        self.memory = memory if memory is not None else MemoryCache()
        self.disk = disk
        self.stats = CacheStats()  # aggregate over both tiers

    def get(self, key: str) -> Optional[CompilationReport]:
        return self.get_tiered(key)[0]

    def get_tiered(
        self, key: str
    ) -> Tuple[Optional[CompilationReport], Optional[str]]:
        """Lookup that also names the tier that answered.

        Returns ``(report, tier)`` with tier ``"memory"``, ``"disk"`` or
        ``None`` on a miss.  Membership checks after the fact can't tell
        the tiers apart (a disk hit is promoted into memory), so callers
        that report provenance — the service's ``served_from`` field —
        need the answer from the lookup itself.
        """
        report = self.memory.get(key)
        if report is not None:
            self.stats.hits += 1
            return report, "memory"
        if self.disk is not None:
            report = self.disk.get(key)
            if report is not None:
                self.memory.put(key, report)
                self.stats.hits += 1
                return report, "disk"
        self.stats.misses += 1
        return None, None

    def put(self, key: str, report: CompilationReport) -> None:
        self.memory.put(key, report)
        if self.disk is not None:
            self.disk.put(key, report)
        self.stats.writes += 1

    def counters(self) -> Dict[str, object]:
        """Per-tier hit/miss/eviction counters (for ``/metrics``)."""
        lookups = self.stats.hits + self.stats.misses
        disk_stats = self.disk.stats if self.disk is not None else CacheStats()
        return {
            "lookups": lookups,
            "memory_hits": self.memory.stats.hits,
            "disk_hits": disk_stats.hits,
            "misses": self.stats.misses,
            "memory_hit_ratio": (
                self.memory.stats.hits / lookups if lookups else 0.0
            ),
            "disk_hit_ratio": (disk_stats.hits / lookups if lookups else 0.0),
            "hit_ratio": (self.stats.hits / lookups if lookups else 0.0),
            "evictions": self.memory.evictions,
            "memory_entries": len(self.memory),
            "memory_capacity": self.memory.capacity,
            "disk_errors": disk_stats.errors,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TieredCache memory={self.memory!r} disk={self.disk!r}>"
