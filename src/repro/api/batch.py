"""Batch compilation: fan jobs across processes, memoise on disk.

``compile_many`` takes a list of :class:`CompilationRequest` jobs and
returns their reports in the same order.  Jobs found in the cache are
answered immediately; the misses are compiled either serially or across
a process pool (pure-Python scheduling is CPU-bound, so processes — not
threads — are the unit of parallelism).

Compilation is a deterministic pure function of the request, so parallel
results are bit-identical to serial ones; ``tests/test_api_batch.py``
holds that property over the whole kernel suite.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor
from typing import Callable, List, Optional, Sequence, Union

from ..errors import ReproError
from ..pools import spawn_pool
from .cache import CompilationCache, content_hash
from .request import CompilationReport, CompilationRequest
from .toolchain import Toolchain

ProgressFn = Callable[[str], None]

#: Default worker count: leave one core for the parent process.
DEFAULT_WORKERS = max(1, (os.cpu_count() or 2) - 1)


def _compile_job(job) -> Union[CompilationReport, ReproError]:
    """Pool worker: compile one request (module-level for picklability)."""
    toolchain, request, return_errors = job
    try:
        return toolchain.compile(request)
    except ReproError as err:
        if return_errors:
            return err
        raise


class BatchCompiler:
    """Compile many requests through one toolchain, cache and pool.

    *cache* may be a :class:`CompilationCache`, any object with the same
    ``get``/``put`` duck type (e.g. a :class:`~repro.api.cache.TieredCache`),
    or a path, which is wrapped in a disk cache.

    *pool* injects a shared, long-lived executor: the batch then fans its
    misses over that pool instead of creating (and tearing down) its own,
    so a resident daemon and a batch run can reuse one warm set of worker
    processes.  An injected pool is never shut down by the compiler.
    """

    def __init__(
        self,
        toolchain: Optional[Toolchain] = None,
        cache: Union[CompilationCache, os.PathLike, None] = None,
        workers: Optional[int] = None,
        pool: Optional[Executor] = None,
    ):
        self.toolchain = toolchain or Toolchain.default()
        if cache is not None and not (
            hasattr(cache, "get") and hasattr(cache, "put")
        ):
            cache = CompilationCache(cache)
        self.cache = cache
        self.workers = workers
        self.pool = pool

    def compile_many(
        self,
        requests: Sequence[CompilationRequest],
        progress: Optional[ProgressFn] = None,
        return_errors: bool = False,
    ) -> List[Union[CompilationReport, ReproError]]:
        """Compile every request; results come back in request order.

        With ``return_errors=True`` a job that fails with a
        :class:`~repro.errors.ReproError` (e.g. the two-phase baseline
        hitting its II ceiling) yields the exception object in its result
        slot instead of aborting the whole batch.
        """
        requests = list(requests)
        reports: List[Optional[Union[CompilationReport, ReproError]]] = [
            None
        ] * len(requests)
        keys: List[Optional[str]] = [None] * len(requests)
        pending: List[int] = []
        pipeline = self.toolchain.pass_names
        for index, request in enumerate(requests):
            if self.cache is not None:
                keys[index] = content_hash(request, pipeline=pipeline)
                hit = self.cache.get(keys[index])
                if hit is not None:
                    reports[index] = hit
                    continue
            pending.append(index)
        done = len(requests) - len(pending)
        if progress and done:
            progress(f"{done}/{len(requests)} jobs served from cache")

        workers = self.workers if self.workers is not None else 1
        jobs = [
            (self.toolchain, requests[i], return_errors) for i in pending
        ]
        if self.pool is not None and len(pending) > 1:
            width = getattr(self.pool, "_max_workers", DEFAULT_WORKERS)
            chunksize = max(1, len(pending) // (max(1, width) * 4))
            outcomes = self.pool.map(_compile_job, jobs, chunksize=chunksize)
            for index, outcome in zip(pending, outcomes):
                reports[index] = self._finish(keys[index], outcome)
                done += 1
                if progress and done % 50 == 0:
                    progress(f"compiled {done}/{len(requests)} jobs")
        elif workers > 1 and len(pending) > 1:
            chunksize = max(1, len(pending) // (workers * 4))
            with spawn_pool(workers) as pool:
                outcomes = pool.map(_compile_job, jobs, chunksize=chunksize)
                for index, outcome in zip(pending, outcomes):
                    reports[index] = self._finish(keys[index], outcome)
                    done += 1
                    if progress and done % 50 == 0:
                        progress(f"compiled {done}/{len(requests)} jobs")
        else:
            for index, job in zip(pending, jobs):
                reports[index] = self._finish(keys[index], _compile_job(job))
                done += 1
                if progress and done % 50 == 0:
                    progress(f"compiled {done}/{len(requests)} jobs")
        return reports

    def _finish(
        self,
        key: Optional[str],
        outcome: Union[CompilationReport, ReproError],
    ) -> Union[CompilationReport, ReproError]:
        if self.cache is not None and isinstance(outcome, CompilationReport):
            outcome.cache_key = key
            self.cache.put(key, outcome)
        return outcome


def compile_many(
    requests: Sequence[CompilationRequest],
    toolchain: Optional[Toolchain] = None,
    cache: Union[CompilationCache, os.PathLike, None] = None,
    workers: Optional[int] = None,
    pool: Optional[Executor] = None,
    progress: Optional[ProgressFn] = None,
    return_errors: bool = False,
) -> List[Union[CompilationReport, ReproError]]:
    """One-shot convenience wrapper around :class:`BatchCompiler`."""
    compiler = BatchCompiler(
        toolchain=toolchain, cache=cache, workers=workers, pool=pool
    )
    return compiler.compile_many(
        requests, progress=progress, return_errors=return_errors
    )
