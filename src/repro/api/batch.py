"""Batch compilation: fan jobs across processes, memoise on disk.

``compile_many`` takes a list of :class:`CompilationRequest` jobs and
returns their reports in the same order.  Jobs found in the cache are
answered immediately; the misses are compiled either serially or across
a process pool (pure-Python scheduling is CPU-bound, so processes — not
threads — are the unit of parallelism).

Compilation is a deterministic pure function of the request, so parallel
results are bit-identical to serial ones; ``tests/test_api_batch.py``
holds that property over the whole kernel suite.

With ``coordinator="host:port"`` the misses are not compiled locally at
all: they are submitted as one sweep to a ``repro serve`` daemon acting
as sweep coordinator (:mod:`repro.service.sweep`) and executed by
whatever ``repro worker`` fleet is attached to it; the results merge
back through the same content-hash cache, bit-identical to a local run
by the same determinism argument.
"""

from __future__ import annotations

import base64
import os
import pickle
import time
from concurrent.futures import Executor
from typing import Callable, List, Optional, Sequence, Union

from ..errors import ReproError
from ..pools import spawn_pool
from .cache import CompilationCache, content_hash
from .request import CompilationReport, CompilationRequest
from .toolchain import Toolchain

ProgressFn = Callable[[str], None]

#: Default worker count: leave one core for the parent process.
DEFAULT_WORKERS = max(1, (os.cpu_count() or 2) - 1)


def _compile_job(job) -> Union[CompilationReport, ReproError]:
    """Pool worker: compile one request (module-level for picklability)."""
    toolchain, request, return_errors = job
    try:
        return toolchain.compile(request)
    except ReproError as err:
        if return_errors:
            return err
        raise


class BatchCompiler:
    """Compile many requests through one toolchain, cache and pool.

    *cache* may be a :class:`CompilationCache`, any object with the same
    ``get``/``put`` duck type (e.g. a :class:`~repro.api.cache.TieredCache`),
    or a path, which is wrapped in a disk cache.

    *pool* injects a shared, long-lived executor: the batch then fans its
    misses over that pool instead of creating (and tearing down) its own,
    so a resident daemon and a batch run can reuse one warm set of worker
    processes.  An injected pool is never shut down by the compiler.
    """

    def __init__(
        self,
        toolchain: Optional[Toolchain] = None,
        cache: Union[CompilationCache, os.PathLike, None] = None,
        workers: Optional[int] = None,
        pool: Optional[Executor] = None,
        coordinator: Optional[str] = None,
    ):
        self.toolchain = toolchain or Toolchain.default()
        if cache is not None and not (
            hasattr(cache, "get") and hasattr(cache, "put")
        ):
            cache = CompilationCache(cache)
        self.cache = cache
        self.workers = workers
        self.pool = pool
        self.coordinator = coordinator

    def compile_many(
        self,
        requests: Sequence[CompilationRequest],
        progress: Optional[ProgressFn] = None,
        return_errors: bool = False,
    ) -> List[Union[CompilationReport, ReproError]]:
        """Compile every request; results come back in request order.

        With ``return_errors=True`` a job that fails with a
        :class:`~repro.errors.ReproError` (e.g. the two-phase baseline
        hitting its II ceiling) yields the exception object in its result
        slot instead of aborting the whole batch.
        """
        requests = list(requests)
        reports: List[Optional[Union[CompilationReport, ReproError]]] = [
            None
        ] * len(requests)
        keys: List[Optional[str]] = [None] * len(requests)
        pending: List[int] = []
        pipeline = self.toolchain.pass_names
        for index, request in enumerate(requests):
            if self.cache is not None:
                keys[index] = content_hash(request, pipeline=pipeline)
                hit = self.cache.get(keys[index])
                if hit is not None:
                    reports[index] = hit
                    continue
            pending.append(index)
        done = len(requests) - len(pending)
        if progress and done:
            progress(f"{done}/{len(requests)} jobs served from cache")

        if self.coordinator is not None and pending:
            self._compile_remote(
                requests, keys, reports, pending, progress, return_errors
            )
            return reports

        workers = self.workers if self.workers is not None else 1
        jobs = [
            (self.toolchain, requests[i], return_errors) for i in pending
        ]
        if self.pool is not None and len(pending) > 1:
            width = getattr(self.pool, "_max_workers", DEFAULT_WORKERS)
            chunksize = max(1, len(pending) // (max(1, width) * 4))
            outcomes = self.pool.map(_compile_job, jobs, chunksize=chunksize)
            for index, outcome in zip(pending, outcomes):
                reports[index] = self._finish(keys[index], outcome)
                done += 1
                if progress and done % 50 == 0:
                    progress(f"compiled {done}/{len(requests)} jobs")
        elif workers > 1 and len(pending) > 1:
            chunksize = max(1, len(pending) // (workers * 4))
            with spawn_pool(workers) as pool:
                outcomes = pool.map(_compile_job, jobs, chunksize=chunksize)
                for index, outcome in zip(pending, outcomes):
                    reports[index] = self._finish(keys[index], outcome)
                    done += 1
                    if progress and done % 50 == 0:
                        progress(f"compiled {done}/{len(requests)} jobs")
        else:
            for index, job in zip(pending, jobs):
                reports[index] = self._finish(keys[index], _compile_job(job))
                done += 1
                if progress and done % 50 == 0:
                    progress(f"compiled {done}/{len(requests)} jobs")
        return reports

    def _finish(
        self,
        key: Optional[str],
        outcome: Union[CompilationReport, ReproError],
    ) -> Union[CompilationReport, ReproError]:
        if self.cache is not None and isinstance(outcome, CompilationReport):
            outcome.cache_key = key
            self.cache.put(key, outcome)
        return outcome

    #: Results fetched per page when merging a distributed sweep.
    REMOTE_PAGE = 64

    def _compile_remote(
        self,
        requests: Sequence[CompilationRequest],
        keys: List[Optional[str]],
        reports: List[Optional[Union[CompilationReport, ReproError]]],
        pending: List[int],
        progress: Optional[ProgressFn],
        return_errors: bool,
    ) -> None:
        """Run the cache misses as one sweep on the coordinator fleet.

        Sweep job *i* is ``requests[pending[i]]``, so the merge is pure
        index bookkeeping; every finished report also lands in the local
        cache via :meth:`_finish`, making the next run incremental.
        """
        # Imported lazily: repro.api must stay importable without
        # dragging the service package (and its asyncio surface) in.
        from ..service.client import ServiceClient
        from ..service.jobs import request_to_payload

        payloads = [request_to_payload(requests[i]) for i in pending]
        with ServiceClient(self.coordinator) as client:
            status = client.submit_sweep({"jobs": payloads})
            sweep_id = str(status["sweep"])
            if progress:
                progress(
                    f"sweep {sweep_id}: {len(pending)} jobs submitted to "
                    f"{self.coordinator}"
                )
            reported = -1
            while status.get("state") == "open":
                time.sleep(0.25)
                status = client.sweep(sweep_id)
                finished = int(status.get("done", 0)) + int(
                    status.get("failed", 0)
                )
                if progress and finished != reported:
                    reported = finished
                    progress(
                        f"sweep {sweep_id}: {finished}/{status['total']} "
                        f"jobs finished "
                        f"({status.get('active_workers', 0)} workers)"
                    )
            for start in range(0, len(pending), self.REMOTE_PAGE):
                page = client.sweep_results(
                    sweep_id,
                    start=start,
                    stop=start + self.REMOTE_PAGE,
                    pickle=True,
                )
                for row in page["results"]:
                    index = pending[int(row["index"])]
                    if row.get("state") == "done":
                        report = pickle.loads(
                            base64.b64decode(str(row["report"]).encode("ascii"))
                        )
                        reports[index] = self._finish(keys[index], report)
                    else:
                        err = ReproError(
                            str(
                                row.get("error")
                                or f"sweep job {row['index']} ended "
                                f"{row.get('state')!r}"
                            )
                        )
                        if not return_errors:
                            raise err
                        reports[index] = err


def compile_many(
    requests: Sequence[CompilationRequest],
    toolchain: Optional[Toolchain] = None,
    cache: Union[CompilationCache, os.PathLike, None] = None,
    workers: Optional[int] = None,
    pool: Optional[Executor] = None,
    progress: Optional[ProgressFn] = None,
    return_errors: bool = False,
    coordinator: Optional[str] = None,
) -> List[Union[CompilationReport, ReproError]]:
    """One-shot convenience wrapper around :class:`BatchCompiler`."""
    compiler = BatchCompiler(
        toolchain=toolchain,
        cache=cache,
        workers=workers,
        pool=pool,
        coordinator=coordinator,
    )
    return compiler.compile_many(
        requests, progress=progress, return_errors=return_errors
    )
