"""End-to-end validation: the differential execution oracle and fuzzer.

The repository's other validation layers each cover one slice of the
compiler: the static checker re-derives schedule constraints, the timing
simulator replays issue/ready/pop discipline, and the rewrite-semantics
module proves graph transforms value-preserving.  This package closes the
remaining hole — nothing else ever *executes the emitted VLIW program* —
with two tools:

* :mod:`~repro.validate.oracle` — a value-level interpreter for
  :class:`~repro.codegen.kernel.VLIWProgram` (prologue, kernel re-issue,
  epilogue, queue pops through the actual
  :class:`~repro.registers.queues.QueueAllocation`) whose store streams
  must bit-equal a sequential reference run of the *original* loop;
* :mod:`~repro.validate.fuzz` — randomized loops plus systematic
  mutations of valid schedules, cross-examined by the checker, the
  timing simulator and the oracle under an explicit agreement contract.

CLI entry points: ``repro verify`` and ``repro fuzz``.
"""

from .oracle import (
    DifferentialReport,
    OracleReport,
    execute_program,
    verify_compiled,
    verify_loop,
    verify_many,
)
from .fuzz import (
    Disagreement,
    FuzzConfig,
    FuzzReport,
    MUTATIONS,
    run_fuzz,
)

__all__ = [
    "DifferentialReport",
    "Disagreement",
    "FuzzConfig",
    "FuzzReport",
    "MUTATIONS",
    "OracleReport",
    "execute_program",
    "run_fuzz",
    "verify_compiled",
    "verify_loop",
    "verify_many",
]
