"""Schedule-mutation fuzzing: checker vs simulator vs oracle.

The three validation layers cover overlapping slices of schedule
correctness; when one of them accepts a schedule another rejects, at
least one of them is wrong.  The fuzzer hunts for exactly those
disagreements: it compiles randomized loops (the synthetic generator
behind the Perfect Club surrogate) across random topologies and cluster
counts, then applies systematic mutations to each valid schedule and
cross-examines every mutant.

The **agreement contract** makes "agree" precise, because the layers have
different scopes by design:

* baseline (no mutation): all three layers must accept a schedule the
  toolchain just produced;
* placement mutations (``shift``, ``swap_clusters``, ``move_cluster``):

  - checker accepts  -> simulator and oracle must both accept,
  - checker rejects  -> simulator must reject (every static rule those
    mutations can break has a dynamic mirror),
  - oracle rejects   -> checker must reject (the oracle never raises a
    false alarm).

  The one asymmetry allowed: the checker may reject while the *oracle*
  accepts, because memory-ordering edges carry no value — the oracle is
  blind to them (the simulator is not);
* capacity mutation (``shrink_queue``): the checker has no queue-capacity
  rule, so its verdict must stay "accept"; the simulator and the oracle
  must agree with *each other* on whether the shrunken depth binds.

Any contract violation is recorded as a :class:`Disagreement`, minimized
by shrinking the loop body, and serialised for the CI artifact.
"""

from __future__ import annotations

import dataclasses
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..api import CompilationRequest, Toolchain
from ..errors import ReproError
from ..ir.ddg import DDG
from ..ir.loop import Loop
from ..ir.opcodes import OpCode
from ..machine.cqrf import CQRFId, QueueFileSpec
from ..machine.machine import MachineSpec, clustered_vliw
from ..registers.queues import allocate_queues
from ..scheduling.checker import check_schedule
from ..scheduling.pipeline import CompiledLoop
from ..scheduling.result import ScheduleResult
from ..scheduling.schedule import Placement
from ..simulator.engine import simulate
from ..workloads.synthetic import SyntheticSpec, synthetic_loop

#: Fuzzing population spec: the surrogate-suite shapes plus memory
#: aliasing edges, so the ordering-edge paths of the checker and the
#: simulator face mutants too.
FUZZ_SPEC = SyntheticSpec(p_mem_dep=0.35)
from .oracle import verify_compiled

#: Topology kinds the fuzzer samples (the five concrete interconnects).
DEFAULT_TOPOLOGIES: Tuple[str, ...] = (
    "ring",
    "linear",
    "mesh",
    "torus",
    "crossbar",
)


@dataclass(frozen=True)
class FuzzConfig:
    """Tunables of one fuzzing campaign (deterministic in ``seed``)."""

    seed: int = 1999
    trials: int = 50
    mutants_per_trial: int = 8
    time_budget: Optional[float] = None  # wall-clock seconds, None = off
    cluster_counts: Tuple[int, ...] = (2, 4, 8)
    topologies: Tuple[str, ...] = DEFAULT_TOPOLOGIES
    minimize: bool = True

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.mutants_per_trial < 0:
            raise ValueError("mutants_per_trial must be >= 0")


@dataclass
class Verdicts:
    """One (schedule, machine) examined by all three layers."""

    checker_ok: bool
    simulator_ok: bool
    oracle_ok: bool
    checker_problems: List[str] = field(default_factory=list)
    simulator_problems: List[str] = field(default_factory=list)
    oracle_problems: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "checker_ok": self.checker_ok,
            "simulator_ok": self.simulator_ok,
            "oracle_ok": self.oracle_ok,
            "checker_problems": self.checker_problems[:5],
            "simulator_problems": self.simulator_problems[:5],
            "oracle_problems": self.oracle_problems[:5],
        }


@dataclass
class Disagreement:
    """One contract violation, with enough context to replay it."""

    trial: int
    loop_name: str
    loop_origin: Dict[str, object]
    machine: str
    topology: str
    n_clusters: int
    mutation: str
    mutation_detail: str
    violations: List[str]
    verdicts: Verdicts
    minimized_ops: Optional[int] = None
    minimized_listing: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "trial": self.trial,
            "loop_name": self.loop_name,
            "loop_origin": dict(self.loop_origin),
            "machine": self.machine,
            "topology": self.topology,
            "n_clusters": self.n_clusters,
            "mutation": self.mutation,
            "mutation_detail": self.mutation_detail,
            "violations": list(self.violations),
            "verdicts": self.verdicts.to_dict(),
            "minimized_ops": self.minimized_ops,
            "minimized_listing": self.minimized_listing,
        }


@dataclass
class FuzzReport:
    """Outcome of one campaign."""

    config: FuzzConfig
    trials_run: int = 0
    mutants_run: int = 0
    compile_failures: int = 0
    elapsed: float = 0.0
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.disagreements)} DISAGREEMENT(S)"
        return (
            f"fuzz seed={self.config.seed}: {self.trials_run} trial(s), "
            f"{self.mutants_run} mutant(s), {self.compile_failures} "
            f"compile failure(s), {self.elapsed:.1f}s -> {status}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.config.seed,
            "trials_run": self.trials_run,
            "mutants_run": self.mutants_run,
            "compile_failures": self.compile_failures,
            "elapsed_seconds": round(self.elapsed, 3),
            "ok": self.ok,
            "disagreements": [d.to_dict() for d in self.disagreements],
        }


# ----------------------------------------------------------------------
# Mutations
# ----------------------------------------------------------------------

Mutator = Callable[[np.random.Generator, ScheduleResult], Optional[Tuple[ScheduleResult, str]]]


def _with_placements(result: ScheduleResult, placements) -> ScheduleResult:
    return dataclasses.replace(result, placements=placements)


def mutate_shift(rng: np.random.Generator, result: ScheduleResult):
    """Shift one op's issue time by a small signed amount."""
    op_ids = sorted(result.placements)
    if not op_ids:
        return None
    op_id = int(rng.choice(op_ids))
    old = result.placements[op_id]
    delta = int(rng.choice([-2, -1, 1, 2]))
    new_time = max(0, old.time + delta)
    if new_time == old.time:
        new_time = old.time + abs(delta)
    placements = dict(result.placements)
    placements[op_id] = Placement(time=new_time, cluster=old.cluster)
    return (
        _with_placements(result, placements),
        f"v{op_id}: t={old.time} -> {new_time}",
    )


def mutate_swap_clusters(rng: np.random.Generator, result: ScheduleResult):
    """Swap the clusters of two ops placed on different clusters."""
    if not result.machine.is_clustered:
        return None
    op_ids = sorted(result.placements)
    by_cluster: Dict[int, List[int]] = {}
    for op_id in op_ids:
        by_cluster.setdefault(result.placements[op_id].cluster, []).append(op_id)
    clusters = sorted(c for c, ops in by_cluster.items() if ops)
    if len(clusters) < 2:
        return None
    a, b = rng.choice(clusters, size=2, replace=False)
    op_a = int(rng.choice(by_cluster[int(a)]))
    op_b = int(rng.choice(by_cluster[int(b)]))
    placements = dict(result.placements)
    pa, pb = placements[op_a], placements[op_b]
    placements[op_a] = Placement(time=pa.time, cluster=pb.cluster)
    placements[op_b] = Placement(time=pb.time, cluster=pa.cluster)
    return (
        _with_placements(result, placements),
        f"v{op_a}(c{pa.cluster}) <-> v{op_b}(c{pb.cluster})",
    )


def mutate_move_cluster(rng: np.random.Generator, result: ScheduleResult):
    """Move one op to a different cluster (keeping its time)."""
    if not result.machine.is_clustered:
        return None
    op_ids = sorted(result.placements)
    if not op_ids:
        return None
    op_id = int(rng.choice(op_ids))
    old = result.placements[op_id]
    others = [
        c for c in range(result.machine.n_clusters) if c != old.cluster
    ]
    target = int(rng.choice(others))
    placements = dict(result.placements)
    placements[op_id] = Placement(time=old.time, cluster=target)
    return (
        _with_placements(result, placements),
        f"v{op_id}: c{old.cluster} -> c{target}",
    )


def mutate_tighten_edge(rng: np.random.Generator, result: ScheduleResult):
    """Pull one dependence edge's consumer exactly one cycle past its
    slack, violating that edge and (usually) nothing else.

    Random +-1/2 shifts almost never bind on high-slack ordering edges,
    so this targeted mutation is what keeps the checker's and the
    simulator's per-edge-kind coverage honest (it is how the fuzzer
    proved the simulator used to ignore memory ordering edges).
    """
    from ..scheduling.timing import dependence_slack

    edges = [
        edge
        for edge in result.ddg.edges()
        if edge.src in result.placements and edge.dst in result.placements
    ]
    if not edges:
        return None
    edge = edges[int(rng.integers(0, len(edges)))]
    slack = dependence_slack(
        result.ddg,
        edge,
        result.placements,
        result.ii,
        result.latencies,
        result.machine,
    )
    old = result.placements[edge.dst]
    new_time = old.time - (slack + 1)
    if new_time < 0:
        return None
    placements = dict(result.placements)
    placements[edge.dst] = Placement(time=new_time, cluster=old.cluster)
    return (
        _with_placements(result, placements),
        f"{edge!r}: t({edge.dst})={old.time} -> {new_time} (slack {slack})",
    )


def mutate_shrink_queue(rng: np.random.Generator, result: ScheduleResult):
    """Shrink the CQRF queue depth to just below what the schedule needs."""
    if not result.machine.is_clustered:
        return None
    try:
        allocation = allocate_queues(result)
    except ReproError:
        return None
    cross = [
        usage.max_depth
        for usage in allocation.files
        if isinstance(usage.file_id, CQRFId)
    ]
    if not cross:
        return None
    needed = max(cross)
    if needed < 2:
        return None
    old = result.machine.cqrf
    machine = dataclasses.replace(
        result.machine,
        cqrf=QueueFileSpec(
            n_queues=old.n_queues,
            queue_depth=needed - 1,
            write_ports=old.write_ports,
        ),
    )
    return (
        dataclasses.replace(result, machine=machine),
        f"cqrf depth {old.queue_depth} -> {needed - 1} (needed {needed})",
    )


#: Mutation registry: name -> mutator.
MUTATIONS: Dict[str, Mutator] = {
    "shift": mutate_shift,
    "swap_clusters": mutate_swap_clusters,
    "move_cluster": mutate_move_cluster,
    "tighten_edge": mutate_tighten_edge,
    "shrink_queue": mutate_shrink_queue,
}

#: Mutations covered by the placement clauses of the contract.
_PLACEMENT_MUTATIONS = frozenset(
    {"shift", "swap_clusters", "move_cluster", "tighten_edge"}
)


# ----------------------------------------------------------------------
# Verdicts and the agreement contract
# ----------------------------------------------------------------------


def evaluate(loop: Loop, unroll_factor: int, result: ScheduleResult) -> Verdicts:
    """Run the checker, the timing simulator and the oracle over one
    schedule; exceptions from a layer count as that layer rejecting."""
    checker = check_schedule(result)

    iterations = max(result.stage_count + 2, _max_omega(result.ddg) + 2)
    try:
        sim = simulate(result, iterations, strict=False)
        sim_ok, sim_problems = sim.ok, sim.problems
    except ReproError as err:
        sim_ok, sim_problems = False, [f"simulator error: {err}"]

    compiled = CompiledLoop(
        loop=loop,
        machine=result.machine,
        unroll_factor=unroll_factor,
        result=result,
        allocation=None,
    )
    try:
        oracle = verify_compiled(compiled, iterations=iterations)
        oracle_ok, oracle_problems = oracle.ok, oracle.all_problems
    except ReproError as err:
        oracle_ok, oracle_problems = False, [f"oracle error: {err}"]

    return Verdicts(
        checker_ok=checker.ok,
        simulator_ok=sim_ok,
        oracle_ok=oracle_ok,
        checker_problems=list(checker.problems),
        simulator_problems=list(sim_problems),
        oracle_problems=list(oracle_problems),
    )


def _max_omega(ddg: DDG) -> int:
    return max(
        (
            src.omega
            for op in ddg.operations()
            for src in op.srcs
            if not src.is_external
        ),
        default=0,
    )


def contract_violations(mutation: Optional[str], verdicts: Verdicts) -> List[str]:
    """The agreement-contract clauses *verdicts* violate (empty = agree).

    ``mutation=None`` means the unmutated baseline schedule.
    """
    v = verdicts
    out: List[str] = []
    if mutation is None:
        if not v.checker_ok:
            out.append("baseline: checker rejects a fresh toolchain schedule")
        if not v.simulator_ok:
            out.append("baseline: simulator rejects a fresh toolchain schedule")
        if not v.oracle_ok:
            out.append("baseline: oracle rejects a fresh toolchain schedule")
        return out
    if mutation in _PLACEMENT_MUTATIONS:
        if v.checker_ok and not v.simulator_ok:
            out.append("checker accepts but simulator rejects")
        if v.checker_ok and not v.oracle_ok:
            out.append("checker accepts but oracle rejects")
        if not v.checker_ok and v.simulator_ok:
            out.append("checker rejects but simulator accepts")
        return out
    if mutation == "shrink_queue":
        if not v.checker_ok:
            out.append("shrink_queue flipped the checker (no capacity rule)")
        if v.simulator_ok != v.oracle_ok:
            out.append(
                "simulator and oracle disagree on queue capacity "
                f"(simulator_ok={v.simulator_ok}, oracle_ok={v.oracle_ok})"
            )
        return out
    raise ValueError(f"unknown mutation {mutation!r}")


# ----------------------------------------------------------------------
# Loop minimization
# ----------------------------------------------------------------------


def _dead_code_eliminate(ddg: DDG) -> None:
    """Remove non-store ops whose values are never referenced."""
    changed = True
    while changed:
        changed = False
        for op_id in list(ddg.op_ids):
            op = ddg.op(op_id)
            if op.opcode == OpCode.STORE:
                continue
            if ddg.flow_fanout(op_id) == 0:
                ddg.remove_operation(op_id)
                changed = True


def minimize_loop(
    loop: Loop,
    still_fails: Callable[[Loop], bool],
    max_attempts: int = 32,
) -> Loop:
    """Greedy 1-store-at-a-time shrink of *loop* preserving the failure.

    Drops one store (plus the dead cone behind it) per round as long as
    ``still_fails`` keeps returning True on the reduced loop.
    """
    current = loop
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        stores = [
            op.op_id
            for op in current.ddg.operations()
            if op.opcode == OpCode.STORE
        ]
        if len(stores) <= 1:
            break
        for store_id in stores:
            attempts += 1
            if attempts > max_attempts:
                break
            candidate_ddg = current.ddg.copy(f"{current.ddg.name}_min")
            candidate_ddg.remove_operation(store_id)
            _dead_code_eliminate(candidate_ddg)
            if not len(candidate_ddg):
                continue
            try:
                candidate_ddg.validate()
                candidate = dataclasses.replace(current, ddg=candidate_ddg)
                if still_fails(candidate):
                    current = candidate
                    progress = True
                    break
            except ReproError:
                continue
    return current


# ----------------------------------------------------------------------
# The campaign driver
# ----------------------------------------------------------------------


def _compile(loop: Loop, machine: MachineSpec):
    report = Toolchain.default().compile(
        CompilationRequest(loop=loop, machine=machine, validate=False)
    )
    return report.compiled


def _trial_failure_predicate(
    machine: MachineSpec,
    mutation: Optional[str],
    mutation_seed: int,
) -> Callable[[Loop], bool]:
    """Does the same (machine, mutation kind) still disagree on *loop*?"""

    def predicate(loop: Loop) -> bool:
        try:
            compiled = _compile(loop, machine)
        except ReproError:
            return False
        verdicts = evaluate(loop, compiled.unroll_factor, compiled.result)
        if mutation is None:
            return bool(contract_violations(None, verdicts))
        if contract_violations(None, verdicts):
            return False  # baseline must stay clean to isolate the mutant
        rng = np.random.default_rng(mutation_seed)
        mutated = MUTATIONS[mutation](rng, compiled.result)
        if mutated is None:
            return False
        mutant, _detail = mutated
        mutant_verdicts = evaluate(loop, compiled.unroll_factor, mutant)
        return bool(contract_violations(mutation, mutant_verdicts))

    return predicate


def run_fuzz(
    config: FuzzConfig = FuzzConfig(),
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run one fuzzing campaign (deterministic in ``config.seed``)."""
    report = FuzzReport(config=config)
    started = _time.perf_counter()
    say = progress or (lambda _msg: None)
    mutation_names = sorted(MUTATIONS)

    for trial in range(config.trials):
        report.elapsed = _time.perf_counter() - started
        if (
            config.time_budget is not None
            and report.elapsed >= config.time_budget
        ):
            say(f"time budget reached after {trial} trial(s)")
            break
        rng = np.random.default_rng([config.seed, trial])
        loop = synthetic_loop(trial, seed=config.seed + 7919, spec=FUZZ_SPEC)
        n_clusters = int(rng.choice(config.cluster_counts))
        topology = str(rng.choice(config.topologies))
        machine = clustered_vliw(n_clusters, topology=topology)
        report.trials_run += 1

        try:
            compiled = _compile(loop, machine)
        except ReproError as err:
            # Scheduling can legitimately fail (II overflow on tiny
            # machines); that is not a validation disagreement.
            report.compile_failures += 1
            say(f"trial {trial}: compile failed ({err})")
            continue

        def record(mutation, detail, verdicts, violations, mutation_seed):
            disagreement = Disagreement(
                trial=trial,
                loop_name=loop.name,
                loop_origin=dict(loop.origin),
                machine=machine.name,
                topology=topology,
                n_clusters=n_clusters,
                mutation=mutation or "baseline",
                mutation_detail=detail,
                violations=violations,
                verdicts=verdicts,
            )
            if config.minimize:
                minimized = minimize_loop(
                    loop,
                    _trial_failure_predicate(machine, mutation, mutation_seed),
                )
                disagreement.minimized_ops = len(minimized.ddg)
                disagreement.minimized_listing = minimized.ddg.pretty()
            report.disagreements.append(disagreement)
            say(
                f"trial {trial}: DISAGREEMENT ({disagreement.mutation}: "
                + "; ".join(violations)
                + ")"
            )

        baseline = evaluate(loop, compiled.unroll_factor, compiled.result)
        violations = contract_violations(None, baseline)
        if violations:
            record(None, "", baseline, violations, 0)
            continue

        for index in range(config.mutants_per_trial):
            mutation = mutation_names[index % len(mutation_names)]
            mutation_seed = config.seed * 1_000_003 + trial * 101 + index
            mutant_rng = np.random.default_rng(mutation_seed)
            produced = MUTATIONS[mutation](mutant_rng, compiled.result)
            if produced is None:
                continue
            mutant, detail = produced
            report.mutants_run += 1
            verdicts = evaluate(loop, compiled.unroll_factor, mutant)
            violations = contract_violations(mutation, verdicts)
            if violations:
                record(mutation, detail, verdicts, violations, mutation_seed)
        if trial and trial % 10 == 0:
            say(
                f"{trial + 1} trial(s), {report.mutants_run} mutant(s), "
                f"{len(report.disagreements)} disagreement(s)"
            )

    report.elapsed = _time.perf_counter() - started
    return report
