"""The differential execution oracle.

This module executes an emitted :class:`~repro.codegen.kernel.VLIWProgram`
value by value — prologue listing, kernel re-issues, epilogue listing —
routing every operand through the FIFO queue the
:class:`~repro.registers.queues.QueueAllocation` actually assigned to it,
and compares the resulting store-value streams against
:func:`~repro.simulator.semantics.sequential_run` on the *original*
(pre-unroll, pre-single-use, pre-scheduling) loop.  Both executors share
one :class:`~repro.simulator.semantics.ValueModel`, so the comparison is
exact (``==`` on floats): any mismatch is a machine-model, scheduler,
allocator or codegen bug, never numeric noise.

What one ``verify_compiled`` call proves:

* the ramp listings and kernel re-issues cover every ``(op, iteration)``
  instance exactly once (no double-issue, no omission);
* every operand value is in its queue when the consumer issues (per-edge
  latency honoured, loop-carried seeds included);
* queue traffic respects the hardware: assignments exist for every
  lifetime, no two lifetimes share a queue, occupancy stays within both
  the allocated depth and the file's ``queue_depth``, producers respect
  the single-use fan-out discipline, and per-cycle CQRF writes fit the
  declared ``write_ports``;
* the values stored by the pipelined program bit-equal the sequential
  reference on the original iteration space (unroll mapping applied).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..codegen.kernel import SlotBinding, VLIWProgram, build_program
from ..errors import (
    AllocationError,
    CodegenError,
    DDGError,
    SimulationError,
    ValidationError,
)
from ..ir.ddg import DDG
from ..ir.opcodes import LatencyModel, OpCode
from ..ir.transforms import base_op_of
from ..machine.cqrf import LRFId
from ..machine.machine import MachineSpec
from ..registers.queues import QueueAllocation, allocate_queues
from ..scheduling.pipeline import CompiledLoop
from ..scheduling.result import ScheduleResult
from ..scheduling.timing import edge_ready_latency
from ..simulator.semantics import (
    ValueModel,
    default_load_token,
    sequential_run,
)

#: Poison operand value substituted when a queue pop fails; keeps the
#: execution going so one bug yields one problem, not a cascade of crashes.
_POISON = float("nan")


@dataclass
class OracleReport:
    """Outcome of one value-level program execution."""

    loop_name: str
    machine_name: str
    ii: int
    stage_count: int
    iterations: int
    issued: int = 0
    max_queue_occupancy: int = 0
    store_streams: Dict[int, List[float]] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_if_failed(self) -> None:
        if self.problems:
            summary = "; ".join(self.problems[:8])
            more = (
                f" (+{len(self.problems) - 8} more)"
                if len(self.problems) > 8
                else ""
            )
            raise ValidationError(
                f"execution oracle rejected {self.loop_name!r}: {summary}{more}"
            )


def _enumerate_issues(
    program: VLIWProgram,
    iterations: int,
    report: OracleReport,
) -> List[Tuple[int, int, SlotBinding]]:
    """All (cycle, iteration, binding) issues of an *iterations*-deep run.

    The prologue and epilogue come from the program's ramp listings (the
    epilogue pattern shifts with the run depth in steady state); the
    kernel block re-issues for every steady-state cycle in between.
    """
    ii = program.ii
    sc = program.stage_count
    ramp = program.ramp_iterations or min(sc, iterations)
    if ramp != min(sc, iterations):
        report.problems.append(
            f"program ramp listings cover {ramp} iteration(s); a "
            f"{iterations}-iteration run needs {min(sc, iterations)}"
        )
        return []
    issues: List[Tuple[int, int, SlotBinding]] = []

    def place(cycle: int, binding: SlotBinding, phase: str) -> None:
        issue_time = binding.stage * ii + binding.row
        offset = cycle - issue_time
        if offset % ii or not 0 <= offset // ii < iterations:
            report.problems.append(
                f"{phase} lists v{binding.op_id} at cycle {cycle}, which is "
                f"no iteration of a {iterations}-iteration run "
                f"(t={issue_time}, II={ii})"
            )
            return
        issues.append((cycle, offset // ii, binding))

    for cycle_issue in program.prologue:
        for binding in cycle_issue.bindings:
            place(cycle_issue.cycle, binding, "prologue")
    for reissue in range(sc - 1, iterations):
        for row, bindings in enumerate(program.kernel):
            for binding in bindings:
                place(reissue * ii + row, binding, "kernel")
    shift = (iterations - ramp) * ii
    for cycle_issue in program.epilogue:
        for binding in cycle_issue.bindings:
            place(cycle_issue.cycle + shift, binding, "epilogue")
    return issues


def _check_exactness(
    issues: List[Tuple[int, int, SlotBinding]],
    ddg: DDG,
    iterations: int,
    report: OracleReport,
) -> None:
    """Every op of the graph must issue exactly once per iteration."""
    seen: Dict[Tuple[int, int], int] = {}
    for _cycle, iteration, binding in issues:
        key = (binding.op_id, iteration)
        seen[key] = seen.get(key, 0) + 1
    for (op_id, iteration), count in sorted(seen.items()):
        if op_id not in ddg:
            report.problems.append(
                f"program issues v{op_id}, which is not in the graph"
            )
        elif count > 1:
            report.problems.append(
                f"v{op_id} iteration {iteration} issued {count} times"
            )
    for op_id in ddg.op_ids:
        for iteration in range(iterations):
            if (op_id, iteration) not in seen:
                report.problems.append(
                    f"v{op_id} iteration {iteration} never issued"
                )


def execute_program(
    program: VLIWProgram,
    ddg: DDG,
    latencies: LatencyModel,
    iterations: int,
    allocation: Optional[QueueAllocation] = None,
    machine: Optional[MachineSpec] = None,
    model: Optional[ValueModel] = None,
) -> OracleReport:
    """Execute *program* for *iterations* iterations, value by value.

    With an *allocation*, every operand reference flows through its
    assigned LRF/CQRF queue; without one (unclustered machines) each
    reference gets an anonymous FIFO.  Returns the report with the store
    value streams keyed by store op id; all violations are recorded as
    problems rather than raised.
    """
    if iterations < 1:
        raise SimulationError(f"iterations must be >= 1, got {iterations}")
    model = model or ValueModel(ddg)
    report = OracleReport(
        loop_name=program.loop_name,
        machine_name=program.machine_name,
        ii=program.ii,
        stage_count=program.stage_count,
        iterations=iterations,
    )

    # The program's advertised stage count drives ramp length and stage
    # predication in hardware; it must agree with the kernel's own stage
    # annotations (a consistently shifted ramp still *executes* exactly,
    # so enumeration alone cannot see the lie).
    stages = [b.stage for row in program.kernel for b in row]
    if stages and program.stage_count != max(stages) + 1:
        report.problems.append(
            f"program stage count {program.stage_count} != 1 + max kernel "
            f"stage {max(stages)}"
        )

    issues = _enumerate_issues(program, iterations, report)
    _check_exactness(issues, ddg, iterations, report)
    if report.problems:
        return report

    # --- queue plumbing ------------------------------------------------
    by_lifetime = allocation.by_lifetime() if allocation is not None else None
    queue_of: Dict[Tuple[int, int, int], object] = {}
    depth_limit: Dict[object, int] = {}
    clustered = machine is not None and machine.is_clustered

    def resolve_queue(producer: int, consumer: int, index: int):
        ref = (producer, consumer, index)
        key = queue_of.get(ref)
        if key is not None:
            return key
        if by_lifetime is None:
            key = ref
        else:
            assignment = by_lifetime.get(ref)
            if assignment is None:
                report.problems.append(
                    f"no queue assigned for v{producer} -> op {consumer} "
                    f"operand {index}"
                )
                key = ref  # fall back so execution can continue
            else:
                key = (assignment.file_id, assignment.queue_index)
                if machine is not None:
                    spec = (
                        machine.cluster(assignment.file_id.cluster).lrf
                        if isinstance(assignment.file_id, LRFId)
                        else machine.cqrf
                    )
                    depth_limit[key] = spec.queue_depth
        queue_of[ref] = key
        return key

    if by_lifetime is not None:
        taken: Dict[Tuple[object, int], Tuple[int, int, int]] = {}
        for ref, assignment in by_lifetime.items():
            slot = (assignment.file_id, assignment.queue_index)
            if slot in taken:
                report.problems.append(
                    f"queue {assignment.label} assigned to two lifetimes: "
                    f"{taken[slot]} and {ref}"
                )
            taken[slot] = ref

    queues: Dict[object, deque] = {}

    def push(key, value) -> None:
        queue = queues.setdefault(key, deque())
        queue.append(value)
        if len(queue) > report.max_queue_occupancy:
            report.max_queue_occupancy = len(queue)
        limit = depth_limit.get(key)
        if limit is not None and len(queue) > limit:
            report.problems.append(
                f"queue {key[0]}:q{key[1]} holds {len(queue)} values "
                f"(depth {limit})"
            )

    # Loop-carried seeds: instances -omega .. -1 exist before cycle 0.
    for consumer in ddg.operations():
        for index, src in enumerate(consumer.srcs):
            if src.is_external or not src.omega:
                continue
            key = resolve_queue(src.producer, consumer.op_id, index)
            for instance in range(-src.omega, 0):
                push(key, model.seed_value(src.producer, instance))

    bindings_cluster: Dict[int, int] = {}
    for _cycle, _iteration, binding in issues:
        bindings_cluster.setdefault(binding.op_id, binding.fu.cluster)

    # Producer-side routing: per op, the consumer refs (queue, delay,
    # crossed link) its value fans out to, plus the single-use write
    # discipline the CQRF hardware relies on.
    fanout_plan: Dict[int, List[Tuple[object, int, Optional[Tuple[int, int]]]]] = {}

    def plan_for(op_id: int) -> List[Tuple[object, int, Optional[Tuple[int, int]]]]:
        plan = fanout_plan.get(op_id)
        if plan is not None:
            return plan
        producer_cluster = bindings_cluster.get(op_id)
        refs = ddg.flow_succ_ref_edges(op_id)
        if clustered and len(refs) > 2:
            report.problems.append(
                f"v{op_id} fans out to {len(refs)} queues "
                "(single-use discipline allows at most 2)"
            )
        plan = []
        for (consumer_id, index, _omega), edge in refs:
            key = resolve_queue(op_id, consumer_id, index)
            consumer_cluster = bindings_cluster.get(consumer_id)
            delay = edge_ready_latency(
                ddg,
                edge,
                latencies,
                src_cluster=producer_cluster,
                dst_cluster=consumer_cluster,
                machine=machine,
            )
            link = None
            if (
                producer_cluster is not None
                and consumer_cluster is not None
                and producer_cluster != consumer_cluster
            ):
                link = (producer_cluster, consumer_cluster)
            plan.append((key, delay, link))
        fanout_plan[op_id] = plan
        return plan

    # --- execution -----------------------------------------------------
    issues.sort(key=lambda item: (item[0], item[2].fu.sort_key))
    pending: List[Tuple[int, int, object, float, Optional[Tuple[int, int]]]] = []
    sequence = 0
    ports = machine.cqrf.write_ports if clustered else 0
    link_load: Dict[Tuple[int, int, int], int] = {}

    def drain_until(cycle: int) -> None:
        while pending and pending[0][0] <= cycle:
            ready, _seq, key, value, link = heapq.heappop(pending)
            push(key, value)
            if link is not None and ports > 0:
                slot = (ready, link[0], link[1])
                link_load[slot] = link_load.get(slot, 0) + 1
                if link_load[slot] == ports + 1:
                    report.problems.append(
                        f"cycle {ready}: {ports + 1}+ values enter "
                        f"cqrf[c{link[0]}->c{link[1]}] "
                        f"(write ports {ports})"
                    )

    for cycle, iteration, binding in issues:
        drain_until(cycle)
        op = ddg.op(binding.op_id)
        report.issued += 1
        args: List[float] = []
        for index, src in enumerate(op.srcs):
            if src.is_external:
                args.append(model.external_value(src.symbol))
                continue
            key = resolve_queue(src.producer, op.op_id, index)
            queue = queues.get(key)
            if not queue:
                report.problems.append(
                    f"cycle {cycle}: v{op.op_id} iteration {iteration} reads "
                    f"v{src.producer} (operand {index}) before it is ready"
                )
                args.append(_POISON)
                continue
            args.append(queue.popleft())
        if op.opcode == OpCode.STORE:
            report.store_streams.setdefault(op.op_id, []).append(args[0])
            continue
        value = model.compute(op, args, iteration)
        for key, delay, link in plan_for(op.op_id):
            sequence += 1
            heapq.heappush(
                pending, (cycle + delay, sequence, key, value, link)
            )
    drain_until(float("inf"))

    # --- end-state audit ----------------------------------------------
    # After n iterations every reference queue must hold exactly its
    # omega values (the carried state iteration n would consume).
    for consumer in ddg.operations():
        for index, src in enumerate(consumer.srcs):
            if src.is_external:
                continue
            key = resolve_queue(src.producer, consumer.op_id, index)
            left = len(queues.get(key, ()))
            if left != src.omega:
                report.problems.append(
                    f"stream v{src.producer} -> op {consumer.op_id} operand "
                    f"{index} drains to {left} values (expected {src.omega})"
                )
    return report


# ----------------------------------------------------------------------
# Differential comparison against the original loop
# ----------------------------------------------------------------------


@dataclass
class DifferentialReport:
    """Oracle execution + store-stream comparison vs the original loop."""

    oracle: OracleReport
    matched_stores: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.oracle.ok and not self.problems

    @property
    def all_problems(self) -> List[str]:
        return list(self.oracle.problems) + list(self.problems)

    def raise_if_failed(self) -> None:
        if not self.ok:
            summary = "; ".join(self.all_problems[:8])
            more = (
                f" (+{len(self.all_problems) - 8} more)"
                if len(self.all_problems) > 8
                else ""
            )
            raise ValidationError(
                f"differential oracle rejected "
                f"{self.oracle.loop_name!r}: {summary}{more}"
            )


def _unroll_hooks(base: DDG, factor: int):
    """(load_token, iteration_of) mapping a scheduled graph's original
    ops back to the base loop's streams and iteration space.

    Copy/move operations inserted by single-use rewriting or DMS chains
    never reach these hooks: the value model resolves identity chains to
    the original producer first.
    """
    span = factor * len(base.op_ids)

    def ensure_original(op) -> Tuple[int, int]:
        if op.op_id >= span:
            raise SimulationError(
                f"op {op.op_id} ({op.opcode.value}) has no base-loop "
                "counterpart (identity resolution should have removed it)"
            )
        return base_op_of(base, op.op_id, factor)

    def token(op) -> str:
        base_id, _copy = ensure_original(op)
        return default_load_token(base.op(base_id))

    def iteration(op, j: int) -> int:
        _base_id, copy = ensure_original(op)
        return j * factor + copy

    return token, iteration


def _failed_report(compiled: CompiledLoop, iterations: int, message: str) -> DifferentialReport:
    result = compiled.result
    oracle = OracleReport(
        loop_name=compiled.loop.name,
        machine_name=compiled.machine.name,
        ii=result.ii,
        stage_count=result.stage_count if result.ii >= 1 else 0,
        iterations=iterations,
        problems=[message],
    )
    return DifferentialReport(oracle=oracle)


def verify_compiled(
    compiled: CompiledLoop,
    iterations: Optional[int] = None,
) -> DifferentialReport:
    """Differentially verify one compiled loop, end to end.

    Builds the VLIW program (ramp listings sized to the run), executes it
    through the oracle, and bit-compares every store stream against
    ``sequential_run`` on the original loop body.  Never raises for
    schedule defects — they land in the report — but still raises for
    misuse (bad ``iterations``).
    """
    result = compiled.result
    base = compiled.loop.ddg
    factor = compiled.unroll_factor
    if result.ii < 1:
        return _failed_report(
            compiled,
            iterations or 1,
            f"initiation interval {result.ii} < 1",
        )
    if iterations is None:
        # Cover fill, at least two steady-state kernel re-issues and the
        # full drain, plus every loop-carried seed distance.
        max_omega = max(
            (src.omega for op in result.ddg.operations() for src in op.srcs
             if not src.is_external),
            default=0,
        )
        iterations = max(result.stage_count + 2, max_omega + 2)
    if iterations < 1:
        raise SimulationError(f"iterations must be >= 1, got {iterations}")

    allocation = compiled.allocation
    if allocation is None and result.machine.is_clustered:
        try:
            allocation = allocate_queues(result)
        except AllocationError as err:
            return _failed_report(
                compiled, iterations, f"queue allocation failed: {err}"
            )
    # Depth violations are real but the program can still execute; carry
    # them into the report so value bugs surface alongside them.
    oracle_problems: List[str] = []
    if allocation is not None and allocation.violations:
        oracle_problems.append(
            "queue allocation exceeds hardware limits: "
            + "; ".join(allocation.violations[:4])
        )

    try:
        program = build_program(
            result, allocation, ramp_iterations=iterations
        )
    except (CodegenError, DDGError) as err:
        return _failed_report(compiled, iterations, f"codegen failed: {err}")

    token, iteration_of = _unroll_hooks(base, factor)
    model = ValueModel(result.ddg, load_token=token, iteration_of=iteration_of)
    oracle = execute_program(
        program,
        result.ddg,
        result.latencies,
        iterations,
        allocation=allocation,
        machine=result.machine,
        model=model,
    )
    oracle.problems = oracle_problems + oracle.problems
    report = DifferentialReport(oracle=oracle)

    reference = sequential_run(base, iterations * factor)
    base_stores = sorted(
        op.op_id for op in base.operations() if op.opcode == OpCode.STORE
    )
    final_stores = sorted(
        op.op_id for op in result.ddg.operations() if op.opcode == OpCode.STORE
    )
    span = factor * len(base.op_ids)
    seen_replicas: Dict[int, set] = {s: set() for s in base_stores}
    for store_id in final_stores:
        if store_id >= span:
            report.problems.append(
                f"store v{store_id} has no base-loop counterpart"
            )
            continue
        base_id, copy = base_op_of(base, store_id, factor)
        if base_id not in seen_replicas:
            report.problems.append(
                f"store v{store_id} maps to base op {base_id}, which is "
                "not a store"
            )
            continue
        seen_replicas[base_id].add(copy)
        expected = [
            reference.store_streams[base_id][j * factor + copy]
            for j in range(iterations)
        ]
        got = oracle.store_streams.get(store_id, [])
        if got == expected:
            report.matched_stores += 1
            continue
        if len(got) != len(expected):
            report.problems.append(
                f"store v{store_id}: {len(got)} values stored, "
                f"expected {len(expected)}"
            )
            continue
        index = next(
            i for i, (x, y) in enumerate(zip(got, expected)) if x != y
        )
        report.problems.append(
            f"store v{store_id} diverges at kernel iteration {index} "
            f"(original iteration {index * factor + copy}): "
            f"stored {got[index]!r}, expected {expected[index]!r}"
        )
    for base_id, copies in sorted(seen_replicas.items()):
        missing = sorted(set(range(factor)) - copies)
        if missing:
            report.problems.append(
                f"base store {base_id}: unrolled copies {missing} missing "
                "from the scheduled graph"
            )
    return report


def verify_loop(
    loop,
    machine: MachineSpec,
    iterations: Optional[int] = None,
    **request_kwargs,
) -> DifferentialReport:
    """Compile *loop* for *machine* with the default toolchain, then
    differentially verify the emitted program (convenience entry)."""
    from ..api import CompilationRequest, Toolchain

    report = Toolchain.default().compile(
        CompilationRequest(loop=loop, machine=machine, **request_kwargs)
    )
    return verify_compiled(report.compiled, iterations=iterations)


def _verify_job(job: Tuple[CompiledLoop, Optional[int]]) -> DifferentialReport:
    """Worker-side entry for :func:`verify_many` (module-level: picklable)."""
    compiled, iterations = job
    return verify_compiled(compiled, iterations=iterations)


def verify_many(
    jobs: Sequence[Tuple[CompiledLoop, Optional[int]]],
    workers: Optional[int] = None,
) -> List[DifferentialReport]:
    """Differentially verify many compiled loops, optionally in parallel.

    *jobs* is a sequence of ``(compiled, iterations)`` pairs (iterations
    ``None`` = the :func:`verify_compiled` default sizing).  With
    ``workers`` > 1 the verification fans across a process pool — the
    oracle phase of ``repro verify`` gets the same ``--workers`` speedup
    its compile phase already has.  Reports come back in job order.
    """
    jobs = list(jobs)
    if workers is None or workers <= 1 or len(jobs) <= 1:
        return [_verify_job(job) for job in jobs]
    from ..pools import spawn_pool

    chunksize = max(1, len(jobs) // (workers * 4))
    with spawn_pool(workers) as pool:
        return list(pool.map(_verify_job, jobs, chunksize=chunksize))
