"""``async-atomicity``: no check-then-act on shared state across an await.

Inside one asyncio event loop, code between two awaits is atomic — but
nothing read *before* an ``await`` is still trustworthy after it: the
loop ran arbitrary other coroutines while this one was suspended, and
any of them may have mutated the shared object.  The classic daemon
race is::

    if key not in self.jobs:          # check
        report = await compile(...)   # suspension point
        self.jobs[key] = report       # act on the stale check

This rule runs a forward dataflow over each ``async def``'s CFG,
tracking every ``self.*`` attribute chain through three states —
unread, *freshly read*, and *stale* (read, then an ``await`` suspended
the coroutine).  A write to a chain whose read has gone stale is
reported, naming both the read and the await that invalidated it.

What re-validates a read: any *value* read of the same chain after the
await (a re-check, a re-fetch, or an augmented assignment's own
read-modify-write).  What does not: the target-navigation load inside
the write itself (``self.jobs`` in ``self.jobs[k] = v`` is not a
re-check of the admission test).

Awaits inside an ``async with`` whose context manager looks like a lock
(its expression chain contains ``lock``) do not stale anything: the
mutual exclusion the lock provides is exactly the re-validation the
rule otherwise demands.  In-place mutations through known mutating
methods (``.pop``, ``.update`` …) count as writes, but their own
receiver read is fresh at the call site, so a bare ``self.queue.pop()``
never fires — only a mutation separated from its justifying read by an
``await`` does.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Set, Tuple

from ..cfg import build_cfg
from ..dataflow import (
    ForwardAnalysis,
    State,
    iter_events,
    solve_forward,
)
from ..rules import LintRule
from ..visitor import ModuleContext

#: Tag shapes inside a chain's fact set:
#:   ("read", read_line)            — fresh read, no await since
#:   ("stale", read_line, await_line) — read, then suspended


class _Atomicity(ForwardAnalysis):
    def __init__(self, locked_lines: Set[int], reporter=None):
        self.locked_lines = locked_lines
        self.reporter = reporter

    def transfer_element(self, element, state: State) -> State:
        state = dict(state)
        for event in iter_events(element):
            if event.kind == "load" and event.role == "value":
                if event.name and event.name.startswith("self."):
                    state[event.name] = frozenset(
                        {("read", event.node.lineno)}
                    )
            elif event.kind == "await":
                if event.node.lineno in self.locked_lines:
                    continue
                for chain, tags in list(state.items()):
                    staled = frozenset(
                        ("stale", tag[1], event.node.lineno)
                        if tag[0] == "read" else tag
                        for tag in tags
                    )
                    state[chain] = staled
            elif event.kind == "store":
                if not (event.name and event.name.startswith("self.")):
                    continue
                tags = state.pop(event.name, frozenset())
                stale = sorted(tag for tag in tags if tag[0] == "stale")
                if stale and self.reporter is not None:
                    _, read_line, await_line = stale[0]
                    self.reporter(event.node, event.name, read_line,
                                  await_line)
        return state


class AsyncAtomicityRule(LintRule):
    rule_id = "async-atomicity"
    description = (
        "shared self.* state read before an await and written after it "
        "without re-validation (asyncio check-then-act race)"
    )

    def analyze_module(self, ctx: ModuleContext, project) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                self._check_function(node, ctx)

    # ------------------------------------------------------------------

    def _check_function(
        self, func: ast.AsyncFunctionDef, ctx: ModuleContext
    ) -> None:
        locked = _lock_protected_lines(func)
        cfg = build_cfg(func)
        in_states = solve_forward(cfg, _Atomicity(locked))

        reported: Set[Tuple[int, int, str]] = set()

        def report(node: ast.AST, chain: str, read_line: int,
                   await_line: int) -> None:
            key = (node.lineno, node.col_offset, chain)
            if key in reported:
                return
            reported.add(key)
            self.report(
                ctx, node,
                f"{chain} is written here, but the value it was checked "
                f"against was read at line {read_line} and an await at "
                f"line {await_line} suspended the coroutine in between — "
                "other coroutines may have changed it; re-validate after "
                "the await (or serialize with a lock)",
            )

        replay = _Atomicity(locked, reporter=report)
        for bid in sorted(in_states):
            replay.transfer(cfg.block(bid), in_states[bid])


def _lock_protected_lines(func: ast.AsyncFunctionDef) -> Set[int]:
    """Line numbers inside ``async with <something lock-ish>:`` bodies."""
    lines: Set[int] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.AsyncWith):
            continue
        if not any(
            _looks_like_lock(item.context_expr) for item in node.items
        ):
            continue
        if not node.body:
            continue
        start = node.body[0].lineno
        end = getattr(node.body[-1], "end_lineno", None) or node.body[-1].lineno
        lines.update(range(start, end + 1))
    return lines


def _looks_like_lock(expr: ast.expr) -> bool:
    names: List[str] = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute):
            names.append(node.attr)
        elif isinstance(node, ast.Name):
            names.append(node.id)
    return any(
        "lock" in name.lower() or "sem" in name.lower() for name in names
    )
