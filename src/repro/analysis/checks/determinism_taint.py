"""``determinism-taint``: nondeterministic values must not reach sinks.

The syntactic ``determinism`` rule flags nondeterministic *call sites*
on the bit-identity paths.  This rule tracks the *values*: a wall-clock
sample, an unseeded RNG draw or an ``id()`` laundered through
assignments, arithmetic, f-strings, containers and project-internal
helper calls is followed until it reaches a **sink** — a fingerprint,
cache-key or hash computation — and reported there, naming every source
that fed it.  Flows that never reach a sink are clean, which is what
kills the old rule's suppression pressure:

* ``deadline = time.monotonic() + timeout`` followed by comparisons is
  fine — comparisons drop taint (truthiness is not a result value);
* ``rng = random.Random(seed); rng.random()`` is fine — seeded
  generator objects are not sources;
* ``stamp = time.time(); key = sha256(f"{stamp}:{name}")`` fires at the
  ``sha256`` call, even though the clock and the hash are many
  statements (or one helper call) apart.

Interprocedural depth comes from the project call graph: each
project-internal function gets a cached summary — which taint labels
its return value carries, which parameters it forwards into a sink, and
which parameters pass through to its return — computed on demand from
its own CFG.  ``h = hashlib.sha256(); h.update(tainted)`` is caught by
tracking hash objects as a dataflow fact of their own.

Sources and sinks extend via ``[tool.repro.lint]`` ``taint-sources`` /
``taint-sinks`` (dotted call names).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..cfg import BranchTest, LoopHeader, build_cfg
from ..config import path_in
from ..dataflow import ForwardAnalysis, State, dotted_chain, solve_forward
from ..rules import LintRule
from ..visitor import ModuleContext
from .determinism import GLOBAL_RNG_ALLOWED, GLOBAL_RNG_PREFIXES

#: Ambient sources: resolved call name -> reason.
SOURCE_CALLS = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "process-relative clock",
    "time.monotonic_ns": "process-relative clock",
    "time.perf_counter": "process-relative clock",
    "time.perf_counter_ns": "process-relative clock",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.date.today": "wall clock",
    "uuid.uuid1": "randomness",
    "uuid.uuid4": "randomness",
    "os.urandom": "randomness",
    "os.getrandom": "randomness",
    "id": "allocation-order identity",
    "hash": "per-process hash salt",
}

#: Marker fact for hashlib digest objects (tracked so .update() sinks).
HASHOBJ = "#hashobj"
PARAM_PREFIX = "#param:"

_SUMMARY_NS = "det-taint"
_EMPTY_SUMMARY = {"returns": [], "sink_params": {}, "param_returns": []}


def _is_param_label(label: str) -> bool:
    return label.startswith(PARAM_PREFIX)


class _TaintMachine(ForwardAnalysis):
    """One function's taint transfer; optionally reports at sinks."""

    def __init__(
        self,
        rule: "DeterminismTaintRule",
        rel_path: str,
        module: str,
        aliases: Dict[str, str],
        current_class: Optional[str],
        project,
        sinks: FrozenSet[str],
        extra_sources: FrozenSet[str],
        reporter=None,
    ):
        self.rule = rule
        self.rel_path = rel_path
        self.module = module
        self.aliases = aliases
        self.current_class = current_class
        self.project = project
        self.sinks = sinks
        self.extra_sources = extra_sources
        self.reporter = reporter
        self.return_taint: Set[str] = set()

    # -- dataflow hooks ------------------------------------------------

    def transfer_element(self, element, state: State) -> State:
        state = dict(state)
        self._element(element, state)
        return state

    # -- statement dispatch --------------------------------------------

    def _element(self, element, state: State) -> None:
        if isinstance(element, BranchTest):
            self._eval(element.expr, state)
            return
        if isinstance(element, LoopHeader):
            taint = self._eval(element.node.iter, state)
            self._assign(element.node.target, taint, state)
            return
        stmt = element
        if isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value, state)
            for target in stmt.targets:
                self._assign(target, taint, state)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value, state),
                             state)
        elif isinstance(stmt, ast.AugAssign):
            old = self._read_target(stmt.target, state)
            taint = old | self._eval(stmt.value, state)
            self._assign(stmt.target, taint, state)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_taint |= self._eval(stmt.value, state)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._eval(item.context_expr, state)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint, state)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef, ast.Import, ast.ImportFrom)):
            return
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, state)

    def _assign(self, target: ast.expr, taint: FrozenSet[str],
                state: State) -> None:
        if isinstance(target, ast.Name):
            if taint:
                state[target.id] = frozenset(taint)
            else:
                state.pop(target.id, None)
        elif isinstance(target, ast.Attribute):
            chain = dotted_chain(target)
            if chain is not None:
                if taint:
                    state[chain] = frozenset(taint)
                else:
                    state.pop(chain, None)
        elif isinstance(target, ast.Subscript):
            chain = dotted_chain(target.value)
            if chain is not None and taint:
                state[chain] = state.get(chain, frozenset()) | taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, taint, state)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taint, state)

    def _read_target(self, target: ast.expr, state: State) -> FrozenSet[str]:
        if isinstance(target, ast.Name):
            return state.get(target.id, frozenset())
        if isinstance(target, ast.Attribute):
            chain = dotted_chain(target)
            if chain is not None:
                return state.get(chain, frozenset())
        if isinstance(target, ast.Subscript):
            chain = dotted_chain(target.value)
            if chain is not None:
                return state.get(chain, frozenset())
        return frozenset()

    # -- expression evaluation -----------------------------------------

    def _eval(self, expr: ast.expr, state: State) -> FrozenSet[str]:
        empty: FrozenSet[str] = frozenset()
        if isinstance(expr, ast.Constant):
            return empty
        if isinstance(expr, ast.Name):
            return state.get(expr.id, empty)
        if isinstance(expr, ast.Attribute):
            chain = dotted_chain(expr)
            if chain is None:
                return self._eval(expr.value, state)
            taint = empty
            parts = chain.split(".")
            for i in range(len(parts)):
                taint |= state.get(".".join(parts[: i + 1]), empty)
            return taint
        if isinstance(expr, ast.Call):
            return self._call(expr, state)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value, state)
        if isinstance(expr, ast.Compare):
            self._eval(expr.left, state)
            for comparator in expr.comparators:
                self._eval(comparator, state)
            return empty  # truthiness of a comparison is not a value flow
        if isinstance(expr, ast.Lambda):
            return empty
        if isinstance(expr, ast.NamedExpr):
            taint = self._eval(expr.value, state)
            self._assign(expr.target, taint, state)
            return taint
        if isinstance(expr, ast.Subscript):
            taint = self._eval(expr.value, state)
            self._eval(expr.slice, state)
            return taint
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            if expr.generators:
                return self._eval(expr.generators[0].iter, state)
            return empty
        taint = empty
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                taint |= self._eval(child, state)
        return taint

    def _call(self, node: ast.Call, state: State) -> FrozenSet[str]:
        empty: FrozenSet[str] = frozenset()
        func_taint = self._eval(node.func, state)
        arg_taints = [self._eval(arg, state) for arg in node.args]
        kw_taints = {
            kw.arg: self._eval(kw.value, state) for kw in node.keywords
        }
        resolved = self._resolve_dotted(node.func)

        if resolved is not None:
            label = self._source_label(resolved, node)
            if label is not None:
                return frozenset({label})
            sink = self._sink_name(resolved)
            if sink is not None:
                self._check_sink(node, sink + "()", arg_taints, kw_taints)
                if sink.startswith("hashlib."):
                    return frozenset({HASHOBJ})
                return empty
            if resolved.startswith("hashlib."):
                return frozenset({HASHOBJ})
            info = self._project_fn(node.func)
            if info is not None:
                return self._through_project_call(
                    node, info, arg_taints, kw_taints
                )

        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "update"
            and HASHOBJ in func_taint
        ):
            self._check_sink(
                node, "update() on a hashlib digest", arg_taints, kw_taints
            )
            return empty

        # Unknown/external call: taint flows through (str(), sorted(),
        # json.dumps(), method calls on tainted receivers...).
        taint = func_taint
        for arg_taint in arg_taints:
            taint |= arg_taint
        for kw_taint in kw_taints.values():
            taint |= kw_taint
        return taint

    # -- call classification -------------------------------------------

    def _resolve_dotted(self, func: ast.AST) -> Optional[str]:
        dotted = dotted_chain(func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        root = self.aliases.get(parts[0])
        if root is not None:
            return ".".join([root, *parts[1:]])
        return dotted

    def _source_label(self, resolved: str, node: ast.Call) -> Optional[str]:
        reason = SOURCE_CALLS.get(resolved)
        if reason is None and resolved in self.extra_sources:
            reason = "configured taint source"
        if reason is None and resolved.startswith(GLOBAL_RNG_PREFIXES):
            if resolved not in GLOBAL_RNG_ALLOWED:
                reason = "global RNG"
        if reason is None:
            return None
        return (
            f"{resolved}() [{reason}] at {self.rel_path}:{node.lineno}"
        )

    def _sink_name(self, resolved: str) -> Optional[str]:
        if resolved in self.sinks:
            return resolved
        # A module-local call to a sink defined in this module.
        local = f"{self.module}.{resolved}"
        if local in self.sinks:
            return local
        return None

    def _project_fn(self, func: ast.AST):
        if self.project is None:
            return None
        return self.project.resolve_call_target(
            self.module, func, aliases=self.aliases,
            current_class=self.current_class,
        )

    def _through_project_call(
        self, node, info, arg_taints, kw_taints
    ) -> FrozenSet[str]:
        summary = self.rule.summary_for(info, self.project)
        positional = list(arg_taints)
        # Fold keyword args onto parameter positions where possible.
        param_index = {name: i for i, name in enumerate(info.params)}
        indexed_kw = {
            param_index[name]: taint
            for name, taint in kw_taints.items()
            if name in param_index
        }
        offset = 1 if info.kind == "method" else 0

        for key, sink in sorted(summary.get("sink_params", {}).items()):
            idx = int(key) - offset
            taint = frozenset()
            if 0 <= idx < len(positional):
                taint = positional[idx]
            taint |= indexed_kw.get(int(key), frozenset())
            real = {t for t in taint if not _is_param_label(t)}
            if real:
                self._report(
                    node,
                    f"{info.qualname}(), which forwards it into {sink}",
                    real,
                )
        out: Set[str] = set(
            label for label in summary.get("returns", ())
            if not _is_param_label(label)
        )
        for key in summary.get("param_returns", ()):
            idx = int(key) - offset
            if 0 <= idx < len(positional):
                out |= positional[idx]
            out |= indexed_kw.get(int(key), frozenset())
        return frozenset(out)

    def _check_sink(self, node, sink_desc, arg_taints, kw_taints) -> None:
        tainted: Set[str] = set()
        for taint in arg_taints:
            tainted |= taint
        for taint in kw_taints.values():
            tainted |= taint
        tainted.discard(HASHOBJ)
        if tainted:
            self._report(node, sink_desc, tainted)

    def _report(self, node, sink_desc: str, labels: Set[str]) -> None:
        if self.reporter is not None:
            self.reporter(node, sink_desc, labels)


class DeterminismTaintRule(LintRule):
    rule_id = "determinism-taint"
    description = (
        "flow-sensitive determinism: clock/RNG/id()-derived values are "
        "tracked through assignments and project calls into "
        "fingerprint/cache/hash sinks"
    )
    requires_project = True

    def applies_to(self, rel_path: str, config) -> bool:
        return path_in(rel_path, config.determinism_paths)

    # ------------------------------------------------------------------

    def analyze_module(self, ctx: ModuleContext, project) -> None:
        module_info = None
        if project is not None:
            module_info = project.module_info(ctx.rel_path)
        if module_info is not None:
            module = module_info.module
            aliases = dict(module_info.aliases)
        else:
            from ..callgraph import module_name_for

            module = module_name_for(ctx.rel_path)
            aliases = dict(ctx.aliases)
        sinks = frozenset(ctx.config.taint_sinks)
        extra_sources = frozenset(ctx.config.taint_sources)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            current_class = None
            for ancestor in ctx.ancestors(node):
                if isinstance(ancestor, ast.ClassDef):
                    current_class = ancestor.name
                    break
                if isinstance(
                    ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    break
            self._check_function(
                node, ctx, module, aliases, current_class, project,
                sinks, extra_sources,
            )

    def _check_function(
        self, func, ctx, module, aliases, current_class, project,
        sinks, extra_sources,
    ) -> None:
        cfg = build_cfg(func)
        machine = _TaintMachine(
            self, ctx.rel_path, module, aliases, current_class,
            project, sinks, extra_sources,
        )
        in_states = solve_forward(cfg, machine)

        reported: Set[Tuple[int, int, str]] = set()

        def reporter(node, sink_desc: str, labels: Set[str]) -> None:
            key = (node.lineno, node.col_offset, sink_desc)
            if key in reported:
                return
            reported.add(key)
            sources = ", ".join(sorted(labels))
            self.report(
                ctx, node,
                f"nondeterministic value reaches {sink_desc}: derived "
                f"from {sources}; fingerprints, cache keys and schedules "
                "must be bit-identical across runs",
            )

        replay = _TaintMachine(
            self, ctx.rel_path, module, aliases, current_class,
            project, sinks, extra_sources, reporter=reporter,
        )
        for bid in sorted(in_states):
            replay.transfer(cfg.block(bid), in_states[bid])

    # -- interprocedural summaries -------------------------------------

    def summary_for(self, info, project) -> Dict[str, object]:
        """Taint summary of a project function, computed on demand.

        ``returns``: labels the return value carries from the function's
        own ambient sources; ``sink_params``: parameter index → sink it
        is forwarded into; ``param_returns``: parameter indices that
        flow through to the return value.  Cycles are broken by seeding
        an empty summary before computing (recursive flows resolve to
        the fixpoint of "nothing", an under-approximation).
        """
        if project is None:
            return dict(_EMPTY_SUMMARY)
        cached = project.get_summary(_SUMMARY_NS, info.qualname)
        if cached is not None:
            return cached
        project.set_summary(_SUMMARY_NS, info.qualname, dict(_EMPTY_SUMMARY))
        node = project.func_node(info)
        if node is None or isinstance(node, ast.Lambda):
            return dict(_EMPTY_SUMMARY)

        module_info = project.module_info(info.rel_path)
        aliases = dict(module_info.aliases) if module_info else {}
        current_class = None
        if info.kind == "method":
            current_class = info.qualname.rsplit(".", 2)[-2]

        sink_params: Dict[str, str] = {}

        def reporter(call_node, sink_desc: str, labels: Set[str]) -> None:
            for label in sorted(labels):
                if _is_param_label(label):
                    idx = label[len(PARAM_PREFIX):]
                    sink_params.setdefault(idx, sink_desc)

        # Config of the *linted* run is not in scope here; summaries use
        # the builtin sink/source tables plus whatever the project cache
        # already holds.  Param labels seed the initial state.
        machine = _TaintMachine(
            self, info.rel_path, info.module, aliases, current_class,
            project, self._summary_sinks, frozenset(), reporter=None,
        )

        params = list(info.params)

        def initial() -> Dict[str, FrozenSet[str]]:
            return {
                name: frozenset({f"{PARAM_PREFIX}{i}"})
                for i, name in enumerate(params)
            }

        machine.initial = initial  # type: ignore[method-assign]
        cfg = build_cfg(node)
        in_states = solve_forward(cfg, machine)
        replay = _TaintMachine(
            self, info.rel_path, info.module, aliases, current_class,
            project, self._summary_sinks, frozenset(), reporter=reporter,
        )
        replay.initial = initial  # type: ignore[method-assign]
        for bid in sorted(in_states):
            replay.transfer(cfg.block(bid), in_states[bid])
            replay.return_taint |= machine.return_taint

        returns = sorted(
            label for label in replay.return_taint | machine.return_taint
            if label != HASHOBJ and not _is_param_label(label)
        )
        param_returns = sorted(
            {
                label[len(PARAM_PREFIX):]
                for label in machine.return_taint
                if _is_param_label(label)
            },
            key=int,
        )
        summary = {
            "returns": returns,
            "sink_params": sink_params,
            "param_returns": param_returns,
        }
        project.set_summary(_SUMMARY_NS, info.qualname, summary)
        return summary

    #: Sinks used while summarising (config is per-run; summaries are
    #: cached project-wide, so they stick to the builtin table).
    _summary_sinks: FrozenSet[str] = frozenset({
        "hashlib.sha256", "hashlib.sha1", "hashlib.md5", "hashlib.new",
        "hashlib.blake2b", "hashlib.blake2s",
        "repro.scheduling.fingerprint.schedule_fingerprint",
        "repro.scheduling.fingerprint.fingerprint_map",
        "repro.api.cache.content_hash",
    })
