"""``spawn-picklability``: pool jobs must resolve to picklable callables.

Spawn-started workers (the only start method this repo allows — see
``pool-safety``) receive their work function by *pickle*, and pickle
serialises a callable as its qualified name plus module.  Anything that
cannot be re-imported by name on the worker side fails at submit time —
or worse, at the first ``result()`` call:

* functions defined inside another function (closures): the worker has
  no enclosing call frame to rebuild them from;
* names bound to ``lambda`` (module-level or local): the qualname is
  ``<lambda>``, which cannot be looked up;
* bound methods of objects instantiated from a *locally defined* class:
  the class itself cannot be imported by name.

This rule resolves the argument of ``pool.submit(fn, ...)`` /
``pool.map(fn, ...)`` / ``loop.run_in_executor(pool, fn, ...)`` through
reaching definitions (what is ``fn`` bound to *on the paths reaching
this call*?) and, when the name is imported or module-level, through
the project call graph — flagging the offending *definition* site in
the message.  ``functools.partial(fn, ...)`` is unwrapped one level.

Pool receivers are recognised the same flow-aware way: a name whose
reaching definitions include a ``ProcessPoolExecutor``/``spawn_pool``
call (by assignment or ``with ... as``), or a ``self.X`` attribute the
enclosing class assigns one to.  Thread pools are exempt — nothing
pickles across a thread — and unresolvable names get the benefit of
the doubt.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set, Tuple

from ..cfg import build_cfg
from ..dataflow import (
    Definition,
    ReachingDefs,
    dotted_chain,
    iter_events,
    solve_forward,
)
from ..rules import LintRule
from ..visitor import ModuleContext
from .pool_safety import POOL_CONSTRUCTORS, SPAWN_HELPERS

_SUBMIT_METHODS = {"submit", "map"}


class SpawnPicklabilityRule(LintRule):
    rule_id = "spawn-picklability"
    description = (
        "work submitted to a process pool must resolve to a "
        "module-level picklable callable (no closures, lambdas, or "
        "bound methods of local objects)"
    )
    requires_project = True

    # ------------------------------------------------------------------

    def analyze_module(self, ctx: ModuleContext, project) -> None:
        self_pools = _class_self_pools(ctx)
        module_info = project.module_info(ctx.rel_path) if project else None
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(
                    node, ctx, project, module_info, self_pools
                )

    def _check_function(
        self, func, ctx, project, module_info, self_pools
    ) -> None:
        current_class = None
        for ancestor in ctx.ancestors(func):
            if isinstance(ancestor, ast.ClassDef):
                current_class = ancestor.name
                break
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        pool_attrs = self_pools.get(current_class, set())
        local_classes = {
            n.name for n in ast.walk(func)
            if isinstance(n, ast.ClassDef)
        }

        cfg = build_cfg(func)
        rd = ReachingDefs(func)
        in_states = solve_forward(cfg, rd)

        reported: Set[Tuple[int, int]] = set()
        for bid in sorted(in_states):
            state = in_states[bid]
            for element in cfg.block(bid).elements:
                for event in iter_events(element):
                    if event.kind != "call":
                        continue
                    call = event.node
                    job = self._submitted_job(
                        call, ctx, state, pool_attrs
                    )
                    if job is None:
                        continue
                    key = (call.lineno, call.col_offset)
                    if key in reported:
                        continue
                    if self._flag_job(
                        job, call, ctx, state, project, module_info,
                        local_classes, func,
                    ):
                        reported.add(key)
                state = rd.transfer_element(element, state)

    # -- receiver recognition ------------------------------------------

    def _submitted_job(
        self, call: ast.Call, ctx, state, pool_attrs
    ) -> Optional[ast.expr]:
        """The work-function expression, when *call* submits to a
        process pool; None otherwise."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr in _SUBMIT_METHODS:
            if not call.args:
                return None
            if self._is_pool(func.value, ctx, state, pool_attrs):
                return call.args[0]
            return None
        if func.attr == "run_in_executor":
            if len(call.args) < 2:
                return None
            if self._is_pool(call.args[0], ctx, state, pool_attrs):
                return call.args[1]
        return None

    def _is_pool(self, expr: ast.expr, ctx, state, pool_attrs) -> bool:
        if isinstance(expr, ast.Call):
            return self._is_pool_ctor(expr, ctx)
        if isinstance(expr, ast.Name):
            defs = state.get(expr.id, frozenset())
            return any(
                isinstance(d.value, ast.Call)
                and self._is_pool_ctor(d.value, ctx)
                for d in defs
            )
        chain = dotted_chain(expr)
        if chain is not None and chain.startswith("self."):
            return chain[len("self."):] in pool_attrs
        return False

    @staticmethod
    def _is_pool_ctor(call: ast.Call, ctx) -> bool:
        name = ctx.resolve(call.func)
        return name in POOL_CONSTRUCTORS or name in SPAWN_HELPERS

    # -- job classification --------------------------------------------

    def _flag_job(
        self, job, call, ctx, state, project, module_info,
        local_classes, func,
    ) -> bool:
        """Report and return True when *job* cannot pickle by name."""
        if isinstance(job, ast.Lambda):
            self.report(
                ctx, call,
                f"the lambda defined at line {job.lineno} is submitted to "
                "a spawn pool; lambdas pickle by qualname '<lambda>', "
                "which the worker cannot re-import — define a "
                "module-level function",
            )
            return True

        if isinstance(job, ast.Call):
            resolved = ctx.resolve(job.func)
            if resolved in {"functools.partial", "partial"} and job.args:
                return self._flag_job(
                    job.args[0], call, ctx, state, project, module_info,
                    local_classes, func,
                )
            return False

        if isinstance(job, ast.Name):
            return self._flag_name(
                job, call, ctx, state, project, module_info
            )

        chain = dotted_chain(job)
        if chain is None or "." not in chain:
            return False
        root, rest = chain.split(".", 1)
        if root == "self":
            return False  # bound method of self: instance pickles if the
            # class is importable, which a module-level class is
        root_defs = state.get(root, frozenset())
        for definition in sorted(root_defs, key=Definition.sort_key):
            value = definition.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in local_classes
            ):
                self.report(
                    ctx, call,
                    f"{chain} is a bound method of an instance of "
                    f"{value.func.id!r}, a class defined inside "
                    f"{func.name!r} (line {definition.lineno}); local "
                    "classes cannot be re-imported by the spawn worker — "
                    "hoist the class to module level",
                )
                return True
        if project is not None and module_info is not None:
            info = project.resolve_name(
                module_info.module, chain, aliases=module_info.aliases
            )
            if info is not None and info.kind == "lambda":
                self.report(
                    ctx, call,
                    f"{chain} resolves to a lambda bound at "
                    f"{info.rel_path}:{info.lineno}; its qualname is "
                    "'<lambda>', which the spawn worker cannot "
                    "re-import — make it a def",
                )
                return True
        return False

    def _flag_name(
        self, job: ast.Name, call, ctx, state, project, module_info
    ) -> bool:
        defs = state.get(job.id, frozenset())
        for definition in sorted(defs, key=Definition.sort_key):
            if definition.kind == "def":
                self.report(
                    ctx, call,
                    f"{job.id!r} is defined at line {definition.lineno} "
                    "inside the enclosing function; nested functions "
                    "cannot be pickled to a spawn worker — hoist the def "
                    "to module level",
                )
                return True
            if definition.kind == "assign" and isinstance(
                definition.value, ast.Lambda
            ):
                self.report(
                    ctx, call,
                    f"{job.id!r} is bound to a lambda at line "
                    f"{definition.lineno}; lambdas pickle by qualname "
                    "'<lambda>', which the worker cannot re-import — "
                    "define a module-level function",
                )
                return True
        if defs:
            # Locally bound to something else (param, import, loop var…):
            # imports resolve below; the rest get the benefit of the doubt.
            if not all(d.kind == "import" for d in defs):
                return False
        if project is not None and module_info is not None:
            info = project.resolve_name(
                module_info.module, job.id, aliases=module_info.aliases
            )
            if info is not None and info.kind == "lambda":
                self.report(
                    ctx, call,
                    f"{job.id!r} resolves to a lambda bound at "
                    f"{info.rel_path}:{info.lineno}; its qualname is "
                    "'<lambda>', which the spawn worker cannot "
                    "re-import — make it a def",
                )
                return True
        return False


def _class_self_pools(ctx: ModuleContext) -> Dict[str, Set[str]]:
    """Class name → attribute names it binds to process-pool calls
    (``self.pool = spawn_pool(...)`` anywhere in the class body)."""
    result: Dict[str, Set[str]] = {}
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        attrs: Set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            name = ctx.resolve(node.value.func)
            if name not in POOL_CONSTRUCTORS and name not in SPAWN_HELPERS:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
        if attrs:
            result[cls.name] = attrs
    return result
