"""``exception-discipline``: no silent swallows, typed errors at the API.

Two contracts, both earned by past bugs:

* **No broad catch without re-raise.**  ``except:`` is always a
  finding.  ``except Exception`` / ``except BaseException`` (alone or
  in a tuple) is a finding *unless* the handler contains a ``raise`` —
  catch-log-reraise and catch-cleanup-reraise are fine, catch-and-eat
  is not.  A handler whose body is only ``pass``/``...`` gets the
  sharper "silently swallows" message: that shape hid the cache-read
  corruption this PR fixes (``api/cache.py``).  Where a broad catch
  without re-raise is genuinely correct (the daemon's job-isolation
  boundary), say so with an inline
  ``# repro: lint-ignore[exception-discipline]: <why>``.

* **Typed errors at the API boundary.**  Inside the configured
  ``api_paths``, ``raise ValueError(...)``-style builtin exceptions are
  findings: callers of :mod:`repro.api` and the service dispatch on
  :class:`repro.errors.ReproError` subclasses (422 vs 500 depends on
  it), and a builtin leaking through turns a user error into a daemon
  bug.  ``NotImplementedError`` and ``AssertionError`` stay allowed
  (abstract methods, invariant checks), as do bare ``raise`` and
  re-raising a caught variable.
"""

from __future__ import annotations

import ast

from ..config import path_in
from ..rules import LintRule
from ..visitor import ModuleContext

BROAD_TYPES = {"Exception", "BaseException"}

#: Builtin exception types that must not cross the API boundary.
BUILTIN_RAISES = {
    "Exception", "BaseException", "ValueError", "TypeError",
    "RuntimeError", "KeyError", "IndexError", "OSError", "IOError",
    "AttributeError", "LookupError", "ArithmeticError", "EOFError",
}

#: Builtins that remain fine everywhere.
ALLOWED_RAISES = {"NotImplementedError", "AssertionError", "StopIteration",
                  "StopAsyncIteration", "KeyboardInterrupt", "SystemExit"}


class ExceptionDisciplineRule(LintRule):
    rule_id = "exception-discipline"
    description = (
        "no bare/broad except without re-raise; API-boundary modules "
        "raise repro.errors types, not builtins"
    )

    # -- broad handlers ------------------------------------------------

    def visit_ExceptHandler(
        self, node: ast.ExceptHandler, ctx: ModuleContext
    ) -> None:
        if node.type is None:
            self.report(
                ctx, node,
                "bare `except:` catches SystemExit/KeyboardInterrupt too; "
                "name the exception type (and re-raise what you can't "
                "handle)",
            )
            return
        if not self._is_broad(node.type, ctx):
            return
        if self._swallows_silently(node):
            self.report(
                ctx, node,
                "broad except that silently swallows the error (body is "
                "pass/...): failures vanish without a counter, log line or "
                "re-raise",
            )
            return
        if not self._reraises(node):
            self.report(
                ctx, node,
                "`except Exception` without a re-raise hides real failures; "
                "narrow the type, or re-raise after cleanup — if this "
                "boundary truly must absorb everything, annotate it with "
                "`# repro: lint-ignore[exception-discipline]: <why>`",
            )

    # -- API-boundary raises -------------------------------------------

    def visit_Raise(self, node: ast.Raise, ctx: ModuleContext) -> None:
        if not path_in(ctx.rel_path, ctx.config.api_paths):
            return
        exc = node.exc
        if exc is None:
            return  # bare `raise` re-raises: always fine
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = ctx.resolve(exc)
        if name in ALLOWED_RAISES:
            return
        if name in BUILTIN_RAISES:
            self.report(
                ctx, node,
                f"raise {name} at the API boundary: callers dispatch on "
                "repro.errors.ReproError subclasses (the service maps them "
                "to 422); raise a typed error instead",
            )

    # ------------------------------------------------------------------

    @staticmethod
    def _is_broad(type_node: ast.AST, ctx: ModuleContext) -> bool:
        names = []
        if isinstance(type_node, ast.Tuple):
            names = [ctx.resolve(elt) for elt in type_node.elts]
        else:
            names = [ctx.resolve(type_node)]
        return any(name in BROAD_TYPES for name in names)

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(sub, ast.Raise) for sub in ast.walk(handler))

    @staticmethod
    def _swallows_silently(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or `...`
            return False
        return True
