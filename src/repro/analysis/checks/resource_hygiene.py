"""``resource-hygiene``: every acquired handle has a visible release.

File descriptors, sockets, worker pools and child processes leak
quietly under pytest and loudly under the daemon's week-long uptime.
For a fixed set of resource constructors (``open``, sockets, executors,
``subprocess.Popen``, tempfiles) this rule demands that the acquisition
site shows its release:

* used as a ``with`` context manager → fine;
* stored on an object (``self.pool = ...``) or container → fine, the
  lifetime escapes the function and teardown owns it;
* bound to a local name → the enclosing function must *somewhere*
  release it: a later ``with name``-statement, a
  ``.close()/.shutdown()/.terminate()/.kill()/.wait()`` call on the
  name, or handing the object onward (``return``/``yield``, passing the
  name to another call) which transfers ownership to the caller;
* anything else — ``json.load(open(p))``, a bare expression — is an
  immediate finding: nothing holds the handle, so nothing can close it.

The release scan is flow-insensitive on purpose: a ``.close()`` only on
the happy path still counts.  Demanding try/finally placement would
drown the signal in style findings — ``with`` is the recommended fix in
every message, and the fixture corpus pins the intended shapes.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from ..rules import LintRule
from ..visitor import ModuleContext, attr_name

RESOURCE_CONSTRUCTORS = {
    "open": "file handle",
    "os.fdopen": "file handle",
    "io.open": "file handle",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "concurrent.futures.ProcessPoolExecutor": "process pool",
    "concurrent.futures.ThreadPoolExecutor": "thread pool",
    "ProcessPoolExecutor": "process pool",
    "ThreadPoolExecutor": "thread pool",
    "repro.pools.spawn_pool": "process pool",
    "pools.spawn_pool": "process pool",
    "spawn_pool": "process pool",
    "subprocess.Popen": "child process",
    "tempfile.NamedTemporaryFile": "temp file",
    "tempfile.TemporaryFile": "temp file",
}

RELEASE_METHODS = {
    "close", "shutdown", "terminate", "kill", "wait", "cleanup",
    "communicate", "__exit__",
}


class ResourceHygieneRule(LintRule):
    rule_id = "resource-hygiene"
    description = (
        "opened files/sockets/pools/processes must be closed: use a "
        "with-statement, store on an object, or close on every exit"
    )

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        name = ctx.resolve(node.func)
        kind = RESOURCE_CONSTRUCTORS.get(name)
        if kind is None:
            return
        parent = ctx.parent(node)
        if isinstance(parent, ast.withitem):
            return
        if isinstance(parent, ast.Await):
            parent = ctx.parent(parent)
        binding = self._binding_name(node, parent)
        if binding is _STORED:
            return
        if binding is None:
            self.report(
                ctx, node,
                f"{name}() acquires a {kind} that nothing holds — it can "
                "never be closed; use `with {...} as ...:` or bind it and "
                "close it",
            )
            return
        if not self._released(binding, node, ctx):
            self.report(
                ctx, node,
                f"{kind} {binding!r} is never closed in this function; wrap "
                f"the acquisition in a with-statement or call "
                f"{binding}.close() on every exit path",
            )

    # ------------------------------------------------------------------

    def _binding_name(
        self, node: ast.Call, parent: Optional[ast.AST]
    ) -> Optional[str]:
        """Local name bound to the resource, ``_STORED``, or ``None``.

        ``None`` means the handle is immediately orphaned (call argument,
        attribute chain, bare expression).
        """
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return _STORED
                if isinstance(target, ast.Name):
                    return target.id
                if isinstance(target, (ast.Tuple, ast.List)):
                    return _STORED  # unpacking: lifetime is unclear, allow
            return _STORED
        if isinstance(parent, ast.NamedExpr):
            target = parent.target
            if isinstance(target, ast.Name):
                return target.id
            return _STORED
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return _STORED  # ownership transfers to the caller
        if isinstance(parent, ast.Starred):
            return _STORED
        return None

    def _released(
        self, name: str, node: ast.Call, ctx: ModuleContext
    ) -> bool:
        frame = ctx.current_function
        scope: ast.AST = frame.node if frame is not None else ctx.tree
        passed_on: Set[int] = {id(node)}
        for sub in ast.walk(scope):
            # with name: / with name as f:
            if isinstance(sub, ast.withitem):
                expr = sub.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
                if isinstance(expr, ast.Call):
                    # contextlib.closing(name) and friends
                    if any(
                        isinstance(arg, ast.Name) and arg.id == name
                        for arg in expr.args
                    ):
                        return True
            if isinstance(sub, ast.Call):
                # name.close() / name.shutdown() / ...
                if (
                    isinstance(sub.func, ast.Attribute)
                    and attr_name(sub.func) in RELEASE_METHODS
                    and self._rooted_at(sub.func.value, name)
                ):
                    return True
                # name handed to another callable (register, atexit, list
                # of handles, weakref.finalize...): ownership moves on.
                if sub is not node and any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in list(sub.args)
                    + [kw.value for kw in sub.keywords]
                ):
                    if id(sub) not in passed_on:
                        return True
            # return name / yield name: caller takes over
            if isinstance(sub, (ast.Return, ast.Yield)):
                value = sub.value
                if isinstance(value, ast.Name) and value.id == name:
                    return True
                if isinstance(value, (ast.Tuple, ast.List)) and any(
                    isinstance(elt, ast.Name) and elt.id == name
                    for elt in value.elts
                ):
                    return True
        return False

    @staticmethod
    def _rooted_at(node: ast.AST, name: str) -> bool:
        """True when the attribute chain bottoms out at Name(name)."""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return isinstance(node, ast.Name) and node.id == name


#: Sentinel: resource stored beyond the function; lifetime is managed
#: elsewhere (teardown methods, caller).  Distinct from None (orphaned).
_STORED = "<stored>"
