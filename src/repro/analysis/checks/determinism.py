"""``determinism``: no ambient nondeterminism on the bit-identity paths.

Schedules, fingerprints and cache hashes are contractually bit-identical
across runs, hosts and process counts (the 343-case golden-fingerprint
suite pins this).  Inside the configured determinism paths this rule
bans every construct whose value varies run to run:

* wall clocks (``time.time``, ``datetime.now`` and friends) —
  timestamps must never reach a result.  Monotonic/perf-counter clocks
  are *not* syntactically banned: deadline arithmetic is legitimate,
  and the flow-sensitive ``determinism-taint`` rule flags the flows
  that actually reach a fingerprint/cache/schedule sink;
* the *global* RNGs (``random.random``, ``numpy.random.rand`` …); only
  explicitly seeded generator objects (``random.Random(seed)``,
  ``numpy.random.default_rng(seed)``) are deterministic;
* ``uuid``/``os.urandom``/``secrets`` — randomness by design;
* builtin ``hash()`` — salted per process for str/bytes
  (PYTHONHASHSEED), so hash-derived orderings differ between workers;
* builtin ``id()`` — including as a ``key=`` — identity ordering is
  allocation order;
* iterating a set display / ``set()`` call / set comprehension directly
  in a ``for`` or comprehension: set iteration order is hash order.
  (Set-typed *variables* are invisible to this check — wrap reads in
  ``sorted()`` at the producer.)

Known-good escapes: ``sorted(...)`` around the set, seeded generator
objects, and doing the timing one layer up (pass wall-clock measurements
in; never sample them on a deterministic path).
"""

from __future__ import annotations

import ast

from ..config import path_in
from ..rules import LintRule
from ..visitor import ModuleContext

#: Exact resolved call names that are nondeterministic per call.
#: Monotonic/perf-counter clocks are *not* here: their dominant use on
#: these paths is deadline arithmetic, whose comparisons never reach a
#: result value — the flow-sensitive ``determinism-taint`` rule flags
#: the flows that do, so the syntactic ban would only breed
#: suppressions.  Wall clocks stay banned outright: a timestamp has no
#: legitimate use on a bit-identity path.
BANNED_CALLS = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.date.today": "wall clock",
    "uuid.uuid1": "randomness",
    "uuid.uuid4": "randomness",
    "os.urandom": "randomness",
    "os.getrandom": "randomness",
    "hash": "per-process hash salt (PYTHONHASHSEED)",
    "id": "allocation-order identity",
}

#: Module-level global-RNG entry points (seeded *objects* are fine).
GLOBAL_RNG_PREFIXES = ("random.", "numpy.random.", "secrets.")
GLOBAL_RNG_ALLOWED = {
    "random.Random",
    "random.SystemRandom",  # still banned below via secrets-style message
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}

SORT_CALLS = {"sorted", "min", "max"}


class DeterminismRule(LintRule):
    rule_id = "determinism"
    description = (
        "no clocks, global RNGs, hash()/id() ordering or set-iteration "
        "order on paths that feed fingerprints, cache hashes or schedules"
    )

    def applies_to(self, rel_path: str, config) -> bool:
        return path_in(rel_path, config.determinism_paths)

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        name = ctx.resolve(node.func)
        if name is None:
            return
        reason = BANNED_CALLS.get(name)
        if reason is not None:
            self.report(
                ctx, node,
                f"{name}() is nondeterministic ({reason}); its value must "
                "never feed a schedule, fingerprint or cache hash",
            )
            return
        if name.startswith(GLOBAL_RNG_PREFIXES) and name not in GLOBAL_RNG_ALLOWED:
            self.report(
                ctx, node,
                f"{name}() draws from a shared/global entropy source; use an "
                "explicitly seeded generator object "
                "(numpy.random.default_rng(seed) / random.Random(seed))",
            )
            return
        if name in SORT_CALLS:
            for keyword in node.keywords:
                if (
                    keyword.arg == "key"
                    and isinstance(keyword.value, ast.Name)
                    and ctx.resolve(keyword.value) == "id"
                ):
                    self.report(
                        ctx, node,
                        f"{name}(..., key=id) orders by allocation address; "
                        "order differs run to run",
                    )

    # -- set iteration -------------------------------------------------

    def visit_For(self, node: ast.For, ctx: ModuleContext) -> None:
        self._check_iter(node.iter, ctx)

    def visit_AsyncFor(self, node: ast.AsyncFor, ctx: ModuleContext) -> None:
        self._check_iter(node.iter, ctx)

    def visit_comprehension(
        self, node: ast.comprehension, ctx: ModuleContext
    ) -> None:
        self._check_iter(node.iter, ctx)

    def _check_iter(self, iterable: ast.AST, ctx: ModuleContext) -> None:
        if self._is_set_expr(iterable, ctx):
            self.report(
                ctx, iterable,
                "iterating a set visits elements in hash order, which varies "
                "per process; wrap in sorted(...) before the order can leak "
                "into a result",
            )

    @staticmethod
    def _is_set_expr(node: ast.AST, ctx: ModuleContext) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return ctx.resolve(node.func) in {"set", "frozenset"}
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # set algebra: a | {..}, {..} - b, ...
            return DeterminismRule._is_set_expr(
                node.left, ctx
            ) or DeterminismRule._is_set_expr(node.right, ctx)
        return False
