"""``async-blocking``: no synchronous waits on the event loop.

The daemon (:mod:`repro.service.daemon`) is a single-threaded asyncio
process; one blocking call in a coroutine stalls every connection,
event stream and drain watcher at once.  Inside ``async def`` bodies
this rule flags:

* ``time.sleep`` (use ``asyncio.sleep``);
* blocking process/system calls (``subprocess.run``/``Popen``,
  ``os.system``, ``select.select``);
* blocking network clients (``socket.create_connection``,
  ``urllib.request.urlopen``, the ``requests`` API, name resolution);
* file I/O: builtin ``open`` and the ``pathlib`` read/write shorthands
  (``.write_text``/``.read_bytes`` …) — hand these to a worker thread
  via ``loop.run_in_executor``;
* ``<pool>.submit(...).result()`` — awaiting a concurrent future by
  blocking; use ``loop.run_in_executor`` and ``await`` it.

Only the *innermost* function frame counts: a sync helper defined
inside a coroutine runs wherever it is called from, which a static
check cannot see.  Calls that block behind an opaque sync method (for
example a cache object doing disk I/O) are equally invisible — the rule
catches the direct idioms, reviews catch the indirection.
"""

from __future__ import annotations

import ast

from ..rules import LintRule
from ..visitor import ModuleContext, attr_name

BANNED_CALLS = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "subprocess.run": "blocks until the child exits",
    "subprocess.call": "blocks until the child exits",
    "subprocess.check_call": "blocks until the child exits",
    "subprocess.check_output": "blocks until the child exits",
    "subprocess.getoutput": "blocks until the child exits",
    "subprocess.Popen": "use `asyncio.create_subprocess_exec`",
    "os.system": "blocks until the child exits",
    "os.waitpid": "blocks until the child exits",
    "select.select": "use the event loop's own readiness callbacks",
    "socket.create_connection": "blocking connect; use `asyncio.open_connection`",
    "socket.getaddrinfo": "blocking DNS; use `loop.getaddrinfo`",
    "socket.gethostbyname": "blocking DNS; use `loop.getaddrinfo`",
    "urllib.request.urlopen": "blocking HTTP client",
    "input": "blocks on stdin",
    "open": "file I/O on the loop; offload via `loop.run_in_executor`",
}

BANNED_PREFIXES = {
    "requests.": "blocking HTTP client",
}

#: pathlib one-shot I/O helpers: method name alone identifies them.
PATH_IO_METHODS = {
    "write_text", "read_text", "write_bytes", "read_bytes",
}


class AsyncBlockingRule(LintRule):
    rule_id = "async-blocking"
    description = (
        "no time.sleep, blocking I/O, blocking clients or "
        ".submit(...).result() inside async def bodies"
    )

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        if not ctx.in_async:
            return
        name = ctx.resolve(node.func)
        if name in BANNED_CALLS:
            self.report(
                ctx, node,
                f"{name}() blocks the event loop ({BANNED_CALLS[name]})",
            )
            return
        if name is not None:
            for prefix, reason in BANNED_PREFIXES.items():
                if name.startswith(prefix):
                    self.report(
                        ctx, node,
                        f"{name}() blocks the event loop ({reason})",
                    )
                    return
        method = attr_name(node.func)
        if method in PATH_IO_METHODS:
            self.report(
                ctx, node,
                f".{method}() is synchronous file I/O on the event loop; "
                "offload it via `await loop.run_in_executor(None, ...)`",
            )
            return
        if method == "result" and self._chains_submit(node.func):
            self.report(
                ctx, node,
                ".submit(...).result() blocks the loop until the worker "
                "finishes; use `await loop.run_in_executor(...)` instead",
            )

    @staticmethod
    def _chains_submit(func: ast.AST) -> bool:
        """True for ``<anything>.submit(...).result`` chains."""
        base = func.value if isinstance(func, ast.Attribute) else None
        while base is not None:
            if (
                isinstance(base, ast.Call)
                and attr_name(base.func) == "submit"
            ):
                return True
            if isinstance(base, ast.Call):
                base = base.func
            elif isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            else:
                return False
        return False
