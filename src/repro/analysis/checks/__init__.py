"""Builtin lint rules.

Importing this package registers every shipped rule in
:data:`repro.analysis.rules.RULE_REGISTRY` (the same import-time
registration idiom the pass registry uses).  Each module holds one rule;
see the module docstrings for the precise semantics and the known
blind spots of each check.
"""

from __future__ import annotations

from ..rules import RULE_REGISTRY, register_rule
from .determinism import DeterminismRule
from .async_blocking import AsyncBlockingRule
from .pool_safety import PoolSafetyRule
from .cache_discipline import CacheDisciplineRule
from .exception_discipline import ExceptionDisciplineRule
from .resource_hygiene import ResourceHygieneRule
from .async_atomicity import AsyncAtomicityRule
from .determinism_taint import DeterminismTaintRule
from .spawn_picklability import SpawnPicklabilityRule

for _builtin in (
    DeterminismRule(),
    AsyncBlockingRule(),
    PoolSafetyRule(),
    CacheDisciplineRule(),
    ExceptionDisciplineRule(),
    ResourceHygieneRule(),
    AsyncAtomicityRule(),
    DeterminismTaintRule(),
    SpawnPicklabilityRule(),
):
    if _builtin.rule_id not in RULE_REGISTRY:
        register_rule(_builtin)

__all__ = [
    "DeterminismRule",
    "AsyncBlockingRule",
    "PoolSafetyRule",
    "CacheDisciplineRule",
    "ExceptionDisciplineRule",
    "ResourceHygieneRule",
    "AsyncAtomicityRule",
    "DeterminismTaintRule",
    "SpawnPicklabilityRule",
]
