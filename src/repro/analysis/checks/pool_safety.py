"""``pool-safety``: process pools must spawn, and their jobs must pickle.

PR 6 learned the hard way that fork-starting pool workers from a live
multi-threaded (or asyncio) parent is a deadlock lottery: a forked
worker can inherit a held call-queue lock and wedge the pool.  The
``concurrent.futures`` default start method *is* fork on Linux, so a
``ProcessPoolExecutor(...)`` without an explicit ``mp_context`` is a
latent deadlock waiting for its call site to gain a thread.  This rule
flags:

* ``ProcessPoolExecutor(...)`` with no ``mp_context=`` (use
  :func:`repro.pools.spawn_pool`, which pins the spawn context);
* any explicit ``get_context("fork")`` / ``get_context("forkserver")``
  and bare ``multiprocessing.Pool(...)`` (same fork default);
* submitting un-picklable work: a ``lambda`` or a function *defined
  inside the enclosing function* handed to ``submit``/``map`` of a
  known process pool (a name bound from a pool constructor by
  assignment or ``with ... as``).  Spawn workers re-import the job by
  qualified name; only module-level callables survive the trip.
  Thread pools are exempt — nothing pickles across a thread.

Mutable module globals captured by workers are the same bug class but
need whole-program analysis; keep worker inputs explicit (arguments,
initializer payloads) and the spawn context makes the capture visible
immediately — a spawn worker simply does not see parent mutations.
"""

from __future__ import annotations

import ast
from typing import Set

from ..rules import LintRule
from ..visitor import ModuleContext, attr_name

POOL_CONSTRUCTORS = {
    "concurrent.futures.ProcessPoolExecutor",
    "ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
}

SPAWN_HELPERS = {
    "repro.pools.spawn_pool",
    "pools.spawn_pool",
    "spawn_pool",
}


class PoolSafetyRule(LintRule):
    rule_id = "pool-safety"
    description = (
        "process pools need an explicit spawn context and "
        "module-level (picklable) work functions"
    )

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        name = ctx.resolve(node.func)
        if name in POOL_CONSTRUCTORS:
            self._check_constructor(node, ctx)
            return
        if name is not None and name.endswith(".get_context"):
            self._check_get_context(node, ctx)
            return
        if name in {"multiprocessing.Pool", "multiprocessing.pool.Pool"}:
            self.report(
                ctx, node,
                "multiprocessing.Pool() uses the platform default start "
                "method (fork on Linux); build it from "
                "get_context('spawn') instead",
            )
            return
        if attr_name(node.func) in {"submit", "map"}:
            self._check_job(node, ctx)

    def visit_Assign(self, node: ast.Assign, ctx: ModuleContext) -> None:
        """Track names bound to process-pool constructors."""
        if not self._is_pool_ctor(node.value, ctx):
            return
        pools: Set[str] = ctx.scratch("pool-safety:names", set)
        for target in node.targets:
            if isinstance(target, ast.Name):
                pools.add(target.id)

    def visit_withitem(self, node: ast.withitem, ctx: ModuleContext) -> None:
        """Track ``with ProcessPoolExecutor(...) as pool:`` bindings."""
        if not self._is_pool_ctor(node.context_expr, ctx):
            return
        if isinstance(node.optional_vars, ast.Name):
            pools: Set[str] = ctx.scratch("pool-safety:names", set)
            pools.add(node.optional_vars.id)

    @staticmethod
    def _is_pool_ctor(node: ast.AST, ctx: ModuleContext) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = ctx.resolve(node.func)
        return name in POOL_CONSTRUCTORS or name in SPAWN_HELPERS

    # ------------------------------------------------------------------

    def _check_constructor(self, node: ast.Call, ctx: ModuleContext) -> None:
        for keyword in node.keywords:
            if keyword.arg == "mp_context":
                return  # context is explicit; fork-ness caught at get_context
            if keyword.arg is None:
                return  # **kwargs: can't see inside; give it the benefit
        self.report(
            ctx, node,
            "ProcessPoolExecutor without mp_context= inherits the platform "
            "start method (fork on Linux), which deadlocks under threaded "
            "parents; use repro.pools.spawn_pool(...) or pass "
            "mp_context=multiprocessing.get_context('spawn')",
        )

    def _check_get_context(self, node: ast.Call, ctx: ModuleContext) -> None:
        for arg in node.args[:1]:
            if isinstance(arg, ast.Constant) and arg.value in (
                "fork", "forkserver"
            ):
                self.report(
                    ctx, node,
                    f"get_context({arg.value!r}) forks the parent process; "
                    "forked workers can inherit held locks from a threaded "
                    "parent — use the 'spawn' context",
                )

    def _check_job(self, node: ast.Call, ctx: ModuleContext) -> None:
        receiver = node.func.value if isinstance(node.func, ast.Attribute) else None
        if not self._looks_like_pool(receiver, ctx):
            return
        if not node.args:
            return
        job = node.args[0]
        if isinstance(job, ast.Lambda):
            self.report(
                ctx, node,
                "lambdas do not pickle; pool work functions must be "
                "module-level callables",
            )
            return
        if isinstance(job, ast.Name) and job.id in self._nested_defs(ctx):
            self.report(
                ctx, node,
                f"{job.id!r} is defined inside a function and will not "
                "pickle across the process boundary; hoist it to module "
                "level",
            )

    @staticmethod
    def _looks_like_pool(receiver, ctx: ModuleContext) -> bool:
        """Only names *known* to hold process pools (assignment/with
        tracking) qualify: the pickling constraint is specific to the
        process boundary, and a name heuristic would misfire on
        ThreadPoolExecutor, where lambdas are fine."""
        pools: Set[str] = ctx.scratch("pool-safety:names", set)
        return isinstance(receiver, ast.Name) and receiver.id in pools

    @staticmethod
    def _nested_defs(ctx: ModuleContext) -> Set[str]:
        """Names of functions defined inside the current function."""
        frame = ctx.current_function
        if frame is None:
            return set()
        nested: Set[str] = set()
        for child in ast.walk(frame.node):
            if (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not frame.node
            ):
                nested.add(child.name)
        return nested
