"""``cache-discipline``: mutate the source of truth → invalidate the cache.

PR 3 hung derived-state caches off the hot data structures (DDG
adjacency snapshots, MRT lane occupancy tuples) and PR 4's fuzzer found
the bugs that happen when a mutator forgets to invalidate.  The
contract is mechanical, so this rule checks it mechanically: for every
:class:`~repro.analysis.config.CacheGuard` matching the file, any
method of a guarded class that *mutates* a guarded attribute must also
*invalidate* — directly (assign/``del``/``pop``/``clear`` a cache
attribute, touch a ``*version*`` attribute, call a named invalidator)
or transitively through another method of the same class.

Mutation detection is attribute-name based on *any* receiver
(``self._ops[x] = op``, ``ddg._out.setdefault(...)``,
``lane.rows[row] = ...`` all count), covering classmethods and local
aliases.  Invalidation propagates through the class-internal call graph
to a fixed point, so ``remove_operation → _remove_edge →
_touch_endpoints`` satisfies the contract without annotations.
``__init__``/``__post_init__`` are exempt — construction *establishes*
state, it does not invalidate it.  The blind spot is mutation through
an alias that escapes the class (returning ``self._ops`` and mutating
the return value); the rule keeps honest code honest, the fuzzer hunts
the rest.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from ..rules import LintRule
from ..visitor import ModuleContext, attr_name

#: Method calls that mutate their receiver in place.
MUTATING_METHODS = {
    "append", "add", "remove", "discard", "insert", "extend",
    "update", "clear", "pop", "popitem", "setdefault",
}

#: Free functions whose first argument is mutated in place.
MUTATING_FUNCTIONS = {
    "bisect.insort", "bisect.insort_left", "bisect.insort_right",
    "insort", "insort_left", "insort_right",
    "heapq.heappush", "heapq.heappop", "heappush", "heappop",
}

SKIP_METHODS = {"__init__", "__post_init__"}


class CacheDisciplineRule(LintRule):
    rule_id = "cache-discipline"
    description = (
        "methods that mutate guarded source-of-truth attributes must "
        "invalidate the derived caches (directly or transitively)"
    )

    def applies_to(self, rel_path: str, config) -> bool:
        return bool(config.guards_for(rel_path))

    def visit_ClassDef(self, node: ast.ClassDef, ctx: ModuleContext) -> None:
        for guard in ctx.config.guards_for(ctx.rel_path):
            if node.name in guard.classes:
                self._check_class(node, guard, ctx)

    # ------------------------------------------------------------------

    def _check_class(self, cls: ast.ClassDef, guard, ctx: ModuleContext) -> None:
        guarded = set(guard.guarded)
        caches = set(guard.caches)
        invalidators = set(guard.invalidators)

        methods: Dict[str, ast.AST] = {}
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods[item.name] = item

        mutators: Dict[str, ast.AST] = {}   # name -> first mutating node
        invalidates: Set[str] = set(invalidators)
        calls: Dict[str, Set[str]] = {}     # name -> same-class callees

        for name, body in methods.items():
            callees: Set[str] = set()
            found_mutation = None
            found_invalidation = False
            for sub in ast.walk(body):
                if sub is body:
                    continue
                if self._touches(sub, caches, ctx) or self._bumps_version(sub):
                    found_invalidation = True
                mutation = self._mutation(sub, guarded, ctx)
                if mutation is not None and found_mutation is None:
                    found_mutation = mutation
                callee = self._class_call(sub, methods)
                if callee is not None:
                    callees.add(callee)
            calls[name] = callees
            if found_invalidation:
                invalidates.add(name)
            if found_mutation is not None and name not in SKIP_METHODS:
                mutators[name] = found_mutation

        # Fixed point: calling an invalidating method is invalidating.
        changed = True
        while changed:
            changed = False
            for name, callees in calls.items():
                if name not in invalidates and callees & invalidates:
                    invalidates.add(name)
                    changed = True

        for name, node in sorted(
            mutators.items(), key=lambda kv: kv[1].lineno
        ):
            if name in invalidates:
                continue
            self.report(
                ctx, node,
                f"{cls.name}.{name} mutates a guarded attribute "
                f"({', '.join(sorted(guarded))}) without invalidating the "
                f"derived caches ({', '.join(sorted(caches))}); stale reads "
                "will follow",
            )

    # -- mutation / invalidation primitives ----------------------------

    def _mutation(
        self, node: ast.AST, guarded: Set[str], ctx: ModuleContext
    ):
        """Return the offending node when *node* mutates a guarded attr."""
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            for target in self._targets(node):
                if self._target_mutates(target, guarded):
                    return node
        if isinstance(node, ast.Call):
            method = attr_name(node.func)
            if method in MUTATING_METHODS and isinstance(
                node.func, ast.Attribute
            ):
                if self._mentions_attr(node.func.value, guarded):
                    return node
            name = ctx.resolve(node.func)
            if name in MUTATING_FUNCTIONS and node.args:
                if self._mentions_attr(node.args[0], guarded):
                    return node
        return None

    def _touches(
        self, node: ast.AST, caches: Set[str], ctx: ModuleContext
    ) -> bool:
        """True when *node* writes/clears a cache attribute."""
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            return any(
                self._target_mutates(t, caches) for t in self._targets(node)
            )
        if isinstance(node, ast.Call):
            method = attr_name(node.func)
            if method in MUTATING_METHODS and isinstance(
                node.func, ast.Attribute
            ):
                return self._mentions_attr(node.func.value, caches)
        return False

    @staticmethod
    def _bumps_version(node: ast.AST) -> bool:
        """True for writes *through* a name/attr containing 'version'.

        ``self._adj_version[u] += 1`` and ``versions[u] += 1`` (a local
        alias) both count; the plain rebinding ``versions = ...`` does
        not — binding a name is not an invalidation.
        """
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            for target in CacheDisciplineRule._targets(node):
                if isinstance(target, ast.Name):
                    continue
                for sub in ast.walk(target):
                    if (
                        isinstance(sub, ast.Attribute)
                        and "version" in sub.attr
                    ):
                        return True
                    if isinstance(sub, ast.Name) and "version" in sub.id:
                        return True
        return False

    @staticmethod
    def _targets(node: ast.AST) -> Iterable[ast.AST]:
        if isinstance(node, ast.AugAssign):
            return (node.target,)
        return node.targets  # Assign / Delete

    @staticmethod
    def _target_mutates(target: ast.AST, names: Set[str]) -> bool:
        """True when assigning/deleting *target* mutates a tracked object.

        A bare ``Name`` target is a *rebinding* of a local (``counts =
        lane.counts`` just creates an alias) — not a mutation.  Anything
        deeper (``counts[row] = x``, ``self._ops[i] = op``,
        ``lane.cached[row] = None``) writes through the object and is.
        """
        if isinstance(target, ast.Name):
            return False
        if isinstance(target, (ast.Tuple, ast.List)):
            return any(
                CacheDisciplineRule._target_mutates(elt, names)
                for elt in target.elts
            )
        return CacheDisciplineRule._mentions_attr(target, names)

    @staticmethod
    def _mentions_attr(node: ast.AST, names: Set[str]) -> bool:
        """True when the subtree reaches through an attribute in *names*.

        Name nodes match too: ``versions = self._adj_version`` followed by
        ``versions[x] += 1`` keeps the alias visible as a bare name.
        """
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr in names:
                return True
            if isinstance(sub, ast.Name) and sub.id in names:
                return True
        return False

    @staticmethod
    def _class_call(node: ast.AST, methods: Dict[str, ast.AST]):
        """Callee name for ``self.<method>(...)`` / ``cls.<method>(...)``."""
        if not isinstance(node, ast.Call):
            return None
        method = attr_name(node.func)
        if method in methods:
            return method
        return None
