"""Inline suppressions: ``# repro: lint-ignore[rule-id]: justification``.

A suppression comment silences findings of the named rule(s) on its own
line — or, when the comment stands alone on a line, on the next code
line.  The justification after the closing bracket is **required**: a
suppression without one, or one naming a rule id the engine does not
know, is itself reported (rule id ``bad-suppression``), so suppressions
cannot rot silently.

Comments are located with :mod:`tokenize`, not a substring scan, so a
string literal that merely *talks about* the syntax never suppresses
anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .findings import Finding
from .rules import BAD_SUPPRESSION

_PATTERN = re.compile(
    r"#\s*repro:\s*lint-ignore\[(?P<ids>[^\]]*)\]\s*(?::\s*(?P<why>.*))?$"
)


@dataclass
class Suppression:
    """One parsed lint-ignore comment."""

    line: int  # comment's own line
    rule_ids: Tuple[str, ...]
    justification: str
    standalone: bool  # comment is the only thing on its line

    @property
    def target_line(self) -> int:
        """The code line this suppression applies to."""
        return self.line + 1 if self.standalone else self.line


@dataclass
class SuppressionTable:
    """All suppressions of one file plus their own malformedness findings."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    problems: List[Finding] = field(default_factory=list)

    def suppresses(self, finding: Finding) -> bool:
        return finding.rule in self.by_line.get(finding.line, set())


def scan_suppressions(
    rel_path: str, source: str, known_rule_ids: Set[str]
) -> SuppressionTable:
    """Parse every lint-ignore comment in *source*."""
    table = SuppressionTable()
    for line, text, standalone in _comments(source):
        match = _PATTERN.search(text)
        if match is None:
            continue
        ids = tuple(
            token.strip() for token in match.group("ids").split(",") if token.strip()
        )
        why = (match.group("why") or "").strip()
        suppression = Suppression(line, ids, why, standalone)
        snippet = text.strip()
        if not ids:
            table.problems.append(
                Finding(
                    BAD_SUPPRESSION, rel_path, line, 1,
                    "lint-ignore names no rule id", snippet,
                )
            )
            continue
        unknown = [rule_id for rule_id in ids if rule_id not in known_rule_ids]
        for rule_id in unknown:
            table.problems.append(
                Finding(
                    BAD_SUPPRESSION, rel_path, line, 1,
                    f"lint-ignore names unknown rule id {rule_id!r}", snippet,
                )
            )
        if not why:
            table.problems.append(
                Finding(
                    BAD_SUPPRESSION, rel_path, line, 1,
                    "lint-ignore needs a justification "
                    "(`# repro: lint-ignore[rule-id]: why`)",
                    snippet,
                )
            )
            continue
        if unknown:
            continue  # malformed: never silences anything
        table.by_line.setdefault(suppression.target_line, set()).update(ids)
    return table


def _comments(source: str):
    """Yield ``(line, text, standalone)`` for every comment token."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            line_text = token.line[: token.start[1]]
            yield token.start[0], token.string, not line_text.strip()
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        return  # unparsable files are reported by the runner, not here
