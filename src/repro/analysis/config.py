"""Lint configuration: defaults + ``[tool.repro.lint]`` in pyproject.toml.

Everything path-like is repo-relative with posix separators.  The
defaults describe *this* repository (they are what ``repro lint`` uses
when run from a checkout without a pyproject section), and the pyproject
table overrides any subset — tests inject hand-built configs to point
rules at fixture files instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import LintError

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 path
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ModuleNotFoundError:
        tomllib = None  # type: ignore[assignment]


@dataclass(frozen=True)
class CacheGuard:
    """One cache-discipline contract: who must invalidate what.

    *guarded* names the source-of-truth attributes; a method of one of
    *classes* in *file* that mutates a guarded attribute must also
    invalidate — assign/pop a *caches* attribute, bump a ``*version*``
    counter, or (transitively, within the class) call one of
    *invalidators*.
    """

    file: str
    classes: Tuple[str, ...]
    guarded: Tuple[str, ...]
    caches: Tuple[str, ...]
    invalidators: Tuple[str, ...] = ()


#: The invariants the current tree actually maintains (PR 3's caches).
DEFAULT_CACHE_GUARDS: Tuple[CacheGuard, ...] = (
    CacheGuard(
        file="src/repro/ir/ddg.py",
        classes=("DDG",),
        guarded=("_ops", "_out", "_in"),
        caches=(
            "_out_cache", "_in_cache", "_refs_cache",
            "_op_ids_cache", "_adj_version",
        ),
        invalidators=("_touch_endpoints", "_insert_edge", "_remove_edge",
                      "_derive_flow_in_edges", "_retire_flow_in_edges"),
    ),
    CacheGuard(
        file="src/repro/scheduling/mrt.py",
        classes=("ModuloReservationTable", "_Lane"),
        guarded=("rows", "counts"),
        caches=("cached",),
    ),
)

#: Modules whose outputs feed fingerprints / cache hashes / schedules:
#: the bit-identity contract bans ambient nondeterminism here.
DEFAULT_DETERMINISM_PATHS: Tuple[str, ...] = (
    "src/repro/scheduling",
    "src/repro/ir",
    "src/repro/registers",
    "src/repro/codegen",
    "src/repro/machine",
    "src/repro/targets",
    "src/repro/api/cache.py",
)

#: API-boundary modules: only repro.errors types may cross them.
DEFAULT_API_PATHS: Tuple[str, ...] = (
    "src/repro/api",
    "src/repro/service",
    "src/repro/bench.py",
)

DEFAULT_PATHS: Tuple[str, ...] = ("src", "benchmarks")
DEFAULT_BASELINE = "LINT_baseline.json"

#: Extra taint *sources* for the flow-sensitive determinism rule (the
#: ambient ones — clocks, unseeded RNG, id()/hash() — are built in).
DEFAULT_TAINT_SOURCES: Tuple[str, ...] = ()

#: Taint *sinks*: calls whose arguments must be bit-identical across
#: runs.  Dotted names are matched after import-alias resolution.
DEFAULT_TAINT_SINKS: Tuple[str, ...] = (
    "hashlib.sha256",
    "hashlib.sha1",
    "hashlib.md5",
    "hashlib.blake2b",
    "hashlib.blake2s",
    "hashlib.new",
    "repro.scheduling.fingerprint.schedule_fingerprint",
    "repro.scheduling.fingerprint.fingerprint_map",
    "repro.api.cache.content_hash",
)


@dataclass
class LintConfig:
    """Resolved configuration for one ``repro lint`` run."""

    root: Path = field(default_factory=Path.cwd)
    paths: Tuple[str, ...] = DEFAULT_PATHS
    exclude: Tuple[str, ...] = ()
    baseline: str = DEFAULT_BASELINE
    determinism_paths: Tuple[str, ...] = DEFAULT_DETERMINISM_PATHS
    api_paths: Tuple[str, ...] = DEFAULT_API_PATHS
    cache_guards: Tuple[CacheGuard, ...] = DEFAULT_CACHE_GUARDS
    taint_sources: Tuple[str, ...] = DEFAULT_TAINT_SOURCES
    taint_sinks: Tuple[str, ...] = DEFAULT_TAINT_SINKS

    def baseline_path(self) -> Path:
        return Path(self.root) / self.baseline

    def guards_for(self, rel_path: str) -> List[CacheGuard]:
        return [g for g in self.cache_guards if g.file == rel_path]


def path_in(rel_path: str, prefixes: Sequence[str]) -> bool:
    """True when *rel_path* is one of *prefixes* or inside one."""
    for prefix in prefixes:
        clean = prefix.rstrip("/")
        if rel_path == clean or rel_path.startswith(clean + "/"):
            return True
    return False


def load_config(root: Path) -> LintConfig:
    """Config for *root*: defaults overridden by ``[tool.repro.lint]``."""
    root = Path(root)
    table = _pyproject_table(root)
    config = LintConfig(root=root)
    if not table:
        return config
    simple = {
        "paths": "paths",
        "exclude": "exclude",
        "baseline": "baseline",
        "determinism-paths": "determinism_paths",
        "api-paths": "api_paths",
        "taint-sources": "taint_sources",
        "taint-sinks": "taint_sinks",
    }
    known = set(simple) | {"cache-guards"}
    unknown = sorted(set(table) - known)
    if unknown:
        raise LintError(
            f"[tool.repro.lint] has unknown key(s): {', '.join(unknown)}; "
            f"known keys: {', '.join(sorted(known))}"
        )
    for key, attr in simple.items():
        if key not in table:
            continue
        value = table[key]
        if key == "baseline":
            if not isinstance(value, str):
                raise LintError("[tool.repro.lint] baseline must be a string")
            setattr(config, attr, value)
        else:
            if not isinstance(value, list) or not all(
                isinstance(item, str) for item in value
            ):
                raise LintError(
                    f"[tool.repro.lint] {key} must be a list of strings"
                )
            setattr(config, attr, tuple(value))
    if "cache-guards" in table:
        config.cache_guards = tuple(
            _parse_guard(entry) for entry in table["cache-guards"]
        )
    return config


def _parse_guard(entry: Dict[str, object]) -> CacheGuard:
    if not isinstance(entry, dict):
        raise LintError("[tool.repro.lint] cache-guards entries must be tables")
    try:
        return CacheGuard(
            file=str(entry["file"]),
            classes=tuple(entry["classes"]),
            guarded=tuple(entry["guarded"]),
            caches=tuple(entry["caches"]),
            invalidators=tuple(entry.get("invalidators", ())),
        )
    except KeyError as err:
        raise LintError(
            f"cache-guards entry is missing required key {err.args[0]!r} "
            "(needs file, classes, guarded, caches)"
        ) from None


def _pyproject_table(root: Path) -> Optional[Dict[str, object]]:
    path = root / "pyproject.toml"
    if not path.exists():
        return None
    if tomllib is None:  # pragma: no cover - Python 3.10 without tomli
        return None
    with open(path, "rb") as handle:
        doc = tomllib.load(handle)
    tool = doc.get("tool", {})
    if not isinstance(tool, dict):
        return None
    repro = tool.get("repro", {})
    if not isinstance(repro, dict):
        return None
    lint = repro.get("lint")
    return lint if isinstance(lint, dict) else None
