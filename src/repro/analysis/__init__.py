"""repro.analysis: project-aware static analysis (``repro lint``).

The subsystem mirrors the pass-registry architecture of
:mod:`repro.api.passes`: rules are stateless objects registered by id
in :data:`~repro.analysis.rules.RULE_REGISTRY`; the driver
(:func:`~repro.analysis.runner.run_lint`) walks each file's AST once,
dispatching nodes to every interested rule, runs each rule's
whole-module flow pass, then folds in inline suppressions and the
committed baseline.

Layers::

    findings.py   Finding / baseline keys
    rules.py      LintRule base + registry (+ meta rule ids)
    visitor.py    ModuleContext (scopes, aliases, parents) + Walker
    cfg.py        intraprocedural control-flow graphs
    dataflow.py   events + forward solver + reaching definitions
    callgraph.py  project-wide symbol index / call graph (+ disk cache)
    suppress.py   # repro: lint-ignore[...] comment semantics
    baseline.py   grandfathered-findings file + diffing
    config.py     defaults + [tool.repro.lint] from pyproject.toml
    report.py     LintResult + text/JSON/SARIF rendering
    runner.py     file collection + the run_lint driver
    checks/       the builtin rules (syntactic and flow-aware)
"""

from __future__ import annotations

from .baseline import Baseline, BaselineDiff
from .config import CacheGuard, LintConfig, load_config
from .findings import Finding
from .report import LintResult, render_json, render_sarif, render_text
from .rules import (
    BAD_SUPPRESSION,
    PARSE_ERROR,
    RULE_REGISTRY,
    LintRule,
    all_rule_ids,
    get_rule,
    register_rule,
    registered_rules,
)
from .runner import collect_files, lint_file, run_lint, select_rules, update_baseline

__all__ = [
    "BAD_SUPPRESSION",
    "PARSE_ERROR",
    "RULE_REGISTRY",
    "Baseline",
    "BaselineDiff",
    "CacheGuard",
    "Finding",
    "LintConfig",
    "LintResult",
    "LintRule",
    "all_rule_ids",
    "collect_files",
    "get_rule",
    "lint_file",
    "load_config",
    "register_rule",
    "registered_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "select_rules",
    "update_baseline",
]
