"""The lint driver: collect files, run rules, fold in suppressions + baseline.

:func:`run_lint` is the single entry point the CLI, CI and tests share.
It is deterministic by construction — files are visited in sorted
relative-path order, findings sort by (path, line, col, rule) — so two
runs over the same tree produce byte-identical reports.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from ..errors import LintError
from . import checks  # noqa: F401 - import registers the builtin rules
from .baseline import Baseline
from .callgraph import ProjectIndex
from .config import LintConfig, path_in
from .findings import Finding
from .report import LintResult
from .rules import (
    PARSE_ERROR,
    META_RULE_IDS,
    LintRule,
    all_rule_ids,
    get_rule,
    registered_rules,
)
from .suppress import scan_suppressions
from .visitor import ModuleContext, Walker


def collect_files(config: LintConfig) -> List[Path]:
    """Python files under ``config.paths``, minus ``config.exclude``."""
    root = Path(config.root)
    seen = set()
    out: List[Path] = []
    for entry in config.paths:
        base = root / entry
        if base.is_file() and base.suffix == ".py":
            candidates: Iterable[Path] = [base]
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            continue
        for path in candidates:
            rel = path.relative_to(root).as_posix()
            if rel in seen or path_in(rel, config.exclude):
                continue
            seen.add(rel)
            out.append(path)
    return sorted(out, key=lambda p: p.relative_to(root).as_posix())


def select_rules(only: Optional[Sequence[str]] = None) -> List[LintRule]:
    """Registered rules, optionally narrowed to *only* (validated ids)."""
    if only is None:
        return [get_rule(rule_id) for rule_id in registered_rules()]
    chosen: List[LintRule] = []
    for rule_id in only:
        if rule_id in META_RULE_IDS:
            continue  # meta findings are always produced; nothing to run
        chosen.append(get_rule(rule_id))  # raises LintError on unknown ids
    return chosen


def lint_file(
    path: Path,
    rel_path: str,
    rules: Sequence[LintRule],
    config: LintConfig,
    project: Optional[ProjectIndex] = None,
) -> tuple[List[Finding], int]:
    """All unsuppressed findings for one file + the suppressed count.

    *project* is the cross-file index flow rules resolve names through;
    when omitted (single-file runs, fixture tests) and an active rule
    requires one, a single-file index is built on the spot.
    """
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [
            Finding(
                rule=PARSE_ERROR, path=rel_path, line=1, col=1,
                message=f"cannot read file: {err}", snippet="",
            )
        ], 0
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as err:
        return [
            Finding(
                rule=PARSE_ERROR, path=rel_path,
                line=err.lineno or 1, col=(err.offset or 1),
                message=f"syntax error: {err.msg}", snippet="",
            )
        ], 0

    active = [r for r in rules if r.applies_to(rel_path, config)]
    ctx = ModuleContext(
        rel_path=rel_path, source=source, tree=tree, config=config
    )
    if active:
        Walker(ctx, active).run()
        if project is None and any(r.requires_project for r in active):
            project = ProjectIndex.build(Path(config.root), [(path, rel_path)])
        for rule in active:
            rule.analyze_module(ctx, project)

    table = scan_suppressions(rel_path, source, all_rule_ids())
    kept = [f for f in ctx.findings if not table.suppresses(f)]
    suppressed = len(ctx.findings) - len(kept)
    kept.extend(table.problems)
    return sorted(kept, key=Finding.sort_key), suppressed


def run_lint(
    config: LintConfig,
    *,
    only: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    files: Optional[Sequence[str]] = None,
    callgraph_cache: Optional[Path] = None,
) -> LintResult:
    """Lint the tree described by *config* and diff against *baseline*.

    When *baseline* is None the committed baseline file is loaded (a
    missing file is an empty baseline, never an error).  *files*
    narrows the run to a subset of repo-relative paths (``--changed``);
    the project index is still built over the full tree so cross-file
    resolution stays whole-program, but baseline entries of unlinted
    files are not reported as resolved.  *callgraph_cache* names a JSON
    file the index is reloaded from (and saved to) when sources allow.
    """
    rules = select_rules(only)
    if baseline is None:
        baseline = Baseline.load(config.baseline_path())

    result = LintResult(rules_run=sorted(r.rule_id for r in rules))
    root = Path(config.root)
    collected = collect_files(config)
    project: Optional[ProjectIndex] = None
    if any(r.requires_project for r in rules):
        pairs = [
            (path, path.relative_to(root).as_posix()) for path in collected
        ]
        project = ProjectIndex.load_or_build(
            root, pairs, cache_path=callgraph_cache
        )

    wanted = None if files is None else {f.rstrip("/") for f in files}
    for path in collected:
        rel = path.relative_to(root).as_posix()
        if wanted is not None and rel not in wanted:
            continue
        findings, suppressed = lint_file(
            path, rel, rules, config, project=project
        )
        result.findings.extend(findings)
        result.suppressed += suppressed
        result.files_checked += 1

    if project is not None and callgraph_cache is not None:
        try:
            # Re-save so summaries computed during the run persist too.
            project.save(Path(callgraph_cache))
        except OSError:
            pass

    result.findings.sort(key=Finding.sort_key)
    diff = baseline.diff(result.findings)
    result.new = diff.new
    result.baselined = diff.baselined
    # A subset run never saw most files; silence about them is not
    # evidence their baselined findings are fixed.
    result.resolved = [] if wanted is not None else diff.resolved
    return result


def update_baseline(config: LintConfig, result: LintResult) -> Path:
    """Write the baseline matching *result* and return its path."""
    path = config.baseline_path()
    Baseline.from_findings(result.findings).save(path)
    return path


__all__ = [
    "collect_files",
    "select_rules",
    "lint_file",
    "run_lint",
    "update_baseline",
    "LintError",
]
