"""Rendering lint results for humans (text) and machines (JSON)."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from .findings import Finding

REPORT_SCHEMA = 1


@dataclass
class LintResult:
    """Everything one ``repro lint`` run produced.

    *findings* is every unsuppressed finding; *new* / *baselined* split
    it against the baseline; *resolved* lists baseline entries no
    longer matched by anything (stale grandfathering — remove them).
    """

    findings: List[Finding] = field(default_factory=list)
    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    resolved: List[Dict[str, object]] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing outside the baseline fired."""
        return not self.new

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": REPORT_SCHEMA,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": list(self.rules_run),
            "counts": {
                "total": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.baselined),
                "resolved": len(self.resolved),
                "suppressed": self.suppressed,
            },
            "new": [f.to_dict() for f in self.new],
            "baselined": [f.to_dict() for f in self.baselined],
            "resolved": list(self.resolved),
        }


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """Human-readable report: new findings, then a one-line summary."""
    lines: List[str] = []
    for finding in result.new:
        lines.append(finding.render())
    if verbose and result.baselined:
        lines.append("")
        lines.append(f"baselined ({len(result.baselined)} grandfathered):")
        for finding in result.baselined:
            lines.append("  " + finding.render())
    if result.resolved:
        lines.append("")
        lines.append(
            f"{len(result.resolved)} baseline entr"
            f"{'y is' if len(result.resolved) == 1 else 'ies are'} no longer "
            "matched — run `repro lint --update-baseline` to drop:"
        )
        for entry in result.resolved:
            lines.append(
                f"  {entry.get('rule', '?')} at {entry.get('path', '?')} "
                f"(key {entry.get('key', '?')})"
            )
    if lines:
        lines.append("")
    summary = (
        f"checked {result.files_checked} files, "
        f"{len(result.rules_run)} rules: "
        f"{len(result.new)} new, {len(result.baselined)} baselined, "
        f"{result.suppressed} suppressed"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)
