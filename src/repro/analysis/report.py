"""Rendering lint results for humans (text) and machines (JSON)."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from .findings import Finding

REPORT_SCHEMA = 1


@dataclass
class LintResult:
    """Everything one ``repro lint`` run produced.

    *findings* is every unsuppressed finding; *new* / *baselined* split
    it against the baseline; *resolved* lists baseline entries no
    longer matched by anything (stale grandfathering — remove them).
    """

    findings: List[Finding] = field(default_factory=list)
    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    resolved: List[Dict[str, object]] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing outside the baseline fired."""
        return not self.new

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": REPORT_SCHEMA,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": list(self.rules_run),
            "counts": {
                "total": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.baselined),
                "resolved": len(self.resolved),
                "suppressed": self.suppressed,
            },
            "new": [f.to_dict() for f in self.new],
            "baselined": [f.to_dict() for f in self.baselined],
            "resolved": list(self.resolved),
        }


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """Human-readable report: new findings, then a one-line summary."""
    lines: List[str] = []
    for finding in result.new:
        lines.append(finding.render())
    if verbose and result.baselined:
        lines.append("")
        lines.append(f"baselined ({len(result.baselined)} grandfathered):")
        for finding in result.baselined:
            lines.append("  " + finding.render())
    if result.resolved:
        lines.append("")
        lines.append(
            f"{len(result.resolved)} baseline entr"
            f"{'y is' if len(result.resolved) == 1 else 'ies are'} no longer "
            "matched — run `repro lint --update-baseline` to drop:"
        )
        for entry in result.resolved:
            lines.append(
                f"  {entry.get('rule', '?')} at {entry.get('path', '?')} "
                f"(key {entry.get('key', '?')})"
            )
    if lines:
        lines.append("")
    summary = (
        f"checked {result.files_checked} files, "
        f"{len(result.rules_run)} rules: "
        f"{len(result.new)} new, {len(result.baselined)} baselined, "
        f"{result.suppressed} suppressed"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)


#: SARIF version pinned to what GitHub code scanning ingests.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def render_sarif(result: LintResult) -> str:
    """The run as a SARIF 2.1.0 document (GitHub code-scanning upload).

    New findings are ``error`` (they gate), baselined ones ``note``
    (visible in the UI without failing the scan).  The baseline key
    rides along as a partial fingerprint so code scanning tracks a
    finding across line-shifting edits exactly like the baseline does.
    """
    from .rules import META_RULE_IDS, RULE_REGISTRY

    new_keys = {id(f) for f in result.new}
    rule_ids = sorted(
        {f.rule for f in result.findings} | set(result.rules_run)
    )
    rules = []
    for rule_id in rule_ids:
        rule = RULE_REGISTRY.get(rule_id)
        if rule is not None:
            text = rule.description
        elif rule_id in META_RULE_IDS:
            text = "engine-level finding"
        else:
            text = rule_id
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": text},
            }
        )
    results = []
    for finding in result.findings:
        results.append(
            {
                "ruleId": finding.rule,
                "level": "error" if id(finding) in new_keys else "note",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproBaselineKey/v1": finding.baseline_key(),
                },
            }
        )
    doc = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
