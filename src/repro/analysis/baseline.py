"""Committed baseline of grandfathered findings.

The baseline is a JSON map from :meth:`Finding.baseline_key` to the
finding's descriptive fields plus a ``count`` (the same line of code can
legitimately fire the same rule more than once per file, e.g. a repeated
idiom).  Matching consumes counts: if the tree has three occurrences and
the baseline recorded two, one finding is *new* and fails the gate.

Baselined entries that no longer match anything are reported as
*resolved* so ``--update-baseline`` shrinks the file over time instead
of accreting dead weight.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from ..errors import LintError
from .findings import Finding

BASELINE_SCHEMA = 1


@dataclass
class BaselineDiff:
    """Outcome of matching current findings against a baseline."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    resolved: List[Dict[str, object]] = field(default_factory=list)


class Baseline:
    """Load/match/save the grandfathered-findings file."""

    def __init__(self, entries: Dict[str, Dict[str, object]] = None):
        self.entries = dict(entries or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            raise LintError(f"cannot read lint baseline {path}: {err}")
        if not isinstance(doc, dict) or "entries" not in doc:
            raise LintError(f"lint baseline {path} has no 'entries' map")
        if doc.get("schema") != BASELINE_SCHEMA:
            raise LintError(
                f"lint baseline {path} has schema {doc.get('schema')!r}; "
                f"this engine writes schema {BASELINE_SCHEMA} "
                "(regenerate with --update-baseline)"
            )
        return cls(doc["entries"])

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        entries: Dict[str, Dict[str, object]] = {}
        for finding in findings:
            key = finding.baseline_key()
            entry = entries.get(key)
            if entry is None:
                entries[key] = {
                    "rule": finding.rule,
                    "path": finding.path,
                    "snippet": finding.snippet.strip(),
                    "count": 1,
                }
            else:
                entry["count"] += 1
        return cls(entries)

    def save(self, path: Path) -> None:
        doc = {
            "schema": BASELINE_SCHEMA,
            "entries": {k: self.entries[k] for k in sorted(self.entries)},
        }
        Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    def diff(self, findings: List[Finding]) -> BaselineDiff:
        """Split *findings* into new vs. grandfathered, noting resolved."""
        remaining = {k: int(v.get("count", 1)) for k, v in self.entries.items()}
        diff = BaselineDiff()
        for finding in sorted(findings, key=Finding.sort_key):
            key = finding.baseline_key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                diff.baselined.append(finding)
            else:
                diff.new.append(finding)
        for key, count in remaining.items():
            if count > 0:
                entry = dict(self.entries[key])
                entry["unmatched"] = count
                entry["key"] = key
                diff.resolved.append(entry)
        diff.resolved.sort(key=lambda e: (str(e["path"]), str(e["rule"])))
        return diff

    def __len__(self) -> int:
        return sum(int(v.get("count", 1)) for v in self.entries.values())
