"""Project-wide function index and call graph for flow-aware rules.

The :class:`ProjectIndex` answers the questions the intraprocedural
rules cannot: *what does this dotted name refer to, project-wide?*
(``pools.spawn_pool`` under ``from repro import pools`` →
``repro.pools.spawn_pool``), *is the referent a module-level def, a
method, a name bound to a lambda?*, and *who calls whom?* (one edge set
per indexed function, callee names fully resolved through each module's
import aliases — including relative imports, which the per-file
alias map in :mod:`repro.analysis.visitor` deliberately skips).

Rules attach derived per-function facts (e.g. the determinism-taint
return/sink summaries) through :meth:`ProjectIndex.get_summary` /
:meth:`set_summary`; summaries are plain JSON data so they persist in
the on-disk cache.

The whole index serialises to one JSON file keyed on a hash of every
``(path, sha256(source))`` pair — ``repro lint --callgraph-cache FILE``
reloads it when no source changed (CI caches the file across runs) and
rebuilds it otherwise.  AST nodes are never serialised: a cache-loaded
index re-parses a module lazily only when a rule asks for a function's
body (:meth:`func_node`), which the summary cache makes rare.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import LintError

CALLGRAPH_SCHEMA = 1


def module_name_for(rel_path: str) -> str:
    """Dotted module name of a repo-relative file path.

    ``src/repro/api/cache.py`` → ``repro.api.cache``;
    ``benchmarks/bench_x.py`` → ``benchmarks.bench_x``;
    package ``__init__.py`` files name the package itself.
    """
    parts = rel_path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One indexed callable: a def, a method, or a name-bound lambda."""

    qualname: str  # module.func / module.Class.method
    module: str
    rel_path: str
    name: str
    kind: str  # "function" | "method" | "lambda"
    lineno: int
    params: Tuple[str, ...] = ()
    node: Optional[ast.AST] = None  # absent when loaded from cache

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "lineno": self.lineno,
            "params": list(self.params),
        }


@dataclass
class ModuleInfo:
    """Per-module slice of the index."""

    rel_path: str
    module: str
    aliases: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    edges: Dict[str, List[str]] = field(default_factory=dict)


def collect_module_aliases(tree: ast.Module, module: str) -> Dict[str, str]:
    """Local name → canonical dotted path, resolving relative imports
    against *module* (unlike the visitor's flat map)."""
    package_parts = module.split(".")[:-1] if module else []
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                aliases[local] = item.name if item.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # from .x import y / from .. import z
                up = node.level - 1
                if up > len(package_parts):
                    continue
                base_parts = package_parts[:-up] if up else list(package_parts)
                base = ".".join(base_parts)
                prefix = f"{base}.{node.module}" if node.module else base
            else:
                prefix = node.module or ""
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                aliases[local] = f"{prefix}.{item.name}" if prefix else item.name
    return aliases


class ProjectIndex:
    """Symbol table + call graph over every linted file."""

    def __init__(self, root: Path):
        self.root = Path(root)
        self.modules: Dict[str, ModuleInfo] = {}  # rel_path -> info
        self.functions: Dict[str, FunctionInfo] = {}  # qualname -> info
        self.key: str = ""
        self._summaries: Dict[str, Dict[str, object]] = {}
        self._parsed: Dict[str, Optional[ast.Module]] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls, root: Path, files: Sequence[Tuple[Path, str]]
    ) -> "ProjectIndex":
        index = cls(root)
        hash_parts: List[str] = []
        for path, rel in sorted(files, key=lambda item: item[1]):
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
            hash_parts.append(
                f"{rel} {hashlib.sha256(source.encode('utf-8')).hexdigest()}"
            )
            try:
                tree = ast.parse(source, filename=rel)
            except SyntaxError:
                continue  # the runner reports parse errors itself
            index._index_module(rel, tree)
        index.key = hashlib.sha256(
            "\n".join(hash_parts).encode("utf-8")
        ).hexdigest()
        return index

    @classmethod
    def source_key(cls, files: Sequence[Tuple[Path, str]]) -> str:
        """The cache key :meth:`build` would compute for *files*."""
        hash_parts: List[str] = []
        for path, rel in sorted(files, key=lambda item: item[1]):
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
            hash_parts.append(
                f"{rel} {hashlib.sha256(source.encode('utf-8')).hexdigest()}"
            )
        return hashlib.sha256("\n".join(hash_parts).encode("utf-8")).hexdigest()

    def _index_module(self, rel_path: str, tree: ast.Module) -> None:
        module = module_name_for(rel_path)
        info = ModuleInfo(
            rel_path=rel_path,
            module=module,
            aliases=collect_module_aliases(tree, module),
        )
        self.modules[rel_path] = info
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, stmt, kind="function")
            elif isinstance(stmt, ast.ClassDef):
                for member in stmt.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._add_function(
                            info, member, kind="method", cls=stmt.name
                        )
            elif isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Lambda
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        qualname = f"{module}.{target.id}"
                        fn = FunctionInfo(
                            qualname=qualname, module=module,
                            rel_path=rel_path, name=target.id,
                            kind="lambda", lineno=stmt.lineno,
                            params=tuple(
                                a.arg for a in stmt.value.args.args
                            ),
                            node=stmt.value,
                        )
                        info.functions[qualname] = fn
                        self.functions[qualname] = fn
        for fn in info.functions.values():
            if fn.node is not None and not isinstance(fn.node, ast.Lambda):
                info.edges[fn.qualname] = self._edges_for(info, fn)

    def _add_function(
        self, info: ModuleInfo, node, kind: str, cls: Optional[str] = None
    ) -> None:
        qualname = (
            f"{info.module}.{cls}.{node.name}" if cls
            else f"{info.module}.{node.name}"
        )
        args = node.args
        params = tuple(
            a.arg for a in (list(args.posonlyargs) + list(args.args))
        )
        fn = FunctionInfo(
            qualname=qualname, module=info.module, rel_path=info.rel_path,
            name=node.name, kind=kind, lineno=node.lineno, params=params,
            node=node,
        )
        info.functions[qualname] = fn
        self.functions[qualname] = fn

    def _edges_for(self, info: ModuleInfo, fn: FunctionInfo) -> List[str]:
        current_class = None
        if fn.kind == "method":
            current_class = fn.qualname.rsplit(".", 2)[-2]
        callees = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            target = self.resolve_call_target(
                info.module, node.func, aliases=info.aliases,
                current_class=current_class,
            )
            if target is not None:
                callees.add(target.qualname)
        return sorted(callees)

    # -- resolution ----------------------------------------------------

    def resolve_name(
        self,
        module: str,
        dotted: str,
        *,
        aliases: Optional[Dict[str, str]] = None,
        current_class: Optional[str] = None,
    ) -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` a dotted name denotes, if any.

        Tries, in order: ``self.x`` → method of *current_class*; the
        module's import aliases; a module-local name; the name taken as
        an absolute path.
        """
        if aliases is None:
            info = next(
                (m for m in self.modules.values() if m.module == module), None
            )
            aliases = info.aliases if info else {}
        parts = dotted.split(".")
        if parts[0] == "self" and current_class and len(parts) == 2:
            return self.functions.get(f"{module}.{current_class}.{parts[1]}")
        if parts[0] in aliases:
            expanded = ".".join([aliases[parts[0]], *parts[1:]])
            hit = self.functions.get(expanded)
            if hit is not None:
                return hit
            return None
        local = f"{module}.{dotted}"
        hit = self.functions.get(local)
        if hit is not None:
            return hit
        return self.functions.get(dotted)

    def resolve_call_target(
        self,
        module: str,
        func: ast.AST,
        *,
        aliases: Optional[Dict[str, str]] = None,
        current_class: Optional[str] = None,
    ) -> Optional[FunctionInfo]:
        """Resolve a ``Call.func`` expression to an indexed function."""
        parts: List[str] = []
        current = func
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        dotted = ".".join(reversed(parts))
        return self.resolve_name(
            module, dotted, aliases=aliases, current_class=current_class
        )

    def module_info(self, rel_path: str) -> Optional[ModuleInfo]:
        return self.modules.get(rel_path)

    def func_node(self, info: FunctionInfo) -> Optional[ast.AST]:
        """The def node for *info*, re-parsing its module if needed."""
        if info.node is not None:
            return info.node
        tree = self._module_ast(info.rel_path)
        if tree is None:
            return None
        wanted = info.qualname.split(".")
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == wanted[-1] and info.kind == "function":
                    info.node = stmt
                    return stmt
            elif isinstance(stmt, ast.ClassDef) and info.kind == "method":
                if len(wanted) >= 2 and stmt.name == wanted[-2]:
                    for member in stmt.body:
                        if (
                            isinstance(
                                member,
                                (ast.FunctionDef, ast.AsyncFunctionDef),
                            )
                            and member.name == wanted[-1]
                        ):
                            info.node = member
                            return member
            elif (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Lambda)
                and info.kind == "lambda"
            ):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == wanted[-1]
                    ):
                        info.node = stmt.value
                        return stmt.value
        return None

    def _module_ast(self, rel_path: str) -> Optional[ast.Module]:
        if rel_path not in self._parsed:
            try:
                source = (self.root / rel_path).read_text(encoding="utf-8")
                self._parsed[rel_path] = ast.parse(source, filename=rel_path)
            except (OSError, UnicodeDecodeError, SyntaxError):
                self._parsed[rel_path] = None
        return self._parsed[rel_path]

    # -- summaries (rule-attached, cached) -----------------------------

    def get_summary(self, namespace: str, qualname: str):
        return self._summaries.get(f"{namespace}:{qualname}")

    def set_summary(self, namespace: str, qualname: str, data) -> None:
        self._summaries[f"{namespace}:{qualname}"] = data

    # -- persistence ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": CALLGRAPH_SCHEMA,
            "key": self.key,
            "modules": {
                rel: {
                    "module": m.module,
                    "aliases": dict(sorted(m.aliases.items())),
                    "functions": {
                        q: f.to_dict()
                        for q, f in sorted(m.functions.items())
                    },
                    "edges": {
                        q: list(edges)
                        for q, edges in sorted(m.edges.items())
                    },
                }
                for rel, m in sorted(self.modules.items())
            },
            "summaries": {
                k: self._summaries[k] for k in sorted(self._summaries)
            },
        }

    def save(self, path: Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"
        )

    @classmethod
    def from_dict(cls, root: Path, doc: Dict[str, object]) -> "ProjectIndex":
        if doc.get("schema") != CALLGRAPH_SCHEMA:
            raise LintError(
                f"call-graph cache has schema {doc.get('schema')!r}; "
                f"this engine writes schema {CALLGRAPH_SCHEMA}"
            )
        index = cls(root)
        index.key = str(doc.get("key", ""))
        for rel, m in doc.get("modules", {}).items():
            info = ModuleInfo(
                rel_path=rel,
                module=m["module"],
                aliases=dict(m.get("aliases", {})),
            )
            for qualname, f in m.get("functions", {}).items():
                fn = FunctionInfo(
                    qualname=qualname, module=info.module, rel_path=rel,
                    name=f["name"], kind=f["kind"], lineno=int(f["lineno"]),
                    params=tuple(f.get("params", ())),
                )
                info.functions[qualname] = fn
                index.functions[qualname] = fn
            info.edges = {
                q: list(edges) for q, edges in m.get("edges", {}).items()
            }
            index.modules[rel] = info
        index._summaries = dict(doc.get("summaries", {}))
        return index

    @classmethod
    def load_or_build(
        cls,
        root: Path,
        files: Sequence[Tuple[Path, str]],
        cache_path: Optional[Path] = None,
    ) -> "ProjectIndex":
        """Reload a cached index when no source changed, else rebuild.

        A corrupt or stale cache file is never an error — it is simply
        rebuilt and overwritten.
        """
        key = None
        if cache_path is not None and Path(cache_path).exists():
            try:
                doc = json.loads(Path(cache_path).read_text())
                key = cls.source_key(files)
                if doc.get("key") == key:
                    return cls.from_dict(root, doc)
            except (OSError, json.JSONDecodeError, LintError, KeyError,
                    TypeError, ValueError):
                pass
        index = cls.build(root, files)
        if cache_path is not None:
            try:
                index.save(Path(cache_path))
            except OSError:
                pass  # cache is best-effort; the run itself proceeds
        return index


__all__ = [
    "ProjectIndex",
    "ModuleInfo",
    "FunctionInfo",
    "module_name_for",
    "collect_module_aliases",
]
