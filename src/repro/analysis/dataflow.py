"""Forward dataflow over the lint CFG: events, solver, reaching defs.

Three layers, each usable on its own:

* :func:`iter_events` linearises one CFG element (statement or branch
  test) into ``load``/``store``/``await``/``call`` events in approximate
  evaluation order — attribute chains become dotted names (``self.jobs``)
  with every prefix emitted on loads, and calls of known mutating
  methods (``.pop``, ``.update`` …) count as stores on their receiver,
  so "read the dict, await, mutate the dict" is visible to a rule
  without it re-deriving Python evaluation order;
* :func:`solve_forward` runs any :class:`ForwardAnalysis` to a fixpoint
  (states are ``{name: frozenset}`` maps, join is key-wise union, blocks
  are visited in reverse post-order) and returns the in-state of every
  block — deterministic for a deterministic CFG;
* :class:`ReachingDefs` is the stock instance rules share: which
  definition sites can reach each use of a local name.  Definitions are
  value-carrying (the RHS expression or def node rides along), so a rule
  can ask not just *where* a name was bound but *to what*.

Lambdas and nested ``def`` bodies are never descended into — their code
runs at call time, not where it textually sits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from .cfg import CFG, Block, BranchTest, Element, LoopHeader

# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------

#: Method names whose call mutates the receiver in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "sort", "reverse",
    "appendleft", "popleft", "extendleft",
})


@dataclass(frozen=True)
class Event:
    """One primitive action inside an element, in evaluation order.

    ``role`` distinguishes *value* reads from loads that merely
    navigate to a store target (``self.jobs`` in ``self.jobs[k] = v``):
    a target-evaluation load is not a fresh observation of the value,
    so rules that model staleness must not treat it as one.
    """

    kind: str  # "load" | "store" | "await" | "call"
    name: Optional[str]  # dotted chain for load/store; None otherwise
    node: ast.AST
    role: str = "value"  # "value" | "target"


def dotted_chain(node: ast.AST) -> Optional[str]:
    """``self.jobs.active`` -> ``"self.jobs.active"``; None when the
    chain is not rooted in a plain name."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _chain_prefixes(chain: str) -> List[str]:
    """All dotted prefixes, shortest first (``a.b.c`` -> a, a.b, a.b.c)."""
    parts = chain.split(".")
    return [".".join(parts[: i + 1]) for i in range(len(parts))]


def iter_events(element: Element) -> Iterator[Event]:
    """Events of one CFG element in approximate evaluation order."""
    if isinstance(element, BranchTest):
        yield from _expr_events(element.expr)
        return
    if isinstance(element, LoopHeader):
        node = element.node
        yield from _expr_events(node.iter)
        if isinstance(node, ast.AsyncFor):
            yield Event("await", None, node)
        yield from _target_events(node.target)
        return
    yield from _stmt_events(element)


def _stmt_events(stmt: ast.stmt) -> Iterator[Event]:
    if isinstance(stmt, ast.Assign):
        yield from _expr_events(stmt.value)
        for target in stmt.targets:
            yield from _target_events(target)
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            yield from _expr_events(stmt.value)
            yield from _target_events(stmt.target)
    elif isinstance(stmt, ast.AugAssign):
        yield from _expr_events(stmt.target, force_load=True)
        yield from _expr_events(stmt.value)
        yield from _target_events(stmt.target)
    elif isinstance(stmt, ast.Expr):
        yield from _expr_events(stmt.value)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            yield from _expr_events(stmt.value)
    elif isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            yield from _expr_events(stmt.exc)
        if stmt.cause is not None:
            yield from _expr_events(stmt.cause)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            chain = dotted_chain(target)
            if chain is not None:
                yield Event("store", chain, target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield from _expr_events(item.context_expr)
            if isinstance(stmt, ast.AsyncWith):
                yield Event("await", None, stmt)
            if item.optional_vars is not None:
                yield from _target_events(item.optional_vars)
    elif isinstance(
        stmt,
        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Import,
         ast.ImportFrom, ast.Global, ast.Nonlocal, ast.Pass, ast.Break,
         ast.Continue),
    ):
        return  # bindings handled by ReachingDefs; bodies run elsewhere
    else:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                yield from _expr_events(child)


def _target_events(target: ast.expr) -> Iterator[Event]:
    if isinstance(target, ast.Name):
        yield Event("store", target.id, target)
    elif isinstance(target, ast.Attribute):
        chain = dotted_chain(target)
        if chain is None:
            yield from _expr_events(target.value)
        else:
            # Writing a.b.c reads a and a.b first — but only to navigate.
            for prefix in _chain_prefixes(chain)[:-1]:
                yield Event("load", prefix, target, role="target")
            yield Event("store", chain, target)
    elif isinstance(target, ast.Subscript):
        # a[k] = v mutates a (and a stays the same object: load + store).
        chain = dotted_chain(target.value)
        if chain is not None:
            for prefix in _chain_prefixes(chain):
                yield Event("load", prefix, target, role="target")
        else:
            yield from _expr_events(target.value)
        yield from _expr_events(target.slice)
        if chain is not None:
            yield Event("store", chain, target)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_events(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_events(target.value)


def _expr_events(expr: ast.expr, force_load: bool = False) -> Iterator[Event]:
    if isinstance(expr, ast.Name):
        yield Event("load", expr.id, expr)
        return
    if isinstance(expr, ast.Attribute):
        chain = dotted_chain(expr)
        if chain is None:
            yield from _expr_events(expr.value)
            return
        for prefix in _chain_prefixes(chain):
            yield Event("load", prefix, expr)
        return
    if isinstance(expr, ast.Await):
        yield from _expr_events(expr.value)
        yield Event("await", None, expr)
        return
    if isinstance(expr, ast.Call):
        receiver_chain = None
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in MUTATING_METHODS
        ):
            receiver_chain = dotted_chain(expr.func.value)
        yield from _expr_events(expr.func)
        for arg in expr.args:
            yield from _expr_events(arg)
        for keyword in expr.keywords:
            yield from _expr_events(keyword.value)
        if receiver_chain is not None:
            yield Event("store", receiver_chain, expr)
        yield Event("call", None, expr)
        return
    if isinstance(expr, ast.NamedExpr):
        yield from _expr_events(expr.value)
        yield from _target_events(expr.target)
        return
    if isinstance(expr, ast.Lambda):
        return  # deferred: the body runs at call time, not here
    if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                         ast.GeneratorExp)):
        # Comprehensions run in their own scope; the outer code only
        # evaluates the first iterable eagerly.
        if expr.generators:
            yield from _expr_events(expr.generators[0].iter)
        return
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr):
            yield from _expr_events(child)


# ---------------------------------------------------------------------------
# Generic forward solver
# ---------------------------------------------------------------------------

#: A dataflow state: name -> set of facts.  Immutable values only.
State = Dict[str, FrozenSet]


class ForwardAnalysis:
    """Subclass hooks for :func:`solve_forward`.

    ``transfer`` must be pure (return a new state, never mutate the
    input) and monotone; the default join is key-wise set union, which
    fits any may-analysis over ``{name: frozenset}`` states.
    """

    def initial(self) -> State:
        return {}

    def join(self, states: List[State]) -> State:
        merged: Dict[str, FrozenSet] = {}
        for state in states:
            for key, value in state.items():
                if key in merged:
                    merged[key] = merged[key] | value
                else:
                    merged[key] = value
        return merged

    def transfer(self, block: Block, state: State) -> State:
        for element in block.elements:
            state = self.transfer_element(element, state)
        return state

    def transfer_element(self, element: Element, state: State) -> State:
        raise NotImplementedError


def solve_forward(cfg: CFG, analysis: ForwardAnalysis) -> Dict[int, State]:
    """In-state of every reachable block, computed to a fixpoint."""
    order = cfg.rpo()
    position = {bid: idx for idx, bid in enumerate(order)}
    in_states: Dict[int, State] = {cfg.entry: analysis.initial()}
    out_states: Dict[int, State] = {}
    pending = list(order)
    in_pending = set(pending)
    while pending:
        pending.sort(key=position.__getitem__)
        bid = pending.pop(0)
        in_pending.discard(bid)
        preds = [
            out_states[p]
            for p in cfg.block(bid).preds
            if p in out_states
        ]
        if bid == cfg.entry:
            preds.append(analysis.initial())
        if preds:
            in_state = analysis.join(preds)
        else:
            in_state = in_states.get(bid, analysis.initial())
        in_states[bid] = in_state
        new_out = analysis.transfer(cfg.block(bid), in_state)
        if out_states.get(bid) != new_out:
            out_states[bid] = new_out
            for succ in cfg.block(bid).succs:
                if succ in position and succ not in in_pending:
                    pending.append(succ)
                    in_pending.add(succ)
    return in_states


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Definition:
    """One binding site of a local name.

    ``value`` carries the bound expression (assignments) or the def
    node itself (``def``/``lambda``), letting rules inspect what a name
    can hold at a use site.  Identity for state comparison is the
    location triple — the AST node is excluded from hash/eq so states
    stay comparable across transfer reruns.
    """

    name: str
    kind: str  # assign | augassign | for | with | def | class | import | param | unpack | except
    lineno: int
    col: int
    value: Optional[ast.AST] = None

    def __hash__(self):
        return hash((self.name, self.kind, self.lineno, self.col))

    def __eq__(self, other):
        if not isinstance(other, Definition):
            return NotImplemented
        return (self.name, self.kind, self.lineno, self.col) == (
            other.name, other.kind, other.lineno, other.col
        )

    def sort_key(self):
        return (self.lineno, self.col, self.kind, self.name)


class ReachingDefs(ForwardAnalysis):
    """Which :class:`Definition`s can reach each block (strong updates
    for plain-name rebinds, union at joins)."""

    def __init__(self, func_node=None):
        self.func_node = func_node

    def initial(self) -> State:
        state: State = {}
        if self.func_node is not None:
            args = self.func_node.args
            every = (
                list(args.posonlyargs) + list(args.args)
                + ([args.vararg] if args.vararg else [])
                + list(args.kwonlyargs)
                + ([args.kwarg] if args.kwarg else [])
            )
            for arg in every:
                state[arg.arg] = frozenset({
                    Definition(arg.arg, "param", arg.lineno, arg.col_offset)
                })
        return state

    def transfer_element(self, element: Element, state: State) -> State:
        defs = list(definitions_of(element))
        if not defs:
            return state
        state = dict(state)
        for definition in defs:
            state[definition.name] = frozenset({definition})
        return state


def definitions_of(element: Element) -> Iterator[Definition]:
    """Every name binding an element performs."""
    if isinstance(element, BranchTest):
        yield from _walrus_defs(element.expr)
        return
    if isinstance(element, LoopHeader):
        node = element.node
        yield from _walrus_defs(node.iter)
        for name, target in _target_names(node.target):
            yield Definition(name, "for", target.lineno, target.col_offset,
                             value=node.iter)
        return
    stmt = element
    for expr in _stmt_exprs(stmt):
        yield from _walrus_defs(expr)
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            unpacking = not isinstance(target, (ast.Name, ast.Attribute,
                                                ast.Subscript))
            for name, node in _target_names(target):
                yield Definition(
                    name, "unpack" if unpacking else "assign",
                    node.lineno, node.col_offset,
                    value=None if unpacking else stmt.value,
                )
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        for name, node in _target_names(stmt.target):
            yield Definition(name, "assign", node.lineno, node.col_offset,
                             value=stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        for name, node in _target_names(stmt.target):
            yield Definition(name, "augassign", node.lineno, node.col_offset,
                             value=stmt)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name, node in _target_names(item.optional_vars):
                    yield Definition(name, "with", node.lineno,
                                     node.col_offset,
                                     value=item.context_expr)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        yield Definition(stmt.name, "def", stmt.lineno, stmt.col_offset,
                         value=stmt)
    elif isinstance(stmt, ast.ClassDef):
        yield Definition(stmt.name, "class", stmt.lineno, stmt.col_offset,
                         value=stmt)
    elif isinstance(stmt, ast.Import):
        for item in stmt.names:
            local = item.asname or item.name.split(".")[0]
            yield Definition(local, "import", stmt.lineno, stmt.col_offset)
    elif isinstance(stmt, ast.ImportFrom):
        for item in stmt.names:
            if item.name == "*":
                continue
            local = item.asname or item.name
            yield Definition(local, "import", stmt.lineno, stmt.col_offset)


def _stmt_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return  # walruses in their bodies bind in *their* scope
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield child


def _walrus_defs(expr: ast.expr) -> Iterator[Definition]:
    for node in ast.walk(expr):
        if isinstance(node, ast.NamedExpr) and isinstance(
            node.target, ast.Name
        ):
            yield Definition(
                node.target.id, "assign",
                node.target.lineno, node.target.col_offset,
                value=node.value,
            )


def _target_names(target: ast.expr) -> Iterator[Tuple[str, ast.expr]]:
    if isinstance(target, ast.Name):
        yield target.id, target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    # Attribute/Subscript targets bind no local name.


__all__ = [
    "Event",
    "iter_events",
    "dotted_chain",
    "MUTATING_METHODS",
    "ForwardAnalysis",
    "solve_forward",
    "State",
    "Definition",
    "ReachingDefs",
    "definitions_of",
]
