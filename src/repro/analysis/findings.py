"""Finding model for ``repro lint``.

A :class:`Finding` is one rule violation pinned to a source location.
Findings carry the *stripped source line* they fired on (``snippet``):
the baseline key is derived from ``(rule, path, snippet)`` rather than
the line number, so grandfathered findings survive unrelated edits that
shift lines, and resurface only when the offending code itself moves
between files or changes rule.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    snippet: str = ""

    def baseline_key(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        blob = f"{self.rule}\x1f{self.path}\x1f{self.snippet.strip()}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location()}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "key": self.baseline_key(),
        }


@dataclass
class FileReport:
    """All findings produced while analysing one file."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)
