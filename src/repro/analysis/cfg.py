"""Intraprocedural control-flow graphs for the flow-aware lint rules.

:func:`build_cfg` turns one function body into a graph of basic blocks.
A block holds *elements* in evaluation order — plain statements, plus
the test/iterable expressions of branching statements (an ``if``'s test
lives in the block that branches on it, a loop's header owns its test) —
so a forward dataflow pass that walks a block's elements sees values in
the order the interpreter computes them.

The graph is deliberately conservative where Python is dynamic:

* ``try`` bodies edge into every handler from every block of the body
  (an exception can surface anywhere inside), and ``finally`` bodies
  are on every exit path;
* ``break``/``continue``/``return``/``raise`` divert to the loop exit,
  loop header, or the synthetic exit block, leaving no fallthrough;
* short-circuit *expressions* (``and``/``or``/ternaries) stay inside a
  single element — the event extractor in :mod:`repro.analysis.dataflow`
  linearises them, which over-approximates "both sides evaluate" and is
  safe for the may-analyses built on top.

Block ids are assigned in construction order and every successor list
preserves insertion order, so two builds of the same tree are
identical — the determinism the lint gate itself is held to.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

#: What a block may contain: whole statements, or the controlling
#: expression of a branch/loop (annotated with its role).
Element = Union[ast.stmt, "BranchTest", "LoopHeader"]


@dataclass(frozen=True)
class BranchTest:
    """An ``if``/``while`` test (or ``assert`` condition) as an element."""

    expr: ast.expr


@dataclass(frozen=True)
class LoopHeader:
    """A ``for``/``async for`` header: iterable load + target store."""

    node: Union[ast.For, ast.AsyncFor]


@dataclass
class Block:
    """One basic block: elements plus ordered successor/predecessor ids."""

    bid: int
    elements: List[Element] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


class CFG:
    """Control-flow graph of one function (or module) body."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.entry = self._new_block().bid
        self.exit = self._new_block().bid  # synthetic; always empty

    # -- construction --------------------------------------------------

    def _new_block(self) -> Block:
        block = Block(bid=len(self.blocks))
        self.blocks.append(block)
        return block

    def _add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    # -- queries -------------------------------------------------------

    def block(self, bid: int) -> Block:
        return self.blocks[bid]

    def rpo(self) -> List[int]:
        """Reverse post-order from the entry (stable across builds)."""
        seen = set()
        order: List[int] = []

        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            bid, idx = stack[-1]
            succs = self.blocks[bid].succs
            if idx < len(succs):
                stack[-1] = (bid, idx + 1)
                nxt = succs[idx]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                order.append(bid)
                stack.pop()
        order.reverse()
        return order


class _LoopFrame:
    """Targets for break/continue while building a loop body."""

    def __init__(self, header: int, after: int):
        self.header = header
        self.after = after


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.loops: List[_LoopFrame] = []
        #: Handler-head block ids active for the statements being built;
        #: every block created under a ``try`` edges into each of these.
        self.handler_targets: List[List[int]] = []

    # ------------------------------------------------------------------

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        tail = self._stmts(body, self.cfg.entry)
        if tail is not None:
            self.cfg._add_edge(tail, self.cfg.exit)
        return self.cfg

    def _fresh(self) -> int:
        block = self.cfg._new_block()
        for heads in self.handler_targets:
            for head in heads:
                self.cfg._add_edge(block.bid, head)
        return block.bid

    def _stmts(self, body: Sequence[ast.stmt], current: int) -> Optional[int]:
        """Append *body* starting at block *current*; return the block
        execution falls out of, or None when every path diverts."""
        for stmt in body:
            if current is None:
                # Unreachable code after return/raise/break: still walk
                # it (rules should see it) from an orphan block.
                current = self._fresh()
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.stmt, current: int) -> Optional[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            cfg.block(current).elements.append(BranchTest(stmt.test))
            then_head = self._fresh()
            cfg._add_edge(current, then_head)
            then_tail = self._stmts(stmt.body, then_head)
            if stmt.orelse:
                else_head = self._fresh()
                cfg._add_edge(current, else_head)
                else_tail = self._stmts(stmt.orelse, else_head)
            else:
                else_tail = current
            if then_tail is None and else_tail is None:
                return None
            join = self._fresh()
            if then_tail is not None:
                cfg._add_edge(then_tail, join)
            if else_tail is not None:
                cfg._add_edge(else_tail, join)
            return join

        if isinstance(stmt, ast.While):
            header = self._fresh()
            cfg._add_edge(current, header)
            cfg.block(header).elements.append(BranchTest(stmt.test))
            after = self._fresh()
            body_head = self._fresh()
            cfg._add_edge(header, body_head)
            cfg._add_edge(header, after)
            self.loops.append(_LoopFrame(header, after))
            body_tail = self._stmts(stmt.body, body_head)
            self.loops.pop()
            if body_tail is not None:
                cfg._add_edge(body_tail, header)
            if stmt.orelse:
                else_head = self._fresh()
                # The else arm runs on normal loop exit; break jumps
                # straight to `after`, so both edges out of the header
                # stay (conservative).
                cfg._add_edge(header, else_head)
                else_tail = self._stmts(stmt.orelse, else_head)
                if else_tail is not None:
                    cfg._add_edge(else_tail, after)
            return after

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            header = self._fresh()
            cfg._add_edge(current, header)
            cfg.block(header).elements.append(LoopHeader(stmt))
            after = self._fresh()
            body_head = self._fresh()
            cfg._add_edge(header, body_head)
            cfg._add_edge(header, after)
            self.loops.append(_LoopFrame(header, after))
            body_tail = self._stmts(stmt.body, body_head)
            self.loops.pop()
            if body_tail is not None:
                cfg._add_edge(body_tail, header)
            if stmt.orelse:
                else_head = self._fresh()
                cfg._add_edge(header, else_head)
                else_tail = self._stmts(stmt.orelse, else_head)
                if else_tail is not None:
                    cfg._add_edge(else_tail, after)
            return after

        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cfg.block(current).elements.append(stmt)
            body_head = self._fresh()
            cfg._add_edge(current, body_head)
            return self._stmts(stmt.body, body_head)

        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.block(current).elements.append(stmt)
            cfg._add_edge(current, cfg.exit)
            return None

        if isinstance(stmt, ast.Break):
            cfg.block(current).elements.append(stmt)
            if self.loops:
                cfg._add_edge(current, self.loops[-1].after)
            return None

        if isinstance(stmt, ast.Continue):
            cfg.block(current).elements.append(stmt)
            if self.loops:
                cfg._add_edge(current, self.loops[-1].header)
            return None

        if isinstance(stmt, ast.Assert):
            cfg.block(current).elements.append(BranchTest(stmt.test))
            return current

        match_type = getattr(ast, "Match", None)
        if match_type is not None and isinstance(stmt, match_type):
            cfg.block(current).elements.append(
                BranchTest(stmt.subject)
            )
            join = self._fresh()
            fell_through = True
            for case in stmt.cases:
                case_head = self._fresh()
                cfg._add_edge(current, case_head)
                case_tail = self._stmts(case.body, case_head)
                if case_tail is not None:
                    cfg._add_edge(case_tail, join)
                if _is_wildcard_case(case):
                    fell_through = False
            if fell_through:
                cfg._add_edge(current, join)
            return join

        # Plain statement (incl. nested def/class, assignments, Expr…).
        cfg.block(current).elements.append(stmt)
        return current

    def _try(self, stmt: ast.Try, current: int) -> Optional[int]:
        cfg = self.cfg
        handler_heads = [self._fresh() for _ in stmt.handlers]
        # The exception can surface in the block *entering* the try too
        # (first statement of the body raises before any new block).
        body_head = self._fresh()
        cfg._add_edge(current, body_head)
        self.handler_targets.append(handler_heads)
        for head in handler_heads:
            cfg._add_edge(body_head, head)
        body_tail = self._stmts(stmt.body, body_head)
        self.handler_targets.pop()

        tails: List[int] = []
        if stmt.orelse:
            if body_tail is not None:
                else_head = self._fresh()
                cfg._add_edge(body_tail, else_head)
                else_tail = self._stmts(stmt.orelse, else_head)
                if else_tail is not None:
                    tails.append(else_tail)
        elif body_tail is not None:
            tails.append(body_tail)
        for head, handler in zip(handler_heads, stmt.handlers):
            handler_tail = self._stmts(handler.body, head)
            if handler_tail is not None:
                tails.append(handler_tail)

        if stmt.finalbody:
            final_head = self._fresh()
            for tail in tails:
                cfg._add_edge(tail, final_head)
            if not tails:
                # Every path diverted, but the finally still runs on the
                # way out; keep it reachable from the try entry.
                cfg._add_edge(current, final_head)
            return self._stmts(stmt.finalbody, final_head)
        if not tails:
            return None
        join = self._fresh()
        for tail in tails:
            cfg._add_edge(tail, join)
        return join


def _is_wildcard_case(case) -> bool:
    pattern = case.pattern
    capture = getattr(ast, "MatchAs", None)
    return (
        capture is not None
        and isinstance(pattern, capture)
        and pattern.pattern is None
        and case.guard is None
    )


def build_cfg(node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]) -> CFG:
    """CFG over *node*'s body (function bodies are the intended use)."""
    return _Builder().build(node.body)


__all__ = ["CFG", "Block", "BranchTest", "LoopHeader", "build_cfg"]
