"""The AST walk behind every lint rule.

One :class:`ModuleContext` is built per analysed file.  It owns the
parsed tree plus the derived facts rules keep needing:

* **alias resolution** — ``import numpy as np`` / ``from time import
  sleep`` are folded into a name map so :meth:`ModuleContext.resolve`
  turns a ``Call``'s func into a canonical dotted path (``numpy.random.
  default_rng``, ``time.sleep``) no matter how the module was imported;
* **scope tracking** — a stack of module/class/function frames, so rules
  can ask "am I inside an ``async def``?" (:attr:`in_async`) or "which
  class/method am I in?" without re-walking;
* **parent links** — ``parent(node)`` / ``ancestors(node)``, used by
  rules that care about *where* an expression sits (``open(...)`` as a
  ``with`` context manager vs. a bare call).

The :class:`Walker` drives a single pass over the tree, keeping the
scope stack current and dispatching each node to every active rule that
declared a ``visit_<NodeType>`` hook for it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .findings import Finding


@dataclass
class ScopeFrame:
    """One entry of the module/class/function scope stack."""

    kind: str  # "module" | "class" | "function" | "lambda"
    name: str
    node: ast.AST
    is_async: bool = False


class ModuleContext:
    """Everything rules can ask about the file being analysed."""

    def __init__(self, rel_path: str, source: str, tree: ast.Module, config):
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.findings: List[Finding] = []
        self._scratch: Dict[str, object] = {}
        self.scopes: List[ScopeFrame] = [
            ScopeFrame("module", rel_path, tree)
        ]
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self.aliases = _collect_aliases(tree)

    # -- findings ------------------------------------------------------

    def add_finding(self, finding: Finding) -> None:
        self.findings.append(finding)

    def scratch(self, key: str, default_factory):
        """Per-file scratch storage for rules that accumulate state."""
        if key not in self._scratch:
            self._scratch[key] = default_factory()
        return self._scratch[key]

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # -- scopes --------------------------------------------------------

    @property
    def current_function(self) -> Optional[ScopeFrame]:
        """Innermost function frame (lambdas excluded), or None."""
        for frame in reversed(self.scopes):
            if frame.kind == "function":
                return frame
        return None

    @property
    def current_class(self) -> Optional[ScopeFrame]:
        for frame in reversed(self.scopes):
            if frame.kind == "class":
                return frame
            if frame.kind == "module":
                return None
        return None

    @property
    def in_async(self) -> bool:
        """True when the innermost enclosing function is ``async def``.

        A sync helper nested inside an ``async def`` is *not* async —
        its body runs wherever it is called from, which the analyzer
        cannot see; only statements whose innermost function frame is
        async are reported by async-scoped rules.
        """
        frame = self.current_function
        return frame is not None and frame.is_async

    def qualname(self) -> str:
        """Dotted class/function path of the current scope."""
        parts = [f.name for f in self.scopes[1:] if f.kind != "lambda"]
        return ".".join(parts)

    # -- tree navigation ----------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    # -- name resolution ----------------------------------------------

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, or None.

        Resolution folds module aliases: with ``import numpy as np``,
        ``np.random.default_rng`` resolves to
        ``"numpy.random.default_rng"``; with ``from time import sleep as
        zzz``, ``zzz`` resolves to ``"time.sleep"``.  Chains rooted in
        anything but a plain name (call results, subscripts) resolve to
        None — use :func:`attr_name` for "method called on *something*".
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


def attr_name(func: ast.AST) -> Optional[str]:
    """Trailing attribute name of a call target (``x.y.close`` -> ``close``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def call_name(ctx: ModuleContext, node: ast.Call) -> Optional[str]:
    """Resolved dotted name of *node*'s callee (None when dynamic)."""
    return ctx.resolve(node.func)


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted path, from every import statement.

    Collection is flat (function-local imports land in the same map):
    precise per-scope shadowing is not worth the complexity for lint
    purposes, and the repo convention of module-style imports keeps
    collisions theoretical.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                aliases[local] = item.name if item.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: keep the local name
                continue
            module = node.module or ""
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                aliases[local] = f"{module}.{item.name}" if module else item.name
    return aliases


_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class Walker:
    """Single-pass dispatcher: one tree walk feeds every active rule."""

    def __init__(self, ctx: ModuleContext, rules: Sequence):
        self.ctx = ctx
        self._hooks: Dict[type, List] = {}
        for rule in rules:
            for node_type, hook in rule.hooks().items():
                self._hooks.setdefault(node_type, []).append(hook)

    def run(self) -> None:
        self._visit(self.ctx.tree)

    def _dispatch(self, node: ast.AST) -> None:
        for hook in self._hooks.get(type(node), ()):
            hook(node, self.ctx)

    def _visit(self, node: ast.AST) -> None:
        frame = self._frame_for(node)
        if frame is not None:
            self.ctx.scopes.append(frame)
        self._dispatch(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)
        if frame is not None:
            self.ctx.scopes.pop()

    @staticmethod
    def _frame_for(node: ast.AST) -> Optional[ScopeFrame]:
        if isinstance(node, _FUNCTION_NODES):
            return ScopeFrame(
                "function",
                node.name,
                node,
                is_async=isinstance(node, ast.AsyncFunctionDef),
            )
        if isinstance(node, ast.ClassDef):
            return ScopeFrame("class", node.name, node)
        if isinstance(node, ast.Lambda):
            return ScopeFrame("lambda", "<lambda>", node)
        return None
