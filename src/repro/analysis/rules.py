"""Lint-rule base class and registry.

Mirrors the :mod:`repro.api.passes` pass-registry idiom: every rule is a
stateless instance registered under a unique kebab-case id, and silent
shadowing is an error.  Rules hook into the AST walk by defining
``visit_<NodeType>`` methods (e.g. ``visit_Call``); the walker in
:mod:`repro.analysis.visitor` dispatches every node of a matching type
to every active rule.

Two ids are reserved for the engine itself (they have no AST hooks but
participate in selection, suppression checking and reporting):

* ``bad-suppression`` — a ``lint-ignore`` comment naming an unknown rule
  id, or missing its required justification;
* ``parse-error`` — a file the analyzer could not parse.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Tuple

from ..errors import LintError
from .findings import Finding

#: Engine-level finding ids (not AST rules, but selectable/reportable).
BAD_SUPPRESSION = "bad-suppression"
PARSE_ERROR = "parse-error"
META_RULE_IDS: Tuple[str, ...] = (BAD_SUPPRESSION, PARSE_ERROR)


class LintRule:
    """One named static-analysis rule.

    Subclasses set :attr:`rule_id` and :attr:`description`, then define
    ``visit_<NodeType>`` hooks.  Rules are stateless across files: all
    per-file state lives on the :class:`~repro.analysis.visitor.ModuleContext`
    handed to every hook (rules needing scratch state key it off the
    context via :meth:`ModuleContext.scratch`).
    """

    #: Registry id; kebab-case, must be unique.
    rule_id: str = ""
    #: One-line summary shown by ``repro lint --rules help`` and reports.
    description: str = ""
    #: Flow rules that resolve names across files set this; the runner
    #: then guarantees :meth:`analyze_module` receives a project index
    #: (a single-file one when linting in isolation, e.g. in fixtures).
    requires_project: bool = False

    def applies_to(self, rel_path: str, config) -> bool:
        """Whether this rule runs on *rel_path* at all (default: yes).

        Path-scoped rules (determinism, cache-discipline) override this
        so the walker skips their hooks entirely on out-of-scope files.
        """
        return True

    def hooks(self) -> Dict[type, Callable]:
        """Map AST node types to this rule's ``visit_*`` bound methods."""
        table: Dict[type, Callable] = {}
        for name in dir(self):
            if not name.startswith("visit_"):
                continue
            node_type = getattr(ast, name[len("visit_"):], None)
            if node_type is not None:
                table[node_type] = getattr(self, name)
        return table

    def analyze_module(self, ctx, project) -> None:
        """Whole-module pass run after the AST walk (flow rules).

        *project* is the :class:`~repro.analysis.callgraph.ProjectIndex`
        covering the lint run (or just this file when none was built).
        The default is a no-op; syntactic rules never override it.
        """

    def report(self, ctx, node: ast.AST, message: str) -> None:
        """Record a finding for *node* on the current file's context."""
        ctx.add_finding(
            Finding(
                rule=self.rule_id,
                path=ctx.rel_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                snippet=ctx.line_text(getattr(node, "lineno", 1)),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<rule {self.rule_id or type(self).__name__}>"


#: Global rule registry: rule id -> shared (stateless) rule instance.
RULE_REGISTRY: Dict[str, LintRule] = {}


def register_rule(rule: LintRule, *, replace: bool = False) -> LintRule:
    """Register *rule* under its :attr:`LintRule.rule_id`.

    Like :func:`repro.api.passes.register_pass`, double registration is
    an error unless ``replace=True``.
    """
    if not isinstance(rule, LintRule):
        raise LintError(f"register_rule needs a LintRule instance, got {rule!r}")
    if not rule.rule_id:
        raise LintError(f"rule {rule!r} has no rule_id")
    if rule.rule_id in META_RULE_IDS:
        raise LintError(f"rule id {rule.rule_id!r} is reserved by the engine")
    if rule.rule_id in RULE_REGISTRY and not replace:
        raise LintError(
            f"rule {rule.rule_id!r} is already registered "
            "(pass replace=True to override)"
        )
    RULE_REGISTRY[rule.rule_id] = rule
    return rule


def get_rule(rule_id: str) -> LintRule:
    """Look up a registered rule by id."""
    try:
        return RULE_REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(all_rule_ids())
        raise LintError(
            f"unknown lint rule {rule_id!r}; known rules: {known}"
        ) from None


def registered_rules() -> Tuple[str, ...]:
    """Ids of all registered AST rules, sorted."""
    return tuple(sorted(RULE_REGISTRY))


def all_rule_ids() -> Tuple[str, ...]:
    """Every id a finding or suppression may legally name."""
    return tuple(sorted((*RULE_REGISTRY, *META_RULE_IDS)))
