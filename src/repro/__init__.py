"""repro — Distributed Modulo Scheduling for clustered VLIW architectures.

A full reproduction of *"Distributed Modulo Scheduling"* (M. M. Fernandes,
J. Llosa, N. Topham, HPCA-5, 1999): the DMS algorithm, Rau's IMS baseline,
the clustered ring-of-CQRFs machine model, the IR transformations the
paper depends on (unrolling, single-use copy insertion), queue register
allocation, a validation simulator, VLIW code generation, and the
experiment harness regenerating the paper's figures 4-6.

Quickstart::

    from repro import make_kernel, clustered_vliw, compile_loop

    loop = make_kernel("fir_filter", taps=8)
    compiled = compile_loop(loop, clustered_vliw(4), equivalent_k=4)
    print(compiled.result.summary(), compiled.ipc)

Or, through the compilation-session API (pass pipeline, structured
reports, batch/parallel compilation with on-disk memoisation)::

    from repro import CompilationRequest, Toolchain, compile_many

    report = Toolchain.default().compile(
        CompilationRequest(loop=loop, machine=clustered_vliw(4), equivalent_k=4)
    )
    print(report.summary(), report.pass_seconds())
"""

from .config import DEFAULT_CONFIG, SchedulerConfig
from .errors import (
    AllocationError,
    CacheError,
    CodegenError,
    DDGError,
    IIOverflowError,
    MachineError,
    ReproError,
    SchedulingError,
    SimulationError,
    TargetError,
    ToolchainError,
    TransformError,
    ValidationError,
    WorkloadError,
)
from .ir import (
    DDG,
    DEFAULT_LATENCIES,
    DepEdge,
    DepKind,
    FUKind,
    LatencyModel,
    Loop,
    LoopBuilder,
    OpCode,
    Operation,
    ValueUse,
)
from .machine import (
    ClusterSpec,
    CommPath,
    CrossbarTopology,
    GraphTopology,
    LinearTopology,
    MachineSpec,
    MeshTopology,
    QueueFileSpec,
    RingTopology,
    Topology,
    TorusTopology,
    clustered_vliw,
    make_topology,
    paper_machine_pair,
    register_topology,
    topology_kinds,
    unclustered_vliw,
)
from .targets import (
    TargetSpec,
    get_target,
    load_target,
    register_target,
    resolve_target,
    save_target,
    target_names,
)
from .registers import allocate_queues, extract_lifetimes, register_pressure
from .scheduling import (
    DistributedModuloScheduler,
    IterativeModuloScheduler,
    ScheduleResult,
    check_schedule,
    compute_mii,
    validate_schedule,
)
from .scheduling.pipeline import CompiledLoop, choose_unroll_factor, compile_loop
from .api import (
    BatchCompiler,
    CompilationCache,
    CompilationReport,
    CompilationRequest,
    Pass,
    Toolchain,
    compile_many,
    register_pass,
    schedule_fingerprint,
)
from .simulator import simulate
from .codegen import assembly_for, build_program
from .validate import run_fuzz, verify_compiled, verify_loop
from .workloads import (
    KERNELS,
    PERFECT_CLUB_LOOP_COUNT,
    make_kernel,
    perfect_club_surrogate,
    split_sets,
    suite_stats,
)

__version__ = "1.1.0"

__all__ = [
    "DEFAULT_CONFIG",
    "SchedulerConfig",
    "AllocationError",
    "CacheError",
    "CodegenError",
    "DDGError",
    "IIOverflowError",
    "MachineError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "TargetError",
    "ToolchainError",
    "TransformError",
    "ValidationError",
    "WorkloadError",
    "DDG",
    "DEFAULT_LATENCIES",
    "DepEdge",
    "DepKind",
    "FUKind",
    "LatencyModel",
    "Loop",
    "LoopBuilder",
    "OpCode",
    "Operation",
    "ValueUse",
    "ClusterSpec",
    "CommPath",
    "CrossbarTopology",
    "GraphTopology",
    "LinearTopology",
    "MachineSpec",
    "MeshTopology",
    "QueueFileSpec",
    "RingTopology",
    "Topology",
    "TorusTopology",
    "clustered_vliw",
    "make_topology",
    "paper_machine_pair",
    "register_topology",
    "topology_kinds",
    "unclustered_vliw",
    "TargetSpec",
    "get_target",
    "load_target",
    "register_target",
    "resolve_target",
    "save_target",
    "target_names",
    "allocate_queues",
    "extract_lifetimes",
    "register_pressure",
    "DistributedModuloScheduler",
    "IterativeModuloScheduler",
    "ScheduleResult",
    "check_schedule",
    "compute_mii",
    "validate_schedule",
    "CompiledLoop",
    "choose_unroll_factor",
    "compile_loop",
    "BatchCompiler",
    "CompilationCache",
    "CompilationReport",
    "CompilationRequest",
    "Pass",
    "Toolchain",
    "compile_many",
    "register_pass",
    "schedule_fingerprint",
    "simulate",
    "assembly_for",
    "build_program",
    "run_fuzz",
    "verify_compiled",
    "verify_loop",
    "KERNELS",
    "PERFECT_CLUB_LOOP_COUNT",
    "make_kernel",
    "perfect_club_surrogate",
    "split_sets",
    "suite_stats",
    "__version__",
]
