"""Machine model: clusters, ring topology, queue register files."""

from .cluster import ClusterSpec, PAPER_CLUSTER
from .cqrf import CQRFId, LRFId, QueueFileId, QueueFileSpec, queue_file_for
from .fu import FUSlot, fu_name
from .machine import (
    MachineSpec,
    PAPER_CLUSTER_RANGE,
    clustered_vliw,
    paper_machine_pair,
    unclustered_vliw,
)
from .topology import LinearTopology, RingPath, RingTopology

__all__ = [
    "ClusterSpec",
    "PAPER_CLUSTER",
    "CQRFId",
    "LRFId",
    "QueueFileId",
    "QueueFileSpec",
    "queue_file_for",
    "FUSlot",
    "fu_name",
    "MachineSpec",
    "PAPER_CLUSTER_RANGE",
    "clustered_vliw",
    "paper_machine_pair",
    "unclustered_vliw",
    "LinearTopology",
    "RingPath",
    "RingTopology",
]
