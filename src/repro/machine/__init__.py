"""Machine model: clusters, pluggable interconnect topologies, queue files."""

from .cluster import ClusterSpec, PAPER_CLUSTER
from .cqrf import CQRFId, LRFId, QueueFileId, QueueFileSpec, queue_file_for
from .fu import FUSlot, fu_name
from .machine import (
    MachineSpec,
    PAPER_CLUSTER_RANGE,
    clustered_vliw,
    paper_machine_pair,
    unclustered_vliw,
)
from .topology import (
    CommPath,
    CrossbarTopology,
    GraphTopology,
    LinearTopology,
    MeshTopology,
    RingPath,
    RingTopology,
    Topology,
    TorusTopology,
    make_topology,
    register_topology,
    topology_kinds,
)

__all__ = [
    "ClusterSpec",
    "PAPER_CLUSTER",
    "CQRFId",
    "LRFId",
    "QueueFileId",
    "QueueFileSpec",
    "queue_file_for",
    "FUSlot",
    "fu_name",
    "MachineSpec",
    "PAPER_CLUSTER_RANGE",
    "clustered_vliw",
    "paper_machine_pair",
    "unclustered_vliw",
    "CommPath",
    "CrossbarTopology",
    "GraphTopology",
    "LinearTopology",
    "MeshTopology",
    "RingPath",
    "RingTopology",
    "Topology",
    "TorusTopology",
    "make_topology",
    "register_topology",
    "topology_kinds",
]
