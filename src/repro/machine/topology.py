"""Bi-directional ring topology connecting clusters.

The paper's machine connects clusters "in a bi-directional ring topology"
(figure 1).  Two clusters are *directly connected* when their ring distance
is at most one; a flow-dependent producer/consumer pair placed on
indirectly connected clusters is a **communication conflict**, and DMS must
either avoid it or bridge it with a chain of moves along one of the two
ring directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import MachineError


@dataclass(frozen=True)
class RingPath:
    """One direction around the ring from a producer to a consumer cluster.

    Attributes:
        clusters: the full hop sequence, endpoints included.
        direction: +1 for increasing cluster index, -1 for decreasing.
    """

    clusters: Tuple[int, ...]
    direction: int

    @property
    def hops(self) -> int:
        """Number of cluster-to-cluster hops."""
        return len(self.clusters) - 1

    @property
    def intermediates(self) -> Tuple[int, ...]:
        """Clusters strictly between the endpoints (where moves live)."""
        return self.clusters[1:-1]

    @property
    def n_moves(self) -> int:
        """Move operations needed to bridge this path."""
        return max(0, self.hops - 1)


class RingTopology:
    """Distance/adjacency/path queries on a ring of *n* clusters."""

    def __init__(self, n_clusters: int):
        if n_clusters < 1:
            raise MachineError(f"ring needs >= 1 cluster, got {n_clusters}")
        self.n_clusters = n_clusters

    def _check(self, cluster: int) -> None:
        if not 0 <= cluster < self.n_clusters:
            raise MachineError(
                f"cluster {cluster} out of range [0, {self.n_clusters})"
            )

    def distance(self, a: int, b: int) -> int:
        """Minimum hop count between clusters *a* and *b*."""
        self._check(a)
        self._check(b)
        forward = (b - a) % self.n_clusters
        return min(forward, self.n_clusters - forward)

    def adjacent(self, a: int, b: int) -> bool:
        """True when *a* and *b* are directly connected (distance <= 1)."""
        return self.distance(a, b) <= 1

    def neighbors(self, cluster: int) -> Tuple[int, ...]:
        """Clusters directly reachable from *cluster* (excluding itself)."""
        self._check(cluster)
        if self.n_clusters == 1:
            return ()
        left = (cluster - 1) % self.n_clusters
        right = (cluster + 1) % self.n_clusters
        if left == right:
            return (left,)
        return tuple(sorted((left, right)))

    def directed_pairs(self) -> List[Tuple[int, int]]:
        """All ordered adjacent pairs (one CQRF per pair and direction)."""
        pairs = []
        for c in range(self.n_clusters):
            for d in self.neighbors(c):
                pairs.append((c, d))
        return sorted(pairs)

    def path(self, src: int, dst: int, direction: int) -> RingPath:
        """The path from *src* to *dst* going in *direction* (+1/-1)."""
        self._check(src)
        self._check(dst)
        if direction not in (1, -1):
            raise MachineError(f"direction must be +1 or -1, got {direction}")
        clusters = [src]
        current = src
        while current != dst:
            current = (current + direction) % self.n_clusters
            clusters.append(current)
            if len(clusters) > self.n_clusters:
                raise MachineError("ring path failed to terminate")
        return RingPath(tuple(clusters), direction)

    def paths(self, src: int, dst: int) -> List[RingPath]:
        """Distinct simple paths from *src* to *dst* (at most two).

        For ``src == dst`` the only path is the trivial one.  On very small
        rings the two directions can traverse identical cluster sequences;
        duplicates are removed so chain planning never explores the same
        option twice.
        """
        if src == dst:
            return [RingPath((src,), 1)]
        forward = self.path(src, dst, 1)
        backward = self.path(src, dst, -1)
        if forward.clusters == backward.clusters:
            # Two-cluster ring: both directions traverse the same hop.
            return [forward]
        result = [forward, backward]
        result.sort(key=lambda p: (p.hops, -p.direction))
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RingTopology({self.n_clusters})"


class LinearTopology(RingTopology):
    """A linear cluster array: the ring without the wraparound link.

    The paper argues DMS suits any clustered machine with fixed-timing
    neighbour links and few chain paths; a linear array is the simplest
    such alternative — exactly one path between any two clusters, and
    longer average distances than the ring (no shortcut across the
    ends).  Used by the topology ablation to show what the
    bi-directional ring buys.
    """

    def distance(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return abs(a - b)

    def neighbors(self, cluster: int) -> Tuple[int, ...]:
        self._check(cluster)
        return tuple(
            c for c in (cluster - 1, cluster + 1) if 0 <= c < self.n_clusters
        )

    def path(self, src: int, dst: int, direction: int) -> RingPath:
        self._check(src)
        self._check(dst)
        if direction not in (1, -1):
            raise MachineError(f"direction must be +1 or -1, got {direction}")
        step = 1 if dst > src else -1
        if src != dst and direction != step:
            raise MachineError(
                f"no linear path from {src} to {dst} in direction {direction}"
            )
        clusters = tuple(range(src, dst + step, step)) if src != dst else (src,)
        return RingPath(clusters, direction)

    def paths(self, src: int, dst: int) -> List[RingPath]:
        if src == dst:
            return [RingPath((src,), 1)]
        step = 1 if dst > src else -1
        return [self.path(src, dst, step)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearTopology({self.n_clusters})"
