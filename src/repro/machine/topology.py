"""Cluster interconnect topologies: protocol, registry and implementations.

The paper's machine connects clusters "in a bi-directional ring topology"
(figure 1), but closes by noting DMS "could also be used with other
clustered VLIW architectures".  This module generalises the target layer
accordingly:

* :class:`CommPath` — a topology-neutral hop sequence between a producer
  and a consumer cluster (what a chain of moves bridges);
* :class:`Topology` — the protocol every interconnect implements
  (``distance``, ``neighbors``, ``paths``, ``adjacent``,
  ``directed_pairs``), with a generic bounded shortest-path enumerator;
* :func:`register_topology` — the registry behind
  ``MachineSpec.topology_kind``: adding an interconnect is one class
  definition plus one decorator, and machine validation, CLI listings and
  the cross-topology tests all pick it up automatically;
* concrete topologies — the paper's bi-directional :class:`RingTopology`,
  the ablation's :class:`LinearTopology`, plus :class:`MeshTopology`,
  :class:`TorusTopology`, :class:`CrossbarTopology` and the
  edge-list-driven :class:`GraphTopology` (BFS distances, for irregular
  interconnects described in target files).

Two clusters are *directly connected* when their distance is at most one;
a flow-dependent producer/consumer pair placed on indirectly connected
clusters is a **communication conflict**, and DMS must either avoid it or
bridge it with a chain of moves along one of the paths enumerated here.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Type

from ..errors import MachineError


@dataclass(frozen=True)
class CommPath:
    """A hop sequence from a producer to a consumer cluster.

    Attributes:
        clusters: the full hop sequence, endpoints included.
        direction: +1/-1 traversal tag on ring-like topologies (the two
            ring directions of the paper); +1 on topologies where the
            notion does not apply.
    """

    clusters: Tuple[int, ...]
    direction: int = 1

    @property
    def hops(self) -> int:
        """Number of cluster-to-cluster hops."""
        return len(self.clusters) - 1

    @property
    def intermediates(self) -> Tuple[int, ...]:
        """Clusters strictly between the endpoints (where moves live)."""
        return self.clusters[1:-1]

    @property
    def n_moves(self) -> int:
        """Move operations needed to bridge this path."""
        return max(0, self.hops - 1)


#: Backwards-compatible alias (the pre-registry name of the path type).
RingPath = CommPath


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------


class Topology:
    """Distance/adjacency/path queries on an interconnect of *n* clusters.

    Subclasses must set :attr:`kind` (the registry name), implement
    :meth:`neighbors` and :meth:`distance`, and may override
    :meth:`paths` when the generic bounded shortest-path enumeration is
    not what the interconnect wants (the ring explores *both* directions,
    including the longer one).
    """

    #: Registry name; subclasses must override.
    kind: str = ""

    #: Bound on the simple paths :meth:`paths` enumerates per pair.
    max_paths: int = 4

    def __init__(self, n_clusters: int):
        if n_clusters < 1:
            raise MachineError(
                f"{type(self).__name__} needs >= 1 cluster, got {n_clusters}"
            )
        self.n_clusters = n_clusters

    # -- construction / serialisation ----------------------------------

    @classmethod
    def from_params(
        cls, n_clusters: int, params: Optional[Mapping[str, object]] = None
    ) -> "Topology":
        """Build an instance from registry parameters (target files)."""
        return cls(n_clusters, **dict(params or {}))

    def params(self) -> Dict[str, object]:
        """The (serialisable) parameters this instance was built from."""
        return {}

    # -- queries --------------------------------------------------------

    def _check(self, cluster: int) -> None:
        if not 0 <= cluster < self.n_clusters:
            raise MachineError(
                f"cluster {cluster} out of range [0, {self.n_clusters})"
            )

    def distance(self, a: int, b: int) -> int:
        """Minimum hop count between clusters *a* and *b*."""
        raise NotImplementedError

    def neighbors(self, cluster: int) -> Tuple[int, ...]:
        """Clusters directly reachable from *cluster* (excluding itself),
        in ascending order."""
        raise NotImplementedError

    def adjacent(self, a: int, b: int) -> bool:
        """True when *a* and *b* are directly connected (distance <= 1)."""
        return self.distance(a, b) <= 1

    def comm_latency(self, a: int, b: int) -> int:
        """Extra cycles a value spends crossing the link ``a -> b``.

        The paper's CQRF model makes near-neighbour communication free
        (the producer writes straight into the communication queue and
        the consumer reads it as a normal operand), so the default is 0
        for any directly connected pair.  A registered topology with
        slower links can override this; both the schedule checker and
        the timing simulator consume it through
        :func:`repro.scheduling.timing.edge_ready_latency`, so the two
        can never disagree on link cost.
        """
        self._check(a)
        self._check(b)
        return 0

    # -- cached aggregate views ----------------------------------------
    #
    # Topology instances are memoised per (kind, n_clusters, params) by
    # :func:`make_topology`, so these build exactly once per machine and
    # turn the per-query virtual ``distance()`` calls on scheduler hot
    # paths into tuple indexing / frozenset intersection.

    def distance_matrix(self) -> Tuple[Tuple[int, ...], ...]:
        """``matrix[a][b] == distance(a, b)`` for every cluster pair."""
        cached = self.__dict__.get("_distance_matrix")
        if cached is None:
            n = self.n_clusters
            cached = tuple(
                tuple(self.distance(a, b) for b in range(n)) for a in range(n)
            )
            self.__dict__["_distance_matrix"] = cached
        return cached

    def compat_sets(self) -> Tuple[frozenset, ...]:
        """``compat_sets()[p]`` = clusters *c* with ``distance(p, c) <= 1``
        (p itself included): where a *consumer* may sit relative to a
        producer placed on *p* without a communication conflict."""
        cached = self.__dict__.get("_compat_sets")
        if cached is None:
            matrix = self.distance_matrix()
            cached = tuple(
                frozenset(b for b, d in enumerate(row) if d <= 1)
                for row in matrix
            )
            self.__dict__["_compat_sets"] = cached
        return cached

    def compat_sets_in(self) -> Tuple[frozenset, ...]:
        """``compat_sets_in()[s]`` = clusters *c* with ``distance(c, s) <= 1``:
        where a *producer* may sit relative to a consumer placed on *s*.
        Equal to :meth:`compat_sets` on symmetric interconnects (all the
        built-ins), but kept direction-aware so a registered topology with
        asymmetric link distances is still judged per edge direction."""
        cached = self.__dict__.get("_compat_sets_in")
        if cached is None:
            matrix = self.distance_matrix()
            n = self.n_clusters
            cached = tuple(
                frozenset(a for a in range(n) if matrix[a][b] <= 1)
                for b in range(n)
            )
            self.__dict__["_compat_sets_in"] = cached
        return cached

    def paths_cached(self, src: int, dst: int) -> List[CommPath]:
        """Memoised :meth:`paths`.

        Chain planning asks for the same (src, dst) pair once per
        candidate combo; topologies are immutable, so the enumeration is
        computed once per pair per instance.  Callers must not mutate the
        returned list.
        """
        cache = self.__dict__.setdefault("_paths_cache", {})
        key = (src, dst)
        paths = cache.get(key)
        if paths is None:
            paths = cache[key] = self.paths(src, dst)
        return paths

    def directed_pairs(self) -> List[Tuple[int, int]]:
        """All ordered adjacent pairs (one CQRF per pair and direction)."""
        pairs = []
        for c in range(self.n_clusters):
            for d in self.neighbors(c):
                pairs.append((c, d))
        return sorted(pairs)

    def paths(self, src: int, dst: int) -> List[CommPath]:
        """Distinct simple paths from *src* to *dst* for chain planning.

        The generic implementation enumerates shortest paths only, in
        lexicographic hop order, capped at :attr:`max_paths` so chain
        planning stays tractable on path-rich interconnects (a mesh
        corner pair alone has binomially many shortest routes).
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return [CommPath((src,), 1)]
        found: List[CommPath] = []

        def extend(prefix: List[int]) -> None:
            if len(found) >= self.max_paths:
                return
            current = prefix[-1]
            if current == dst:
                found.append(CommPath(tuple(prefix), 1))
                return
            remaining = self.distance(current, dst)
            for nxt in self.neighbors(current):
                if self.distance(nxt, dst) == remaining - 1:
                    extend(prefix + [nxt])

        extend([src])
        return found

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.n_clusters})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


#: kind -> topology class.  Populated by :func:`register_topology`.
TOPOLOGY_REGISTRY: Dict[str, Type[Topology]] = {}


def register_topology(cls: Optional[Type[Topology]] = None, *, replace: bool = False):
    """Class decorator registering a :class:`Topology` under its ``kind``.

    Registering a kind twice is an error unless ``replace=True`` — two
    interconnects silently shadowing each other is exactly the drift the
    registry exists to prevent.
    """

    def _register(topology_cls: Type[Topology]) -> Type[Topology]:
        if not (isinstance(topology_cls, type) and issubclass(topology_cls, Topology)):
            raise MachineError(
                f"register_topology needs a Topology subclass, got {topology_cls!r}"
            )
        kind = topology_cls.kind
        if not kind:
            raise MachineError(f"topology {topology_cls.__name__} has no kind")
        if kind in TOPOLOGY_REGISTRY and not replace:
            raise MachineError(
                f"topology kind {kind!r} is already registered "
                "(pass replace=True to override)"
            )
        TOPOLOGY_REGISTRY[kind] = topology_cls
        _cached_topology.cache_clear()
        return topology_cls

    return _register(cls) if cls is not None else _register


def topology_kinds() -> Tuple[str, ...]:
    """All registered topology kinds, sorted."""
    return tuple(sorted(TOPOLOGY_REGISTRY))


def freeze_params(params: Optional[Mapping[str, object]]) -> Tuple[Tuple[str, object], ...]:
    """Canonical hashable form of a topology-parameter mapping."""

    def _freeze(value: object) -> object:
        if isinstance(value, (list, tuple)):
            return tuple(_freeze(v) for v in value)
        if isinstance(value, (int, str)):
            return value
        raise MachineError(
            f"unsupported topology parameter value {value!r} "
            "(only ints, strings and nested lists are serialisable)"
        )

    if not params:
        return ()
    return tuple(sorted((str(k), _freeze(v)) for k, v in dict(params).items()))


def thaw_params(frozen: Tuple[Tuple[str, object], ...]) -> Dict[str, object]:
    """Inverse of :func:`freeze_params` (tuples stay tuples)."""
    return dict(frozen)


@functools.lru_cache(maxsize=None)
def _cached_topology(
    kind: str, n_clusters: int, frozen: Tuple[Tuple[str, object], ...]
) -> Topology:
    cls = TOPOLOGY_REGISTRY.get(kind)
    if cls is None:
        raise MachineError(
            f"unknown topology {kind!r}; registered: {topology_kinds()}"
        )
    try:
        return cls.from_params(n_clusters, thaw_params(frozen))
    except MachineError:
        raise
    except (TypeError, ValueError, ZeroDivisionError) as err:
        # A typo'd or malformed parameter set must surface as a machine
        # description error, not a raw traceback out of a constructor.
        raise MachineError(
            f"invalid parameters {thaw_params(frozen)!r} for topology "
            f"{kind!r}: {err}"
        ) from err


def make_topology(
    kind: str,
    n_clusters: int,
    params: Optional[Mapping[str, object]] = None,
) -> Topology:
    """Instantiate the registered topology *kind* for *n_clusters*.

    Instances are immutable and memoised, so ``machine.topology`` stays
    cheap on scheduler hot paths.
    """
    frozen = params if isinstance(params, tuple) else freeze_params(params)
    return _cached_topology(kind, n_clusters, frozen)


# ----------------------------------------------------------------------
# The paper's interconnects: bi-directional ring and linear array
# ----------------------------------------------------------------------


@register_topology
class RingTopology(Topology):
    """The paper's bi-directional ring (figure 1): every cluster has a
    left and a right neighbour, and every far pair has exactly two
    candidate chain paths (one per direction)."""

    kind = "ring"

    def distance(self, a: int, b: int) -> int:
        """Minimum hop count between clusters *a* and *b*."""
        self._check(a)
        self._check(b)
        forward = (b - a) % self.n_clusters
        return min(forward, self.n_clusters - forward)

    def neighbors(self, cluster: int) -> Tuple[int, ...]:
        """Clusters directly reachable from *cluster* (excluding itself)."""
        self._check(cluster)
        if self.n_clusters == 1:
            return ()
        left = (cluster - 1) % self.n_clusters
        right = (cluster + 1) % self.n_clusters
        if left == right:
            return (left,)
        return tuple(sorted((left, right)))

    def path(self, src: int, dst: int, direction: int) -> CommPath:
        """The path from *src* to *dst* going in *direction* (+1/-1)."""
        self._check(src)
        self._check(dst)
        if direction not in (1, -1):
            raise MachineError(f"direction must be +1 or -1, got {direction}")
        clusters = [src]
        current = src
        while current != dst:
            current = (current + direction) % self.n_clusters
            clusters.append(current)
            if len(clusters) > self.n_clusters:
                raise MachineError("ring path failed to terminate")
        return CommPath(tuple(clusters), direction)

    def paths(self, src: int, dst: int) -> List[CommPath]:
        """Distinct simple paths from *src* to *dst* (at most two).

        For ``src == dst`` the only path is the trivial one.  On very small
        rings the two directions can traverse identical cluster sequences;
        duplicates are removed so chain planning never explores the same
        option twice.
        """
        if src == dst:
            return [CommPath((src,), 1)]
        forward = self.path(src, dst, 1)
        backward = self.path(src, dst, -1)
        if forward.clusters == backward.clusters:
            # Two-cluster ring: both directions traverse the same hop.
            return [forward]
        result = [forward, backward]
        result.sort(key=lambda p: (p.hops, -p.direction))
        return result


@register_topology
class LinearTopology(RingTopology):
    """A linear cluster array: the ring without the wraparound link.

    The paper argues DMS suits any clustered machine with fixed-timing
    neighbour links and few chain paths; a linear array is the simplest
    such alternative — exactly one path between any two clusters, and
    longer average distances than the ring (no shortcut across the
    ends).  Used by the topology ablation to show what the
    bi-directional ring buys.
    """

    kind = "linear"

    def distance(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return abs(a - b)

    def neighbors(self, cluster: int) -> Tuple[int, ...]:
        self._check(cluster)
        return tuple(
            c for c in (cluster - 1, cluster + 1) if 0 <= c < self.n_clusters
        )

    def path(self, src: int, dst: int, direction: int) -> CommPath:
        self._check(src)
        self._check(dst)
        if direction not in (1, -1):
            raise MachineError(f"direction must be +1 or -1, got {direction}")
        step = 1 if dst > src else -1
        if src != dst and direction != step:
            raise MachineError(
                f"no linear path from {src} to {dst} in direction {direction}"
            )
        clusters = tuple(range(src, dst + step, step)) if src != dst else (src,)
        return CommPath(clusters, direction)

    def paths(self, src: int, dst: int) -> List[CommPath]:
        if src == dst:
            return [CommPath((src,), 1)]
        step = 1 if dst > src else -1
        return [self.path(src, dst, step)]


# ----------------------------------------------------------------------
# CGRA-style interconnects: mesh, torus, crossbar
# ----------------------------------------------------------------------


def _factorize_near_square(n: int) -> Tuple[int, int]:
    """(rows, cols) with ``rows * cols == n`` and rows as close to
    ``sqrt(n)`` as divisibility allows (rows <= cols)."""
    rows = max(1, int(n ** 0.5))
    while n % rows:
        rows -= 1
    return rows, n // rows


@register_topology
class MeshTopology(Topology):
    """A 2D mesh: cluster ``r * cols + c`` links to its four grid
    neighbours (no wraparound).  The interconnect of the CGRA
    modulo-scheduling line of work (SAT-MapIt and successors)."""

    kind = "mesh"

    def __init__(self, n_clusters: int, rows: Optional[int] = None, cols: Optional[int] = None):
        super().__init__(n_clusters)
        if rows is not None and int(rows) < 1 or cols is not None and int(cols) < 1:
            raise MachineError(
                f"{self.kind} rows/cols must be >= 1, got rows={rows} cols={cols}"
            )
        if rows is None and cols is None:
            rows, cols = _factorize_near_square(n_clusters)
        elif rows is None:
            rows, cols = n_clusters // int(cols), int(cols)
        elif cols is None:
            rows, cols = int(rows), n_clusters // int(rows)
        rows, cols = int(rows), int(cols)
        if rows < 1 or cols < 1 or rows * cols != n_clusters:
            raise MachineError(
                f"{self.kind} shape {rows}x{cols} does not tile "
                f"{n_clusters} clusters"
            )
        self.rows = rows
        self.cols = cols

    def params(self) -> Dict[str, object]:
        return {"rows": self.rows, "cols": self.cols}

    def _coords(self, cluster: int) -> Tuple[int, int]:
        return divmod(cluster, self.cols)

    def distance(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        ra, ca = self._coords(a)
        rb, cb = self._coords(b)
        return abs(ra - rb) + abs(ca - cb)

    def neighbors(self, cluster: int) -> Tuple[int, ...]:
        self._check(cluster)
        r, c = self._coords(cluster)
        out = []
        if r > 0:
            out.append(cluster - self.cols)
        if r < self.rows - 1:
            out.append(cluster + self.cols)
        if c > 0:
            out.append(cluster - 1)
        if c < self.cols - 1:
            out.append(cluster + 1)
        return tuple(sorted(out))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.rows}x{self.cols})"


@register_topology
class TorusTopology(MeshTopology):
    """A 2D torus: the mesh with wraparound links on both axes, halving
    worst-case distances exactly as the ring does for the linear array."""

    kind = "torus"

    def distance(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        ra, ca = self._coords(a)
        rb, cb = self._coords(b)
        dr = abs(ra - rb)
        dc = abs(ca - cb)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)

    def neighbors(self, cluster: int) -> Tuple[int, ...]:
        self._check(cluster)
        r, c = self._coords(cluster)
        out = {
            ((r - 1) % self.rows) * self.cols + c,
            ((r + 1) % self.rows) * self.cols + c,
            r * self.cols + (c - 1) % self.cols,
            r * self.cols + (c + 1) % self.cols,
        }
        out.discard(cluster)
        return tuple(sorted(out))


@register_topology
class CrossbarTopology(Topology):
    """A full crossbar: every cluster pair is directly connected, so no
    communication conflict can ever arise and DMS never builds a chain.
    The upper bound of the interconnect ablation (and the closest
    clustered analogue of the unclustered reference machine)."""

    kind = "crossbar"

    def distance(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return 0 if a == b else 1

    def neighbors(self, cluster: int) -> Tuple[int, ...]:
        self._check(cluster)
        return tuple(c for c in range(self.n_clusters) if c != cluster)

    def paths(self, src: int, dst: int) -> List[CommPath]:
        self._check(src)
        self._check(dst)
        if src == dst:
            return [CommPath((src,), 1)]
        return [CommPath((src, dst), 1)]


# ----------------------------------------------------------------------
# Explicit edge-list interconnects (target files)
# ----------------------------------------------------------------------


@register_topology
class GraphTopology(Topology):
    """An interconnect given as an explicit undirected edge list.

    This is the generic graph-backed implementation behind custom target
    files: distances come from per-source BFS, chain paths from the
    bounded shortest-path enumeration of the base protocol.  With no
    ``edges`` parameter it defaults to a ring, so every registry consumer
    (sweeps, property tests) can instantiate it for any cluster count.
    """

    kind = "graph"

    def __init__(self, n_clusters: int, edges: Optional[Tuple[Tuple[int, int], ...]] = None):
        super().__init__(n_clusters)
        if edges is None:
            edges = tuple(
                (c, (c + 1) % n_clusters) for c in range(n_clusters) if n_clusters > 1
            )
        adjacency: Dict[int, set] = {c: set() for c in range(n_clusters)}
        canonical = set()
        for edge in edges:
            if len(edge) != 2:
                raise MachineError(f"graph edge {edge!r} is not a pair")
            a, b = int(edge[0]), int(edge[1])
            self._check(a)
            self._check(b)
            if a == b:
                raise MachineError(f"graph edge ({a}, {b}) is a self-loop")
            adjacency[a].add(b)
            adjacency[b].add(a)
            canonical.add((min(a, b), max(a, b)))
        self.edges: Tuple[Tuple[int, int], ...] = tuple(sorted(canonical))
        self._adjacency = {c: tuple(sorted(adjacency[c])) for c in adjacency}
        self._dist: Dict[int, Tuple[int, ...]] = {}
        if n_clusters > 1:
            unreachable = [
                c for c, d in enumerate(self._bfs(0)) if d >= n_clusters
            ]
            if unreachable:
                raise MachineError(
                    f"graph topology is disconnected: clusters {unreachable} "
                    "unreachable from cluster 0"
                )

    def params(self) -> Dict[str, object]:
        return {"edges": self.edges}

    def _bfs(self, src: int) -> Tuple[int, ...]:
        cached = self._dist.get(src)
        if cached is not None:
            return cached
        dist = [self.n_clusters] * self.n_clusters  # n = "unreachable"
        dist[src] = 0
        frontier = [src]
        while frontier:
            nxt = []
            for node in frontier:
                for neighbor in self._adjacency[node]:
                    if dist[neighbor] > dist[node] + 1:
                        dist[neighbor] = dist[node] + 1
                        nxt.append(neighbor)
            frontier = nxt
        table = tuple(dist)
        self._dist[src] = table
        return table

    def distance(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return self._bfs(a)[b]

    def neighbors(self, cluster: int) -> Tuple[int, ...]:
        self._check(cluster)
        return self._adjacency[cluster]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphTopology({self.n_clusters}, edges={len(self.edges)})"
