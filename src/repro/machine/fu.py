"""Functional-unit naming helpers shared by codegen and traces."""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.opcodes import FUKind


@dataclass(frozen=True)
class FUSlot:
    """A concrete functional unit: (cluster, kind, instance index)."""

    cluster: int
    kind: FUKind
    index: int

    def __str__(self) -> str:
        return f"c{self.cluster}.{self.kind.value}{self.index}"

    @property
    def sort_key(self) -> tuple:
        order = {FUKind.MEM: 0, FUKind.ALU: 1, FUKind.MUL: 2, FUKind.COPY: 3}
        return (self.cluster, order[self.kind], self.index)


def fu_name(cluster: int, kind: FUKind, index: int) -> str:
    """Printable name of a functional unit instance."""
    return str(FUSlot(cluster, kind, index))
