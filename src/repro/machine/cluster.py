"""Cluster descriptors: the functional units of one cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

from ..errors import MachineError
from ..ir.opcodes import FUKind, USEFUL_FU_KINDS
from .cqrf import QueueFileSpec


@dataclass(frozen=True)
class ClusterSpec:
    """Functional units and local storage of a single cluster.

    The paper's configuration is one Load/Store, one Add and one Mul unit
    plus one Copy FU per cluster; other mixes are expressible for
    ablations ("that could be improved with additional hardware support").
    """

    mem: int = 1
    alu: int = 1
    mul: int = 1
    copy: int = 1
    lrf: QueueFileSpec = field(default_factory=QueueFileSpec)

    def __post_init__(self) -> None:
        for name in ("mem", "alu", "mul", "copy"):
            if getattr(self, name) < 0:
                raise MachineError(f"negative {name} FU count")
        if self.mem + self.alu + self.mul == 0:
            raise MachineError("a cluster needs at least one useful FU")
        # fu_count sits on MRT/scheduler hot paths; build the lookup once
        # instead of a dict per call.
        object.__setattr__(
            self,
            "_fu_counts",
            {
                FUKind.MEM: self.mem,
                FUKind.ALU: self.alu,
                FUKind.MUL: self.mul,
                FUKind.COPY: self.copy,
            },
        )

    def fu_count(self, kind: FUKind) -> int:
        """Number of units of *kind* in this cluster."""
        return self._fu_counts[kind]

    @property
    def useful_fus(self) -> int:
        """Units counted by the paper's FU totals (copy FU excluded)."""
        return self.mem + self.alu + self.mul

    @property
    def total_fus(self) -> int:
        """All units including the copy FU."""
        return self.useful_fus + self.copy

    def fu_table(self) -> Dict[FUKind, int]:
        """Kind -> count mapping."""
        return {kind: self.fu_count(kind) for kind in FUKind}

    def iter_fus(self) -> Iterator[Tuple[FUKind, int]]:
        """Iterate (kind, instance_index) pairs deterministically."""
        for kind in (FUKind.MEM, FUKind.ALU, FUKind.MUL, FUKind.COPY):
            for index in range(self.fu_count(kind)):
                yield kind, index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterSpec(mem={self.mem}, alu={self.alu}, "
            f"mul={self.mul}, copy={self.copy})"
        )


#: The paper's per-cluster configuration (section 4).
PAPER_CLUSTER = ClusterSpec(mem=1, alu=1, mul=1, copy=1)
