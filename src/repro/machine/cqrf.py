"""Queue register file descriptors (LRF queues and CQRFs).

The paper's storage model:

* each cluster owns a **Local Register File (LRF)** organised as queues
  (the authors' EuroPar'97 companion paper shows modulo-scheduled loop
  variants map naturally onto queues);
* between every ordered pair of adjacent clusters sits a **Communication
  Queue Register File (CQRF)**: the upstream cluster has write-only
  access, the downstream cluster read-only access, and each value can be
  read exactly once.  Near-neighbour communication costs no explicit
  instruction: the producer writes into the CQRF and the consumer reads
  from it as its normal operand access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from ..errors import MachineError


@dataclass(frozen=True)
class QueueFileSpec:
    """Capacity limits of one queue register file.

    Attributes:
        n_queues: number of independent FIFO queues in the file.
        queue_depth: maximum values simultaneously held per queue.
        write_ports: values the file accepts per cycle (its write
            bandwidth).  0 means unconstrained, which matches the paper's
            silence on port counts; a positive value arms the per-link
            bandwidth rule in the schedule checker and the timing
            simulator.
    """

    n_queues: int = 64
    queue_depth: int = 32
    write_ports: int = 0

    def __post_init__(self) -> None:
        if self.n_queues < 1:
            raise MachineError(f"n_queues must be >= 1, got {self.n_queues}")
        if self.queue_depth < 1:
            raise MachineError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.write_ports < 0:
            raise MachineError(f"write_ports must be >= 0, got {self.write_ports}")

    @property
    def capacity(self) -> int:
        """Total values the file can hold."""
        return self.n_queues * self.queue_depth


@dataclass(frozen=True)
class LRFId:
    """Identifies the local register file of one cluster."""

    cluster: int

    def __str__(self) -> str:
        return f"lrf[c{self.cluster}]"


@dataclass(frozen=True)
class CQRFId:
    """Identifies the CQRF written by *writer* and read by *reader*.

    Writer and reader must be adjacent clusters; each direction of each
    adjacent pair is a separate file (bi-directional ring).
    """

    writer: int
    reader: int

    def __post_init__(self) -> None:
        if self.writer == self.reader:
            raise MachineError("a CQRF connects two distinct clusters")

    def __str__(self) -> str:
        return f"cqrf[c{self.writer}->c{self.reader}]"


QueueFileId = Union[LRFId, CQRFId]


def queue_file_for(src_cluster: int, dst_cluster: int) -> QueueFileId:
    """The queue file a value crossing ``src -> dst`` lives in."""
    if src_cluster == dst_cluster:
        return LRFId(src_cluster)
    return CQRFId(src_cluster, dst_cluster)


def sort_key(file_id: QueueFileId) -> Tuple[int, int, int]:
    """Deterministic ordering key for queue-file ids."""
    if isinstance(file_id, LRFId):
        return (0, file_id.cluster, file_id.cluster)
    return (1, file_id.writer, file_id.reader)
