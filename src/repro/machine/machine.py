"""Machine descriptions and the paper's experimental configurations.

Two families are used throughout the evaluation (section 4):

* ``clustered(k)`` — k clusters of {1 L/S, 1 Add, 1 Mul, 1 Copy} on a
  bi-directional ring, scheduled with DMS;
* ``unclustered(k)`` — a single monolithic register file with k L/S,
  k Add and k Mul units (no copy FU: a conventional multi-read RF needs
  no copy or move operations), scheduled with IMS.

Both expose the same number of *useful* FUs (3k), which is the x-axis of
figures 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import MachineError
from ..ir.opcodes import FUKind, USEFUL_FU_KINDS
from .cluster import ClusterSpec, PAPER_CLUSTER
from .cqrf import CQRFId, QueueFileSpec
from .topology import LinearTopology, RingTopology

#: Supported inter-cluster interconnects (paper: "we believe it could
#: also be used with other clustered VLIW architectures").
TOPOLOGIES = ("ring", "linear")


@dataclass(frozen=True)
class MachineSpec:
    """A clustered (or degenerate single-cluster) VLIW machine."""

    name: str
    clusters: Tuple[ClusterSpec, ...]
    cqrf: QueueFileSpec = field(default_factory=QueueFileSpec)
    topology_kind: str = "ring"

    def __post_init__(self) -> None:
        if not self.clusters:
            raise MachineError("a machine needs at least one cluster")
        if self.topology_kind not in TOPOLOGIES:
            raise MachineError(
                f"unknown topology {self.topology_kind!r}; "
                f"supported: {TOPOLOGIES}"
            )

    # ------------------------------------------------------------------
    # Shape queries
    # ------------------------------------------------------------------

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def is_clustered(self) -> bool:
        """True when inter-cluster communication constraints exist."""
        return self.n_clusters > 1

    @property
    def topology(self) -> RingTopology:
        if self.topology_kind == "linear":
            return LinearTopology(self.n_clusters)
        return RingTopology(self.n_clusters)

    def cluster(self, index: int) -> ClusterSpec:
        if not 0 <= index < self.n_clusters:
            raise MachineError(f"cluster {index} out of range")
        return self.clusters[index]

    def fu_count(self, kind: FUKind) -> int:
        """Total units of *kind* across all clusters."""
        return sum(c.fu_count(kind) for c in self.clusters)

    def fu_in_cluster(self, cluster: int, kind: FUKind) -> int:
        """Units of *kind* in one cluster."""
        return self.cluster(cluster).fu_count(kind)

    @property
    def useful_fus(self) -> int:
        """FU total as reported by the paper (copy FUs excluded)."""
        return sum(c.useful_fus for c in self.clusters)

    def cqrf_ids(self) -> Tuple[CQRFId, ...]:
        """All CQRFs of the machine (one per adjacent ordered pair)."""
        return tuple(
            CQRFId(writer, reader)
            for writer, reader in self.topology.directed_pairs()
        )

    def supports(self, kind: FUKind) -> bool:
        """True when at least one cluster can execute *kind* operations."""
        return self.fu_count(kind) > 0

    def describe(self) -> str:
        """One-line human description."""
        kinds = ", ".join(
            f"{self.fu_count(kind)} {kind.value}" for kind in USEFUL_FU_KINDS
        )
        shape = f"{self.n_clusters} cluster(s)" if self.is_clustered else "unclustered"
        return f"{self.name}: {shape}, {self.useful_fus} useful FUs ({kinds})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MachineSpec {self.name!r} clusters={self.n_clusters}>"


def clustered_vliw(
    n_clusters: int,
    cluster: ClusterSpec = PAPER_CLUSTER,
    cqrf: Optional[QueueFileSpec] = None,
    name: Optional[str] = None,
    topology: str = "ring",
) -> MachineSpec:
    """The paper's clustered machine: *n_clusters* x *cluster* on a ring
    (or, for the topology ablation, a linear array)."""
    if n_clusters < 1:
        raise MachineError(f"n_clusters must be >= 1, got {n_clusters}")
    suffix = "" if topology == "ring" else f"-{topology}"
    return MachineSpec(
        name=name or f"clustered-{n_clusters}x{cluster.useful_fus}{suffix}",
        clusters=tuple([cluster] * n_clusters),
        cqrf=cqrf or QueueFileSpec(),
        topology_kind=topology,
    )


def unclustered_vliw(
    k: int,
    lrf: Optional[QueueFileSpec] = None,
    name: Optional[str] = None,
) -> MachineSpec:
    """The unclustered reference machine with k L/S, k Add, k Mul units.

    There is no copy FU: with a conventional central register file,
    multiple-use lifetimes need no copies and there is nowhere to move
    values to.
    """
    if k < 1:
        raise MachineError(f"k must be >= 1, got {k}")
    spec = ClusterSpec(
        mem=k, alu=k, mul=k, copy=0, lrf=lrf or QueueFileSpec(n_queues=4096, queue_depth=64)
    )
    return MachineSpec(
        name=name or f"unclustered-{3 * k}fu",
        clusters=(spec,),
    )


def paper_machine_pair(k: int) -> Tuple[MachineSpec, MachineSpec]:
    """(clustered(k), unclustered with the same useful FU total).

    This is the comparison unit of figures 4-6: ``k`` clusters of 3 FUs
    against one monolithic machine with ``3k`` FUs.
    """
    return clustered_vliw(k), unclustered_vliw(k)


#: The cluster counts evaluated by the paper (figures 4-6).
PAPER_CLUSTER_RANGE = tuple(range(1, 11))
