"""Machine descriptions and the paper's experimental configurations.

Two families are used throughout the evaluation (section 4):

* ``clustered(k)`` — k clusters of {1 L/S, 1 Add, 1 Mul, 1 Copy} on a
  bi-directional ring, scheduled with DMS;
* ``unclustered(k)`` — a single monolithic register file with k L/S,
  k Add and k Mul units (no copy FU: a conventional multi-read RF needs
  no copy or move operations), scheduled with IMS.

Both expose the same number of *useful* FUs (3k), which is the x-axis of
figures 5 and 6.

The interconnect is no longer hardwired: ``topology_kind`` names any
topology registered with
:func:`~repro.machine.topology.register_topology` (ring, linear, mesh,
torus, crossbar, graph, ...), parameterised by ``topology_params``.
Validation and dispatch both derive from that registry, so adding a
topology is a single registration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple, Union

from ..errors import MachineError
from ..ir.opcodes import FUKind, USEFUL_FU_KINDS
from .cluster import ClusterSpec, PAPER_CLUSTER
from .cqrf import CQRFId, QueueFileSpec
from .topology import Topology, freeze_params, make_topology

#: Topology parameters as stored on a (hashable) machine spec.
FrozenParams = Tuple[Tuple[str, object], ...]


@dataclass(frozen=True)
class MachineSpec:
    """A clustered (or degenerate single-cluster) VLIW machine."""

    name: str
    clusters: Tuple[ClusterSpec, ...]
    cqrf: QueueFileSpec = field(default_factory=QueueFileSpec)
    topology_kind: str = "ring"
    topology_params: Union[FrozenParams, Mapping[str, object]] = ()

    def __post_init__(self) -> None:
        if not self.clusters:
            raise MachineError("a machine needs at least one cluster")
        object.__setattr__(
            self, "topology_params", freeze_params(dict(self.topology_params))
        )
        # Registry-driven validation: constructing the topology checks the
        # kind exists and the parameters tile this cluster count.
        self.topology

    # ------------------------------------------------------------------
    # Shape queries
    # ------------------------------------------------------------------

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def is_clustered(self) -> bool:
        """True when inter-cluster communication constraints exist."""
        return self.n_clusters > 1

    @property
    def topology(self) -> Topology:
        """The (memoised) interconnect instance for this machine."""
        return make_topology(
            self.topology_kind, self.n_clusters, self.topology_params
        )

    def cluster(self, index: int) -> ClusterSpec:
        if not 0 <= index < self.n_clusters:
            raise MachineError(f"cluster {index} out of range")
        return self.clusters[index]

    def fu_count(self, kind: FUKind) -> int:
        """Total units of *kind* across all clusters."""
        return sum(c.fu_count(kind) for c in self.clusters)

    def fu_in_cluster(self, cluster: int, kind: FUKind) -> int:
        """Units of *kind* in one cluster."""
        return self.cluster(cluster).fu_count(kind)

    @property
    def useful_fus(self) -> int:
        """FU total as reported by the paper (copy FUs excluded)."""
        return sum(c.useful_fus for c in self.clusters)

    def cqrf_ids(self) -> Tuple[CQRFId, ...]:
        """All CQRFs of the machine (one per adjacent ordered pair)."""
        return tuple(
            CQRFId(writer, reader)
            for writer, reader in self.topology.directed_pairs()
        )

    def supports(self, kind: FUKind) -> bool:
        """True when at least one cluster can execute *kind* operations."""
        return self.fu_count(kind) > 0

    def describe(self) -> str:
        """One-line human description."""
        kinds = ", ".join(
            f"{self.fu_count(kind)} {kind.value}" for kind in USEFUL_FU_KINDS
        )
        shape = f"{self.n_clusters} cluster(s)" if self.is_clustered else "unclustered"
        return f"{self.name}: {shape}, {self.useful_fus} useful FUs ({kinds})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MachineSpec {self.name!r} clusters={self.n_clusters}>"


def clustered_vliw(
    n_clusters: int,
    cluster: ClusterSpec = PAPER_CLUSTER,
    cqrf: Optional[QueueFileSpec] = None,
    name: Optional[str] = None,
    topology: str = "ring",
    topology_params: Optional[Mapping[str, object]] = None,
) -> MachineSpec:
    """The paper's clustered machine: *n_clusters* x *cluster* on a ring
    (or any other registered topology — linear, mesh, torus, crossbar,
    graph — for the interconnect ablations)."""
    if n_clusters < 1:
        raise MachineError(f"n_clusters must be >= 1, got {n_clusters}")
    suffix = "" if topology == "ring" else f"-{topology}"
    return MachineSpec(
        name=name or f"clustered-{n_clusters}x{cluster.useful_fus}{suffix}",
        clusters=tuple([cluster] * n_clusters),
        cqrf=cqrf or QueueFileSpec(),
        topology_kind=topology,
        topology_params=topology_params or (),
    )


def unclustered_vliw(
    k: int,
    lrf: Optional[QueueFileSpec] = None,
    name: Optional[str] = None,
) -> MachineSpec:
    """The unclustered reference machine with k L/S, k Add, k Mul units.

    There is no copy FU: with a conventional central register file,
    multiple-use lifetimes need no copies and there is nowhere to move
    values to.
    """
    if k < 1:
        raise MachineError(f"k must be >= 1, got {k}")
    spec = ClusterSpec(
        mem=k, alu=k, mul=k, copy=0, lrf=lrf or QueueFileSpec(n_queues=4096, queue_depth=64)
    )
    return MachineSpec(
        name=name or f"unclustered-{3 * k}fu",
        clusters=(spec,),
    )


def paper_machine_pair(k: int) -> Tuple[MachineSpec, MachineSpec]:
    """(clustered(k), unclustered with the same useful FU total).

    This is the comparison unit of figures 4-6: ``k`` clusters of 3 FUs
    against one monolithic machine with ``3k`` FUs.
    """
    return clustered_vliw(k), unclustered_vliw(k)


#: The cluster counts evaluated by the paper (figures 4-6).
PAPER_CLUSTER_RANGE = tuple(range(1, 11))
