"""Scheduler performance benchmarks and the regression gate.

``repro bench`` times the scheduler hot paths on a fixed case matrix
(micro passes, DMS/IMS throughput, and the wide-unroll scaling regime),
writes the results as JSON, and compares runs against the committed
baseline ``BENCH_scheduler.json``.

Cross-machine comparability: every run first times a fixed pure-Python
*calibration* workload; each case is reported both in seconds and
*normalized* (case seconds / calibration seconds).  The CI gate compares
normalized values, so a uniformly slower runner does not trip it — only a
scheduler-relative regression does.

The committed baseline also carries ``seed_reference``: per-case wall
times of the pre-optimization scheduler measured interleaved on the same
host, from which the reported ``speedup_vs_seed`` numbers derive.
"""

from __future__ import annotations

import json
import math
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .errors import BenchError

#: Schema version of the benchmark JSON.
#: v2: per-case ``search`` block (II, ii_attempts, budget_used,
#: restarts_per_success, futility_aborts) for scheduler-backed cases,
#: plus the explicit ``*_ladder`` scaling cases that pin the reference
#: search policy next to the adaptive default.
BENCH_SCHEMA = 2

#: Default baseline path (committed at the repo root).
BENCH_FILENAME = "BENCH_scheduler.json"

#: Default regression tolerance on normalized times (CI gate).
DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class BenchCase:
    """One benchmark: a setup builder returning a zero-arg timed thunk.

    ``build`` takes the run's II-search override (``None`` = each case's
    own default policy); cases that pin a policy, or that do not touch a
    scheduler, ignore it.
    """

    name: str
    group: str  # "micro" | "dms" | "ims"
    describe: str
    build: Callable[[Optional[str]], Callable[[], object]]


def _scheduler_config(search: Optional[str]):
    from .config import DEFAULT_CONFIG

    return DEFAULT_CONFIG if search is None else DEFAULT_CONFIG.with_(search=search)


def _dms_thunk(
    kernel: str,
    kwargs: dict,
    unroll: int,
    topology: str,
    k: int,
    search: Optional[str] = None,
) -> Callable[[], object]:
    from .ir.opcodes import DEFAULT_LATENCIES
    from .ir.transforms import single_use_ddg, unroll_ddg
    from .machine import clustered_vliw
    from .scheduling import DistributedModuloScheduler
    from .workloads import make_kernel

    ddg = make_kernel(kernel, **kwargs).ddg
    if unroll > 1:
        ddg = unroll_ddg(ddg, unroll)
    ddg = single_use_ddg(ddg)
    machine = clustered_vliw(k, topology=topology)
    scheduler = DistributedModuloScheduler(
        machine, DEFAULT_LATENCIES, _scheduler_config(search)
    )
    return lambda: scheduler.schedule(ddg.copy())


def _ims_thunk(
    kernel: str, unroll: int, k: int, search: Optional[str] = None
) -> Callable[[], object]:
    from .ir.opcodes import DEFAULT_LATENCIES
    from .ir.transforms import unroll_ddg
    from .machine import unclustered_vliw
    from .scheduling import IterativeModuloScheduler
    from .workloads import make_kernel

    ddg = make_kernel(kernel).ddg
    if unroll > 1:
        ddg = unroll_ddg(ddg, unroll)
    scheduler = IterativeModuloScheduler(
        unclustered_vliw(k), DEFAULT_LATENCIES, _scheduler_config(search)
    )
    return lambda: scheduler.schedule(ddg.copy())


def _mii_thunk() -> Callable[[], object]:
    from .ir.opcodes import DEFAULT_LATENCIES
    from .machine import unclustered_vliw
    from .scheduling import compute_mii
    from .workloads import make_kernel

    ddg = make_kernel("lms_update", taps=5).ddg
    machine = unclustered_vliw(4)
    return lambda: compute_mii(ddg, machine, DEFAULT_LATENCIES)


def _transform_thunk() -> Callable[[], object]:
    from .ir.transforms import single_use_ddg, unroll_ddg
    from .workloads import make_kernel

    ddg = make_kernel("fir_filter", taps=10).ddg
    return lambda: single_use_ddg(unroll_ddg(ddg, 4))


CASES: Tuple[BenchCase, ...] = (
    BenchCase(
        "mii_lms", "micro", "MII bounds, lms_update", lambda search=None: _mii_thunk()
    ),
    BenchCase(
        "unroll_single_use_fir4",
        "micro",
        "unroll x4 + single-use, fir_filter",
        lambda search=None: _transform_thunk(),
    ),
    BenchCase(
        "ims_unroll8",
        "ims",
        "IMS, fir_filter x8, unclustered(4)",
        lambda search=None: _ims_thunk("fir_filter", 8, 4, search=search),
    ),
    BenchCase(
        "dms_narrow",
        "dms",
        "DMS, fir_filter(10) x4, 4-cluster ring",
        lambda search=None: _dms_thunk(
            "fir_filter", {"taps": 10}, 4, "ring", 4, search=search
        ),
    ),
    BenchCase(
        "dms_wide",
        "dms",
        "DMS, lms_update(5), 8-cluster ring",
        lambda search=None: _dms_thunk(
            "lms_update", {"taps": 5}, 1, "ring", 8, search=search
        ),
    ),
    BenchCase(
        "dms_unroll8",
        "dms",
        "DMS scaling, fir_filter x8, 4-cluster ring",
        lambda search=None: _dms_thunk(
            "fir_filter", {"taps": 8}, 8, "ring", 4, search=search
        ),
    ),
    BenchCase(
        "dms_unroll16",
        "dms",
        "DMS scaling, fir_filter x16, 8-cluster ring",
        lambda search=None: _dms_thunk(
            "fir_filter", {"taps": 8}, 16, "ring", 8, search=search
        ),
    ),
    # The same scaling cases pinned to the reference ladder policy, so a
    # run (and the CI gate) always measures the adaptive-vs-ladder delta
    # side by side regardless of the session default.
    BenchCase(
        "dms_unroll8_ladder",
        "dms",
        "DMS scaling, fir_filter x8, 4-cluster ring (ladder search pinned)",
        lambda search=None: _dms_thunk(
            "fir_filter", {"taps": 8}, 8, "ring", 4, search="ladder"
        ),
    ),
    BenchCase(
        "dms_unroll16_ladder",
        "dms",
        "DMS scaling, fir_filter x16, 8-cluster ring (ladder search pinned)",
        lambda search=None: _dms_thunk(
            "fir_filter", {"taps": 8}, 16, "ring", 8, search="ladder"
        ),
    ),
    BenchCase(
        "dms_mesh8",
        "dms",
        "DMS, lms_update(5) x2, 8-cluster mesh",
        lambda search=None: _dms_thunk(
            "lms_update", {"taps": 5}, 2, "mesh", 8, search=search
        ),
    ),
    BenchCase(
        "dms_crossbar8",
        "dms",
        "DMS, lms_update(5) x2, 8-cluster crossbar",
        lambda search=None: _dms_thunk(
            "lms_update", {"taps": 5}, 2, "crossbar", 8, search=search
        ),
    ),
)

CASE_NAMES: Tuple[str, ...] = tuple(case.name for case in CASES)


def calibrate() -> float:
    """Seconds for a fixed pure-Python workload (dict/loop bound, like the
    scheduler); the unit all normalized numbers are expressed in."""
    best = math.inf
    for _ in range(3):
        start = time.perf_counter()
        table: Dict[int, int] = {}
        total = 0
        for i in range(120_000):
            key = i % 512
            table[key] = table.get(key, 0) + i
            total += table[key]
        best = min(best, time.perf_counter() - start)
    return best


def _time_case(
    thunk: Callable[[], object], reps: int
) -> Tuple[float, float, object]:
    """(best, mean, last result) over *reps* timed runs (one warmup first)."""
    thunk()
    samples = []
    result: object = None
    for _ in range(reps):
        start = time.perf_counter()
        result = thunk()
        samples.append(time.perf_counter() - start)
    return min(samples), sum(samples) / len(samples), result


def _search_stats(result: object) -> Optional[Dict]:
    """II-search effort of a scheduler-backed case, or ``None``.

    ``restarts_per_success`` is the number of scheduling attempts the
    search executed for its one successful schedule — the direct measure
    of how much work failed rungs cost under the active policy.
    """
    stats = getattr(result, "stats", None)
    if stats is None or not hasattr(stats, "ii_attempts"):
        return None
    return {
        "ii": result.ii,
        "ii_attempts": stats.ii_attempts,
        "budget_used": stats.budget_used,
        "restarts_per_success": stats.restart_attempts,
        "futility_aborts": stats.futility_aborts,
    }


def run_bench(
    quick: bool = False,
    case_names: Optional[Iterable[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    search: Optional[str] = None,
) -> Dict:
    """Run the benchmark matrix and return the result document.

    *search* overrides the II-search policy of every scheduler-backed
    case (``None`` keeps each case's own default; the ``*_ladder`` cases
    always pin the reference policy).
    """
    from .scheduling import SEARCH_POLICY_NAMES

    if search is not None and search not in SEARCH_POLICY_NAMES:
        raise BenchError(
            f"unknown search policy {search!r}; known: {list(SEARCH_POLICY_NAMES)}"
        )
    selected = list(CASES)
    if case_names is not None:
        wanted = set(case_names)
        unknown = wanted - set(CASE_NAMES)
        if unknown:
            raise BenchError(
                f"unknown bench cases {sorted(unknown)}; known: {list(CASE_NAMES)}"
            )
        selected = [case for case in CASES if case.name in wanted]
    reps = 3 if quick else 5
    cases: Dict[str, Dict] = {}
    calibrations: List[float] = []
    for case in selected:
        thunk = case.build(search)
        # Calibrate per case so normalization tracks machine-speed drift
        # over the course of the run (shared CI runners are not steady).
        calibration = calibrate()
        calibrations.append(calibration)
        best, mean, result = _time_case(thunk, reps)
        cases[case.name] = {
            "group": case.group,
            "describe": case.describe,
            "best_s": best,
            "mean_s": mean,
            "reps": reps,
            "calibration_s": calibration,
            "normalized": best / calibration,
            "normalized_mean": mean / calibration,
        }
        search_stats = _search_stats(result)
        if search_stats is not None:
            cases[case.name]["search"] = search_stats
        if progress is not None:
            progress(f"{case.name:<24} {1e3 * best:9.2f} ms")
    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "search_override": search,
        "calibration_s": min(calibrations) if calibrations else 0.0,
        "cases": cases,
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        },
    }


@dataclass(frozen=True)
class Comparison:
    """Per-case outcome of a baseline comparison."""

    case: str
    status: str  # "ok" | "faster" | "regression" | "missing"
    ratio: Optional[float]  # current_normalized / baseline_normalized
    message: str


def compare_to_baseline(
    current: Dict, baseline: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[Comparison]:
    """Compare normalized times case-by-case against *baseline*.

    The current run's *best* normalized time is held against the
    baseline's *mean* normalized time (falling back to best when the
    baseline predates the mean field): best-vs-mean biases the gate
    against false alarms from run-to-run noise while still catching real
    slowdowns beyond *tolerance*.  Baseline cases absent from the current
    run are reported as ``missing`` (also a failure: silently dropping a
    benchmark must not pass the gate).
    """
    results: List[Comparison] = []
    base_cases = baseline.get("cases", {})
    cur_cases = current.get("cases", {})
    for name in sorted(base_cases):
        base_entry = base_cases[name]
        base_norm = base_entry.get("normalized_mean", base_entry.get("normalized"))
        cur = cur_cases.get(name)
        if cur is None:
            results.append(
                Comparison(name, "missing", None, "case absent from current run")
            )
            continue
        ratio = cur["normalized"] / base_norm
        if ratio > 1.0 + tolerance:
            status = "regression"
            message = (
                f"{100 * (ratio - 1):.0f}% slower than baseline "
                f"(tolerance {100 * tolerance:.0f}%)"
            )
        elif ratio < 1.0 - tolerance:
            status = "faster"
            message = f"{100 * (1 - ratio):.0f}% faster than baseline"
        else:
            status = "ok"
            message = f"within tolerance ({100 * (ratio - 1):+.0f}%)"
        results.append(Comparison(name, status, ratio, message))
    return results


def has_regression(results: Iterable[Comparison]) -> bool:
    return any(r.status in ("regression", "missing") for r in results)


def dms_speedups(doc: Dict) -> Dict[str, float]:
    """``case -> speedup_vs_seed`` for cases with a seed reference."""
    seed = doc.get("seed_reference", {})
    speedups = {}
    for name, entry in doc.get("cases", {}).items():
        ref = seed.get(name)
        if ref:
            speedups[name] = ref / entry["best_s"]
    return speedups


def geomean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def render_table(doc: Dict) -> str:
    """Human-readable table of one benchmark document."""
    lines = [
        f"{'case':<24} {'group':<6} {'best':>10} {'mean':>10} {'norm':>8} "
        f"{'II':>4} {'tries':>5}",
        "-" * 73,
    ]
    for name, entry in doc["cases"].items():
        search = entry.get("search") or {}
        ii = search.get("ii", "")
        tries = search.get("restarts_per_success", "")
        lines.append(
            f"{name:<24} {entry['group']:<6} "
            f"{1e3 * entry['best_s']:>8.2f}ms {1e3 * entry['mean_s']:>8.2f}ms "
            f"{entry['normalized']:>8.2f} {ii!s:>4} {tries!s:>5}"
        )
    lines.append(
        f"calibration {1e3 * doc['calibration_s']:.2f} ms on "
        f"{doc['meta']['platform']}"
    )
    speedups = dms_speedups(doc)
    if speedups:
        dms = [v for k, v in speedups.items() if k.startswith("dms")]
        lines.append(
            "speedup vs seed: "
            + ", ".join(f"{k} {v:.2f}x" for k, v in sorted(speedups.items()))
        )
        if dms:
            lines.append(f"DMS geomean speedup vs seed: {geomean(dms):.2f}x")
    return "\n".join(lines)


def profile_case(name: str, top: int = 20) -> str:
    """cProfile one case; return the top-N cumulative report."""
    import cProfile
    import io
    import pstats

    matching = [case for case in CASES if case.name == name]
    if not matching:
        raise BenchError(f"unknown bench case {name!r}; known: {list(CASE_NAMES)}")
    thunk = matching[0].build(None)
    thunk()  # warm caches so the profile shows steady state
    profiler = cProfile.Profile()
    profiler.enable()
    thunk()
    profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(top)
    return stream.getvalue()


def load_baseline(path: str) -> Dict:
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != BENCH_SCHEMA:
        raise BenchError(
            f"baseline {path!r} has schema {doc.get('schema')!r}, "
            f"expected {BENCH_SCHEMA}"
        )
    return doc


def write_json(doc: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main_bench(args) -> int:
    """Implementation of the ``repro bench`` CLI command."""
    if args.profile:
        try:
            print(profile_case(args.profile))
        except BenchError as err:
            print(str(err), file=sys.stderr)
            return 2
        return 0
    case_names = None
    if args.cases:
        case_names = [c for c in args.cases.split(",") if c]
    try:
        doc = run_bench(
            quick=args.quick,
            case_names=case_names,
            progress=lambda msg: print(f"  {msg}", file=sys.stderr),
            search=args.search,
        )
    except BenchError as err:
        print(str(err), file=sys.stderr)
        return 2
    if args.baseline_carry:
        # Carry the seed-reference block forward when rewriting the
        # committed baseline, so speedup-vs-seed reporting survives.
        # Read raw (no schema check): carrying across a schema bump is
        # exactly when this matters.
        try:
            with open(args.baseline_carry) as handle:
                previous = json.load(handle)
        except (OSError, ValueError):
            previous = {}
        if "seed_reference" in previous:
            doc["seed_reference"] = previous["seed_reference"]
    print(render_table(doc))
    exit_code = 0
    if args.check:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, BenchError) as err:
            print(f"cannot load baseline: {err}", file=sys.stderr)
            return 2
        results = compare_to_baseline(doc, baseline, args.tolerance)
        flaky = [
            r.case
            for r in results
            if r.status == "regression" and r.case in doc["cases"]
        ]
        if flaky:
            # One re-measure before failing: a case is a regression only
            # if it is slow twice (shared runners see >25% noise spikes).
            print(
                f"  re-measuring {len(flaky)} slow case(s): {', '.join(flaky)}",
                file=sys.stderr,
            )
            retry = run_bench(
                quick=args.quick, case_names=flaky, search=args.search
            )
            for name, entry in retry["cases"].items():
                if entry["normalized"] < doc["cases"][name]["normalized"]:
                    doc["cases"][name] = entry
            results = compare_to_baseline(doc, baseline, args.tolerance)
        print()
        for result in results:
            flag = {"regression": "FAIL", "missing": "FAIL"}.get(result.status, "ok")
            print(f"  [{flag:>4}] {result.case:<24} {result.message}")
        if has_regression(results):
            print("benchmark gate: REGRESSION", file=sys.stderr)
            exit_code = 1
        else:
            print("benchmark gate: ok")
    if args.out:
        write_json(doc, args.out)
        print(f"# wrote {args.out}", file=sys.stderr)
    return exit_code
