"""Register/queue allocation for modulo-scheduled loops."""

from .lifetimes import Lifetime, extract_lifetimes, register_pressure
from .mve import MVEReport, mve_report, mve_summary
from .queues import (
    FileUsage,
    QueueAllocation,
    QueueAssignment,
    allocate_queues,
)

__all__ = [
    "Lifetime",
    "extract_lifetimes",
    "register_pressure",
    "MVEReport",
    "mve_report",
    "mve_summary",
    "FileUsage",
    "QueueAllocation",
    "QueueAssignment",
    "allocate_queues",
]
