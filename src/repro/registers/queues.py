"""Queue allocation: mapping lifetimes onto LRF queues and CQRFs.

Every operand-reference lifetime is one FIFO stream (successive iteration
values of the same reference arrive and are consumed in order), so the
natural allocation gives each stream its own queue in the file between its
producer and consumer clusters:

* same cluster           -> a queue of that cluster's LRF;
* adjacent clusters      -> a queue of the CQRF in that direction.

The allocator assigns queue indexes deterministically, computes the depth
each queue needs, and checks the result against the machine's
:class:`~repro.machine.cqrf.QueueFileSpec` limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import AllocationError
from ..machine.cqrf import CQRFId, LRFId, QueueFileId, sort_key
from ..scheduling.result import ScheduleResult
from .lifetimes import Lifetime, extract_lifetimes


@dataclass(frozen=True)
class QueueAssignment:
    """One lifetime bound to a queue of a file."""

    lifetime: Lifetime
    file_id: QueueFileId
    queue_index: int

    @property
    def label(self) -> str:
        return f"{self.file_id}:q{self.queue_index}"


@dataclass(frozen=True)
class FileUsage:
    """Aggregate demand on one queue file."""

    file_id: QueueFileId
    queues_used: int
    max_depth: int
    total_values: int  # sum of per-queue depths (total storage demand)


@dataclass
class QueueAllocation:
    """Result of allocating a schedule's lifetimes to queue files."""

    loop_name: str
    assignments: List[QueueAssignment]
    files: List[FileUsage]
    violations: List[str] = field(default_factory=list)

    @property
    def fits(self) -> bool:
        """True when every file stays within its hardware limits."""
        return not self.violations

    @property
    def total_queues(self) -> int:
        return sum(f.queues_used for f in self.files)

    @property
    def max_queue_depth(self) -> int:
        return max((f.max_depth for f in self.files), default=0)

    def by_lifetime(self) -> Dict[Tuple[int, int, int], QueueAssignment]:
        """(producer, consumer, operand_index) -> assignment lookup."""
        return {
            (a.lifetime.producer, a.lifetime.consumer, a.lifetime.operand_index): a
            for a in self.assignments
        }

    def raise_if_overflow(self) -> None:
        if self.violations:
            raise AllocationError(
                f"queue allocation for {self.loop_name!r} exceeds hardware "
                f"limits: {'; '.join(self.violations)}"
            )


def allocate_queues(result: ScheduleResult) -> QueueAllocation:
    """Allocate every lifetime of *result* to a queue."""
    lifetimes = extract_lifetimes(result)
    machine = result.machine
    grouped: Dict[QueueFileId, List[Lifetime]] = {}
    for lifetime in lifetimes:
        grouped.setdefault(lifetime.file_id, []).append(lifetime)

    assignments: List[QueueAssignment] = []
    files: List[FileUsage] = []
    violations: List[str] = []
    for file_id in sorted(grouped, key=sort_key):
        streams = sorted(
            grouped[file_id],
            key=lambda lt: (lt.producer, lt.consumer, lt.operand_index),
        )
        for queue_index, lifetime in enumerate(streams):
            assignments.append(QueueAssignment(lifetime, file_id, queue_index))
        usage = FileUsage(
            file_id=file_id,
            queues_used=len(streams),
            max_depth=max(lt.depth for lt in streams),
            total_values=sum(lt.depth for lt in streams),
        )
        files.append(usage)
        spec = (
            machine.cluster(file_id.cluster).lrf
            if isinstance(file_id, LRFId)
            else machine.cqrf
        )
        if usage.queues_used > spec.n_queues:
            violations.append(
                f"{file_id} needs {usage.queues_used} queues, has {spec.n_queues}"
            )
        if usage.max_depth > spec.queue_depth:
            violations.append(
                f"{file_id} needs depth {usage.max_depth}, has {spec.queue_depth}"
            )
    return QueueAllocation(
        loop_name=result.loop_name,
        assignments=assignments,
        files=files,
        violations=violations,
    )
