"""Lifetime extraction from a modulo schedule.

A **lifetime** here is one operand reference: the span between the cycle a
value becomes available (producer issue + latency) and the cycle its
consumer reads it (consumer issue, adjusted by ``omega * II`` for
loop-carried references).  With single-use rewriting every reference is an
independent FIFO stream across iterations, which is exactly what one queue
of a queue register file holds (the authors' EuroPar'97 allocation model).

The module also computes **MaxLive**, the classic register-pressure bound
of a central register file, used to quantify the paper's motivation: the
storage the unclustered machine would need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import AllocationError
from ..machine.cqrf import QueueFileId, queue_file_for
from ..scheduling.result import ScheduleResult


@dataclass(frozen=True)
class Lifetime:
    """One value stream: producer -> (consumer, operand index)."""

    producer: int
    consumer: int
    operand_index: int
    omega: int
    src_cluster: int
    dst_cluster: int
    birth: int  # cycle the value is written (producer issue + latency)
    death: int  # cycle the value is read (consumer issue + omega * II)
    ii: int

    @property
    def duration(self) -> int:
        """Cycles the value stays live (0 = read the cycle it is written)."""
        return self.death - self.birth

    @property
    def depth(self) -> int:
        """Maximum simultaneously live instances of this stream.

        One value enters every II cycles, so a stream live for D cycles
        keeps ``floor(D / II) + 1`` instances in flight.
        """
        return self.duration // self.ii + 1

    @property
    def file_id(self) -> QueueFileId:
        """The queue file this stream occupies (LRF or CQRF)."""
        return queue_file_for(self.src_cluster, self.dst_cluster)


def extract_lifetimes(result: ScheduleResult) -> List[Lifetime]:
    """All operand-reference lifetimes of a final schedule.

    Raises :class:`AllocationError` when a flow reference crosses
    indirectly connected clusters (the schedule checker should have caught
    this already).
    """
    ddg = result.ddg
    placements = result.placements
    topology = result.machine.topology
    lifetimes: List[Lifetime] = []
    for consumer in ddg.operations():
        consumer_placement = placements.get(consumer.op_id)
        if consumer_placement is None:
            raise AllocationError(f"op {consumer.op_id} has no placement")
        for index, src in enumerate(consumer.srcs):
            if src.is_external:
                continue
            producer_placement = placements.get(src.producer)
            if producer_placement is None:
                raise AllocationError(f"op {src.producer} has no placement")
            if (
                src.producer != consumer.op_id
                and topology.distance(
                    producer_placement.cluster, consumer_placement.cluster
                )
                > 1
            ):
                raise AllocationError(
                    f"flow reference v{src.producer} -> op {consumer.op_id} "
                    "crosses indirectly connected clusters"
                )
            latency = result.latencies.latency(ddg.op(src.producer).opcode)
            birth = producer_placement.time + latency
            death = consumer_placement.time + src.omega * result.ii
            if death < birth:
                raise AllocationError(
                    f"negative lifetime for v{src.producer} -> "
                    f"op {consumer.op_id} (birth {birth}, death {death})"
                )
            lifetimes.append(
                Lifetime(
                    producer=src.producer,
                    consumer=consumer.op_id,
                    operand_index=index,
                    omega=src.omega,
                    src_cluster=producer_placement.cluster,
                    dst_cluster=consumer_placement.cluster,
                    birth=birth,
                    death=death,
                    ii=result.ii,
                )
            )
    return lifetimes


def register_pressure(result: ScheduleResult) -> int:
    """MaxLive of the schedule under a central multi-read register file.

    Each *value* (producer) is live from its write until its last read;
    the pressure at MRT row ``r`` counts live instances across overlapped
    iterations.  This is the storage bound motivating the paper's clustered
    design (section 1).
    """
    ddg = result.ddg
    placements = result.placements
    ii = result.ii
    # Last read per producer, in steady-state cycle terms.
    last_read: Dict[int, int] = {}
    birth: Dict[int, int] = {}
    for consumer in ddg.operations():
        for src in consumer.srcs:
            if src.is_external:
                continue
            read = placements[consumer.op_id].time + src.omega * ii
            last_read[src.producer] = max(last_read.get(src.producer, read), read)
    for producer in ddg.operations():
        if producer.op_id in last_read:
            latency = result.latencies.latency(producer.opcode)
            birth[producer.op_id] = placements[producer.op_id].time + latency
    max_live = 0
    for row in range(ii):
        live = 0
        for producer_id, start in birth.items():
            end = last_read[producer_id]
            if end < start:
                continue
            # Instances m with start <= row + m*II <= end.
            first = -(-(start - row) // ii)  # ceil
            last = (end - row) // ii  # floor
            live += max(0, last - first + 1)
        max_live = max(max_live, live)
    return max_live
