"""Modulo variable expansion (MVE) analysis for conventional register files.

The paper's machine stores loop variants in queue register files, where
overlapped lifetimes of successive iterations coexist naturally.  A
conventional register file needs another mechanism: **modulo variable
expansion** (Lam, PLDI 1988) unrolls the kernel and renames each long
lifetime across copies, one register per concurrently live instance.

This module computes, for a finished schedule:

* per-value expansion degrees ``ceil(lifetime / II)``;
* the kernel unroll amount MVE needs (the maximum degree — Lam's
  low-overhead variant; the no-overhead variant uses the LCM, also
  reported);
* the total register count after expansion.

Together with :func:`~repro.registers.lifetimes.register_pressure` this
quantifies the cost of *not* having the paper's queue files, which is
the architectural argument of sections 1-2 (see also the authors'
EuroPar'97 companion paper on queue allocation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..scheduling.result import ScheduleResult


@dataclass(frozen=True)
class MVEReport:
    """Modulo-variable-expansion requirements of one schedule."""

    loop_name: str
    ii: int
    n_values: int
    degrees: Dict[int, int]  # producer op id -> expansion degree
    kernel_unroll_max: int  # Lam's low-overhead variant (max degree)
    kernel_unroll_lcm: int  # no-overhead variant (lcm of degrees)
    total_registers: int  # sum of degrees = registers after renaming

    @property
    def expanded_code_growth(self) -> float:
        """Kernel code-size multiplier under the low-overhead variant."""
        return float(self.kernel_unroll_max)


def mve_report(result: ScheduleResult) -> MVEReport:
    """Compute MVE requirements for *result* on a conventional RF.

    Every value's lifetime runs from its write (issue + latency) to its
    last read (consumer issue + omega * II); values read only before the
    loop (none here) or unread values contribute one register.
    """
    ddg = result.ddg
    placements = result.placements
    ii = result.ii
    last_read: Dict[int, int] = {}
    for consumer in ddg.operations():
        consumer_time = placements[consumer.op_id].time
        for src in consumer.srcs:
            if src.is_external:
                continue
            read = consumer_time + src.omega * ii
            last_read[src.producer] = max(
                last_read.get(src.producer, read), read
            )
    degrees: Dict[int, int] = {}
    for producer in ddg.operations():
        if producer.op_id not in last_read:
            continue
        birth = (
            placements[producer.op_id].time
            + result.latencies.latency(producer.opcode)
        )
        lifetime = max(0, last_read[producer.op_id] - birth)
        degrees[producer.op_id] = lifetime // ii + 1
    if degrees:
        unroll_max = max(degrees.values())
        unroll_lcm = 1
        for degree in degrees.values():
            unroll_lcm = math.lcm(unroll_lcm, degree)
        total = sum(degrees.values())
    else:
        unroll_max = 1
        unroll_lcm = 1
        total = 0
    return MVEReport(
        loop_name=result.loop_name,
        ii=ii,
        n_values=len(degrees),
        degrees=degrees,
        kernel_unroll_max=unroll_max,
        kernel_unroll_lcm=unroll_lcm,
        total_registers=total,
    )


def mve_summary(reports: List[MVEReport]) -> str:
    """One-paragraph aggregate over several loops."""
    if not reports:
        return "no MVE reports"
    mean_unroll = sum(r.kernel_unroll_max for r in reports) / len(reports)
    worst_unroll = max(r.kernel_unroll_max for r in reports)
    mean_regs = sum(r.total_registers for r in reports) / len(reports)
    return (
        f"MVE over {len(reports)} loops: mean kernel unroll "
        f"{mean_unroll:.2f} (worst {worst_unroll}), mean register need "
        f"{mean_regs:.1f} — the code-size and register cost a "
        "conventional RF pays for what queue files provide for free"
    )
