"""IR transformations: unrolling, single-use rewriting, normalisation."""

from .normalize import DDGStats, ddg_stats, live_roots, remove_dead_ops, renumber
from .single_use import (
    MAX_FANOUT,
    copy_count,
    max_fanout,
    single_use_ddg,
    single_use_loop,
)
from .unroll import base_op_of, unroll_ddg, unroll_loop, unrolled_op_id

__all__ = [
    "DDGStats",
    "ddg_stats",
    "live_roots",
    "remove_dead_ops",
    "renumber",
    "MAX_FANOUT",
    "copy_count",
    "max_fanout",
    "single_use_ddg",
    "single_use_loop",
    "unroll_ddg",
    "unroll_loop",
    "base_op_of",
    "unrolled_op_id",
]
