"""Loop unrolling at the DDG level.

The paper unrolls loops "to provide additional operations to the scheduler
whenever necessary" (citing Lavery & Hwu).  Unrolling by ``u`` replicates
the body ``u`` times and rewires every dependence:

* a reference with distance ``omega`` from body copy ``j`` resolves to body
  copy ``(j - omega) mod u``;
* the new iteration distance is the number of *unrolled*-iteration
  boundaries crossed, ``((j - omega) mod u - (j - omega)) / u``.

Intra-copy dependences therefore become omega-0 edges, and only references
that wrap around the replicated body stay loop-carried — exactly the
standard unrolling semantics for modulo scheduling.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...errors import TransformError
from ..ddg import DDG
from ..edges import DepEdge
from ..loop import Loop
from ..operations import Operation, ValueUse


def _rewire(offset: int, u: int) -> Tuple[int, int]:
    """Map a (copy - omega) offset to (source copy, new omega)."""
    source_copy = offset % u
    new_omega = (source_copy - offset) // u
    return source_copy, new_omega


def unroll_ddg(ddg: DDG, factor: int) -> DDG:
    """Return a new DDG whose body is *ddg* replicated *factor* times."""
    if factor < 1:
        raise TransformError(f"unroll factor must be >= 1, got {factor}")
    if factor == 1:
        return ddg.copy(f"{ddg.name}")
    base_ids = ddg.op_ids
    n = len(base_ids)
    index_of = {op_id: i for i, op_id in enumerate(base_ids)}

    def new_id(op_id: int, copy: int) -> int:
        return copy * n + index_of[op_id]

    ops: List[Operation] = []
    for copy in range(factor):
        for op_id in base_ids:
            op = ddg.op(op_id)
            srcs = []
            for src in op.srcs:
                if src.is_external:
                    srcs.append(src)
                    continue
                source_copy, new_omega = _rewire(copy - src.omega, factor)
                srcs.append(
                    ValueUse(producer=new_id(src.producer, source_copy), omega=new_omega)
                )
            tag = f"{op.tag}#{copy}" if op.tag else f"#{copy}"
            ops.append(Operation(new_id(op_id, copy), op.opcode, tuple(srcs), tag))

    explicit: List[DepEdge] = []
    for edge in ddg.edges():
        if edge.is_flow:
            continue
        for copy in range(factor):
            source_copy, new_omega = _rewire(copy - edge.omega, factor)
            explicit.append(
                DepEdge(
                    src=new_id(edge.src, source_copy),
                    dst=new_id(edge.dst, copy),
                    kind=edge.kind,
                    omega=new_omega,
                    latency=edge.latency,
                )
            )
    unrolled = DDG.bulk(f"{ddg.name}", ops, _dedupe(explicit))
    return unrolled


def _dedupe(edges: List[DepEdge]) -> List[DepEdge]:
    seen: Dict[tuple, DepEdge] = {}
    for edge in edges:
        seen[edge.key] = edge
    return list(seen.values())


def unrolled_op_id(base: DDG, op_id: int, copy: int, factor: int) -> int:
    """Id of base operation *op_id*'s *copy*-th replica after unrolling.

    Mirrors the id scheme of :func:`unroll_ddg` so callers (semantic
    equivalence checks, provenance tooling) can map between the graphs.
    """
    if not 0 <= copy < factor:
        raise TransformError(f"copy {copy} out of range for factor {factor}")
    base_ids = base.op_ids
    if op_id not in base:
        raise TransformError(f"op {op_id} not in base DDG")
    return copy * len(base_ids) + base_ids.index(op_id)


def base_op_of(base: DDG, unrolled_id: int, factor: int) -> Tuple[int, int]:
    """Inverse of :func:`unrolled_op_id`: ``(base op id, copy index)``."""
    base_ids = base.op_ids
    n = len(base_ids)
    copy, index = divmod(unrolled_id, n)
    if not 0 <= copy < factor or index >= n:
        raise TransformError(
            f"unrolled id {unrolled_id} out of range for factor {factor}"
        )
    return base_ids[index], copy


def unroll_loop(loop: Loop, factor: int) -> Loop:
    """Unroll *loop* by *factor*, updating its metadata."""
    if loop.unroll_factor != 1:
        raise TransformError(f"loop {loop.name!r} is already unrolled")
    ddg = unroll_ddg(loop.ddg, factor)
    return loop.with_ddg(ddg, unroll_factor=factor)
