"""DDG normalisation utilities: dead-code removal, renumbering, statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ...errors import TransformError
from ..ddg import DDG
from ..edges import DepEdge
from ..opcodes import FUKind, OpCode
from ..operations import Operation, ValueUse


def live_roots(ddg: DDG) -> Set[int]:
    """Default liveness roots: stores plus every recurrence member.

    Stores are externally visible; recurrence members feed future
    iterations and must stay even without a store consumer.
    """
    roots = {op.op_id for op in ddg.operations() if op.opcode == OpCode.STORE}
    for scc in ddg.sccs():
        roots.update(scc)
    return roots


def remove_dead_ops(ddg: DDG, roots: Optional[Set[int]] = None) -> DDG:
    """Return a copy of *ddg* without operations that feed no root."""
    if roots is None:
        roots = live_roots(ddg)
    unknown = roots - set(ddg.op_ids)
    if unknown:
        raise TransformError(f"liveness roots not in DDG: {sorted(unknown)}")
    live: Set[int] = set()
    stack = list(roots)
    while stack:
        op_id = stack.pop()
        if op_id in live:
            continue
        live.add(op_id)
        for edge in ddg.in_edges(op_id):
            if edge.src not in live:
                stack.append(edge.src)
    ops = [ddg.op(op_id) for op_id in ddg.op_ids if op_id in live]
    explicit = [
        e
        for e in ddg.edges()
        if not e.is_flow and e.src in live and e.dst in live
    ]
    return DDG.bulk(ddg.name, ops, explicit)


def renumber(ddg: DDG) -> tuple[DDG, Dict[int, int]]:
    """Compact operation ids to ``0..n-1`` preserving order.

    Returns the new graph and the old-id -> new-id mapping.
    """
    mapping = {op_id: new for new, op_id in enumerate(ddg.op_ids)}
    ops: List[Operation] = []
    for op in ddg.operations():
        srcs = tuple(
            src
            if src.is_external
            else ValueUse(mapping[src.producer], src.omega)
            for src in op.srcs
        )
        ops.append(Operation(mapping[op.op_id], op.opcode, srcs, op.tag))
    explicit = [
        DepEdge(mapping[e.src], mapping[e.dst], e.kind, e.omega, e.latency)
        for e in ddg.edges()
        if not e.is_flow
    ]
    return DDG.bulk(ddg.name, ops, explicit), mapping


@dataclass(frozen=True)
class DDGStats:
    """Shape statistics of a dependence graph."""

    n_ops: int
    n_edges: int
    n_useful: int
    fu_histogram: Dict[FUKind, int]
    max_fanout: int
    n_recurrences: int
    largest_scc: int
    has_recurrence: bool


def ddg_stats(ddg: DDG) -> DDGStats:
    """Compute :class:`DDGStats` for *ddg*."""
    hist: Dict[FUKind, int] = {kind: 0 for kind in FUKind}
    for op in ddg.operations():
        hist[op.fu_kind] += 1
    sccs = ddg.sccs()
    return DDGStats(
        n_ops=len(ddg),
        n_edges=ddg.n_edges,
        n_useful=ddg.n_useful_ops(),
        fu_histogram=hist,
        max_fanout=max((ddg.flow_fanout(i) for i in ddg.op_ids), default=0),
        n_recurrences=len(sccs),
        largest_scc=max((len(s) for s in sccs), default=0),
        has_recurrence=bool(sccs),
    )
