"""Single-use (copy insertion) transformation.

The CQRF queues of the paper's machine allow a value to be **read only
once**, so "prior to modulo scheduling, all multiple-use lifetimes are
transformed into single-use lifetimes using copy operations ... This
transformation has also the effect of limiting the number of immediate
successors of any operation to 2" (section 3).

Two insertion shapes are provided:

* ``"chain"`` (default, the paper's description): the producer keeps its
  first consumer reference plus one copy; each copy serves the next
  consumer plus the next copy.  Copies are spread along the dependence
  path instead of concentrating around the producer.
* ``"tree"``: a balanced binary fan-out tree, halving the added latency on
  the deepest consumer at the price of the same copy count.  Exposed for
  the ABL-SINGLEUSE ablation.
"""

from __future__ import annotations

from typing import List, Tuple

from ...errors import TransformError
from ..ddg import DDG
from ..loop import Loop
from ..opcodes import OpCode
from ..operations import ValueUse

#: Maximum consumer references per produced value after the transform.
MAX_FANOUT = 2

Ref = Tuple[int, int, int]  # (consumer op id, operand index, omega)


def single_use_ddg(ddg: DDG, strategy: str = "chain") -> DDG:
    """Return a copy of *ddg* where every value has fan-out <= 2."""
    if strategy not in ("chain", "tree"):
        raise TransformError(f"unknown single-use strategy {strategy!r}")
    result = ddg.copy(ddg.name)
    for op_id in list(result.op_ids):
        refs = result.flow_succ_refs(op_id)
        if len(refs) <= MAX_FANOUT:
            continue
        if strategy == "chain":
            _chain_insert(result, op_id, refs)
        else:
            _tree_insert(result, op_id, refs)
    return result


def _redirect(ddg: DDG, refs: List[Ref], new_producer: int) -> None:
    """Point every reference in *refs* at *new_producer* (same omega)."""
    for consumer, index, omega in refs:
        ddg.replace_operand(consumer, index, ValueUse(new_producer, omega))


def _chain_insert(ddg: DDG, producer: int, refs: List[Ref]) -> None:
    """Linear copy chain: producer -> copy -> copy -> ... (paper shape)."""
    current = producer
    remaining = refs
    while len(remaining) > MAX_FANOUT:
        # Keep one direct consumer on `current`; a copy serves the rest.
        rest = remaining[1:]
        copy = ddg.new_operation(
            OpCode.COPY, (ValueUse(current, 0),), tag=f"cp(v{producer})"
        )
        _redirect(ddg, rest, copy.op_id)
        current = copy.op_id
        remaining = rest


def _tree_insert(ddg: DDG, producer: int, refs: List[Ref]) -> None:
    """Balanced binary fan-out tree of copies."""

    def serve(source: int, subset: List[Ref]) -> None:
        # Make *source* the producer for every reference in *subset*,
        # introducing copies so that its fan-out stays within MAX_FANOUT.
        if len(subset) <= MAX_FANOUT:
            _redirect(ddg, subset, source)
            return
        mid = (len(subset) + 1) // 2
        for half in (subset[:mid], subset[mid:]):
            if len(half) == 1:
                _redirect(ddg, half, source)
                continue
            copy = ddg.new_operation(
                OpCode.COPY, (ValueUse(source, 0),), tag=f"cp(v{producer})"
            )
            serve(copy.op_id, half)

    serve(producer, refs)


def single_use_loop(loop: Loop, strategy: str = "chain") -> Loop:
    """Apply the transform to a loop, returning a new loop object."""
    return loop.with_ddg(single_use_ddg(loop.ddg, strategy))


def max_fanout(ddg: DDG) -> int:
    """Largest consumer-reference count of any value in *ddg*."""
    if not len(ddg):
        return 0
    return max(ddg.flow_fanout(op_id) for op_id in ddg.op_ids)


def copy_count(ddg: DDG) -> int:
    """Number of COPY operations present in *ddg*."""
    return sum(1 for op in ddg.operations() if op.opcode == OpCode.COPY)
