"""Intermediate representation: operations, dependence graphs, loops."""

from .builder import Carried, LoopBuilder, Placeholder, Value
from .ddg import DDG
from .dot import ddg_to_dot
from .edges import DepEdge, DepKind
from .loop import Loop
from .opcodes import (
    DEFAULT_LATENCIES,
    FUKind,
    LatencyModel,
    OpCode,
    USEFUL_FU_KINDS,
    fu_kind_of,
    is_useful,
    produces_value,
)
from .operations import Operation, ValueUse, external, use

__all__ = [
    "Carried",
    "LoopBuilder",
    "Placeholder",
    "Value",
    "DDG",
    "ddg_to_dot",
    "DepEdge",
    "DepKind",
    "Loop",
    "DEFAULT_LATENCIES",
    "FUKind",
    "LatencyModel",
    "OpCode",
    "USEFUL_FU_KINDS",
    "fu_kind_of",
    "is_useful",
    "produces_value",
    "Operation",
    "ValueUse",
    "external",
    "use",
]
