"""Graphviz DOT export for dependence graphs.

Produces plain DOT text (no graphviz dependency): operations become
nodes coloured by functional-unit kind, flow edges are solid (labelled
with omega when loop-carried), memory/ordering edges dashed.  Feed the
output to ``dot -Tsvg`` anywhere graphviz is available.
"""

from __future__ import annotations

from typing import Mapping, Optional

from .ddg import DDG
from .opcodes import FUKind

_KIND_COLOUR: Mapping[FUKind, str] = {
    FUKind.MEM: "lightblue",
    FUKind.ALU: "palegreen",
    FUKind.MUL: "lightsalmon",
    FUKind.COPY: "lightgrey",
}


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def ddg_to_dot(
    ddg: DDG,
    clusters: Optional[Mapping[int, int]] = None,
) -> str:
    """Render *ddg* as DOT text.

    With *clusters* (op id -> cluster index, e.g. from a schedule's
    placements) operations are grouped into per-cluster subgraphs, which
    makes partitioning decisions visible at a glance.
    """
    lines = [f"digraph {_quote(ddg.name)} {{", "  rankdir=TB;",
             "  node [style=filled, shape=box, fontsize=10];"]

    def node_line(op) -> str:
        label = f"v{op.op_id}: {op.opcode.value}"
        if op.tag:
            label += f"\\n{op.tag}"
        colour = _KIND_COLOUR[op.fu_kind]
        return (
            f"  v{op.op_id} [label={_quote(label)}, fillcolor={colour}];"
        )

    if clusters:
        by_cluster: dict = {}
        for op in ddg.operations():
            by_cluster.setdefault(clusters.get(op.op_id, -1), []).append(op)
        for cluster in sorted(by_cluster):
            lines.append(f"  subgraph cluster_{cluster} {{")
            lines.append(f"    label={_quote(f'cluster {cluster}')};")
            for op in by_cluster[cluster]:
                lines.append("  " + node_line(op))
            lines.append("  }")
    else:
        for op in ddg.operations():
            lines.append(node_line(op))

    for edge in ddg.edges():
        attributes = []
        if edge.omega:
            attributes.append(f"label={_quote(str(edge.omega))}")
        if not edge.is_flow:
            attributes.append("style=dashed")
            attributes.append("color=gray40")
        attr_text = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"  v{edge.src} -> v{edge.dst}{attr_text};")
    lines.append("}")
    return "\n".join(lines)
