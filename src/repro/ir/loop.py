"""The :class:`Loop` container: a DDG plus execution metadata.

A loop is the scheduling unit of the paper: an innermost loop body (the
DDG) together with a trip count used by the dynamic performance metrics
(Figures 5 and 6 weight every loop by its executed iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from ..errors import DDGError
from .ddg import DDG


@dataclass
class Loop:
    """An innermost loop eligible for software pipelining.

    Attributes:
        name: unique name within a workload suite.
        ddg: the loop-body dependence graph.
        trip_count: number of iterations executed (dynamic weight).
        unroll_factor: how many original iterations one DDG iteration
            covers (1 for un-unrolled loops; set by the unroll transform).
        origin: free-form provenance (kernel template, generator seed...).
    """

    name: str
    ddg: DDG
    trip_count: int = 100
    unroll_factor: int = 1
    origin: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.trip_count < 1:
            raise DDGError(f"loop {self.name!r}: trip_count must be >= 1")
        if self.unroll_factor < 1:
            raise DDGError(f"loop {self.name!r}: unroll_factor must be >= 1")

    @property
    def n_ops(self) -> int:
        """Number of operations in the body."""
        return len(self.ddg)

    @property
    def kernel_iterations(self) -> int:
        """Iterations of the (possibly unrolled) body needed to cover
        ``trip_count`` original iterations (ceiling division; the remainder
        is folded into the last kernel iteration, see DESIGN.md 6.9)."""
        return -(-self.trip_count // self.unroll_factor)

    @property
    def is_vectorizable(self) -> bool:
        """True when the loop has no dependence recurrence (paper's Set 2)."""
        return not self.ddg.has_recurrence()

    def with_ddg(self, ddg: DDG, unroll_factor: int = None) -> "Loop":
        """Return a copy of the loop with a replacement body."""
        return replace(
            self,
            ddg=ddg,
            unroll_factor=self.unroll_factor if unroll_factor is None else unroll_factor,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Loop {self.name!r} ops={self.n_ops} trip={self.trip_count} "
            f"unroll={self.unroll_factor}>"
        )
