"""Dependence edges.

Edges come in two families:

* **flow** edges are derived automatically from operand references and
  carry the producer's latency (resolved through a
  :class:`~repro.ir.opcodes.LatencyModel` at scheduling time).  Only flow
  edges constrain *cluster placement* in DMS, because only register values
  travel through the CQRF ring.
* **mem/anti/output** edges are explicit ordering edges with their own
  latency; they constrain timing but never communication (memory is shared
  between clusters in the paper's machine model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class DepKind(enum.Enum):
    """Kind of a dependence edge."""

    FLOW = "flow"  # true register dependence (value communication)
    MEM = "mem"  # memory ordering (store->load, load->store, store->store)
    ANTI = "anti"  # register anti-dependence (rare with renaming)
    OUTPUT = "output"  # register output dependence

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DepKind.{self.name}"


#: Edge kinds that require producer/consumer cluster adjacency.
COMMUNICATING_KINDS = frozenset({DepKind.FLOW})


@dataclass(frozen=True)
class DepEdge:
    """A dependence edge ``src -> dst``.

    The scheduling constraint imposed by an edge is::

        t(dst) >= t(src) + latency - II * omega

    where ``latency`` is the explicit edge latency for non-flow edges and
    the producer latency for flow edges (``latency is None`` then).
    """

    src: int
    dst: int
    kind: DepKind = DepKind.FLOW
    omega: int = 0
    latency: Optional[int] = None

    def __post_init__(self) -> None:
        if self.omega < 0:
            raise ValueError(f"omega must be >= 0, got {self.omega}")
        if self.kind == DepKind.FLOW and self.latency is not None:
            raise ValueError("flow edges derive latency from the producer opcode")
        if self.kind != DepKind.FLOW and self.latency is None:
            raise ValueError(f"{self.kind.value} edges need an explicit latency")
        if self.kind != DepKind.FLOW and self.latency < 0:
            raise ValueError(f"edge latency must be >= 0, got {self.latency}")

    @property
    def key(self) -> Tuple[int, int, DepKind, int]:
        """Uniqueness key: one edge per (src, dst, kind, omega); cached."""
        try:
            return self._key
        except AttributeError:
            value = (self.src, self.dst, self.kind, self.omega)
            object.__setattr__(self, "_key", value)
            return value

    @property
    def is_flow(self) -> bool:
        """True for register flow (value-carrying) edges."""
        return self.kind is DepKind.FLOW

    @property
    def communicates(self) -> bool:
        """True when the edge moves a value between producer and consumer.

        Cached: the schedulers test this on every adjacency walk.
        """
        try:
            return self._communicates
        except AttributeError:
            value = self.kind in COMMUNICATING_KINDS
            object.__setattr__(self, "_communicates", value)
            return value

    @property
    def is_loop_carried(self) -> bool:
        """True when the dependence crosses an iteration boundary."""
        return self.omega > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lat = "" if self.latency is None else f", lat={self.latency}"
        return f"<{self.kind.value} {self.src}->{self.dst} w={self.omega}{lat}>"
