"""The data dependence graph (DDG).

The DDG is the unit of work for the schedulers: operations (nodes) plus
dependence edges.  Flow edges are *derived* from operand references so the
graph can never disagree with the operations' operands; memory and other
ordering edges are explicit.

The graph is mutable because both the single-use transformation and the DMS
scheduler itself rewrite it (copy and move insertion, chain dismantling).
Mutation goes through a small API that keeps operands and edges in sync.

Adjacency queries (``in_edges``/``out_edges``/``op_ids``/
``flow_succ_refs``) are on the scheduler's innermost loops, so they return
pre-sorted tuples cached per operation and invalidated only by mutation:
a read between mutations costs one dict lookup instead of a sort.  Every
edge insert/remove also bumps a per-endpoint *adjacency version*
(:meth:`DDG.adj_version`), which lets schedulers key their own incremental
state (e.g. communication-compatibility sets) off graph changes without
subscribing to them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import DDGError
from .edges import DepEdge, DepKind
from .opcodes import LatencyModel, OpCode, is_useful, produces_value
from .operations import Operation, ValueUse

EdgeKey = Tuple[int, int, DepKind, int]


def _tarjan_sccs(adj: Dict[int, List[int]]) -> List[List[int]]:
    """Strongly connected components of *adj* (iterative Tarjan).

    Pure-Python replacement for the networkx call on the MII hot path:
    no graph-object conversion, no recursion.  Roots are visited in
    *adj*'s iteration order, so the result is deterministic for the
    sorted adjacency built by :meth:`DDG._adjacency`.
    """
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack = set()
    stack: List[int] = []
    result: List[List[int]] = []
    counter = 0
    for root in adj:
        if root in index:
            continue
        work: List[Tuple[int, Iterator[int]]] = [(root, iter(adj[root]))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs = work[-1]
            advanced = False
            for succ in succs:
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adj[succ])))
                    advanced = True
                    break
                if succ in on_stack and index[succ] < low[node]:
                    low[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
            if low[node] == index[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


class DDG:
    """A mutable data dependence graph for one innermost loop body."""

    def __init__(self, name: str = "loop"):
        self.name = name
        self._ops: Dict[int, Operation] = {}
        # All edges (flow derived + explicit), indexed both ways.
        self._out: Dict[int, Dict[EdgeKey, DepEdge]] = {}
        self._in: Dict[int, Dict[EdgeKey, DepEdge]] = {}
        self._next_id = 0
        # Read caches: pre-sorted adjacency tuples per op, the sorted id
        # tuple, and per-op flow consumer references.  Values are
        # immutable, built on first read and dropped on mutation (see
        # _invalidate_*), so repeated reads between mutations are O(1).
        self._out_cache: Dict[int, Tuple[DepEdge, ...]] = {}
        self._in_cache: Dict[int, Tuple[DepEdge, ...]] = {}
        self._refs_cache: Dict[int, Tuple[Tuple[int, int, int], ...]] = {}
        self._op_ids_cache: Optional[Tuple[int, ...]] = None
        # Monotonic per-op adjacency versions (bumped on any edge change
        # touching the op); scheduler-side caches key off these.
        self._adj_version: Dict[int, int] = {}
        # Forward references: missing producer id -> consumer ids that
        # referenced it when they were inserted.  Entries are verified
        # against the consumers' *current* operands when the producer
        # arrives, so stale hints (operand replaced, consumer removed)
        # are harmless.  This replaces the all-ops scan that made every
        # insertion O(graph).
        self._forward: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------

    def allocate_id(self) -> int:
        """Reserve and return a fresh operation id."""
        op_id = self._next_id
        self._next_id += 1
        return op_id

    @classmethod
    def bulk(
        cls,
        name: str,
        ops: Iterable[Operation],
        explicit_edges: Iterable[DepEdge] = (),
    ) -> "DDG":
        """Build a DDG from a complete operation set in one pass.

        Unlike repeated :meth:`add_operation` calls this is linear in the
        number of operands, which matters for unrolled graphs.
        """
        ddg = cls(name)
        for op in ops:
            if op.op_id in ddg._ops:
                raise DDGError(f"duplicate op id {op.op_id} in DDG {name!r}")
            ddg._ops[op.op_id] = op
            ddg._out.setdefault(op.op_id, {})
            ddg._in.setdefault(op.op_id, {})
            ddg._next_id = max(ddg._next_id, op.op_id + 1)
        for op in ddg._ops.values():
            ddg._derive_flow_in_edges(op)
        for edge in explicit_edges:
            if edge.is_flow:
                raise DDGError("explicit flow edges are not allowed; use operands")
            if edge.src not in ddg._ops or edge.dst not in ddg._ops:
                raise DDGError(f"bulk edge {edge} references unknown ops")
            ddg._insert_edge(edge)
        return ddg

    def add_operation(self, op: Operation) -> Operation:
        """Insert *op*, deriving flow edges from its operands.

        Operands may reference operations that are not in the graph yet
        (forward references are resolved lazily by :meth:`validate`), but
        normal construction order is producers first.
        """
        if op.op_id in self._ops:
            raise DDGError(f"duplicate op id {op.op_id} in DDG {self.name!r}")
        self._ops[op.op_id] = op
        self._out.setdefault(op.op_id, {})
        self._in.setdefault(op.op_id, {})
        self._next_id = max(self._next_id, op.op_id + 1)
        self._op_ids_cache = None
        self._derive_flow_in_edges(op)
        # Existing ops may hold forward references to this op.
        pending = self._forward.pop(op.op_id, None)
        if pending:
            for consumer_id in pending:
                other = self._ops.get(consumer_id)
                if other is None or other.op_id == op.op_id:
                    continue
                for src in other.internal_srcs:
                    if src.producer == op.op_id:
                        self._insert_edge(
                            DepEdge(op.op_id, other.op_id, DepKind.FLOW, src.omega)
                        )
        return op

    def new_operation(
        self,
        opcode: OpCode,
        srcs: Sequence[ValueUse] = (),
        tag: str = "",
        op_id: Optional[int] = None,
    ) -> Operation:
        """Create, insert and return a new operation with a fresh id."""
        if op_id is None:
            op_id = self.allocate_id()
        return self.add_operation(Operation(op_id, opcode, tuple(srcs), tag))

    def remove_operation(self, op_id: int) -> None:
        """Remove an operation that no other operation references."""
        if op_id not in self._ops:
            raise DDGError(f"op {op_id} not in DDG {self.name!r}")
        consumers = [e.dst for e in self.out_edges(op_id) if e.is_flow]
        if consumers:
            raise DDGError(
                f"op {op_id} still referenced by {sorted(set(consumers))}; "
                "rewire consumers before removing"
            )
        for edge in list(self.out_edges(op_id)) + list(self.in_edges(op_id)):
            self._remove_edge(edge)
        del self._ops[op_id]
        self._out.pop(op_id, None)
        self._in.pop(op_id, None)
        self._op_ids_cache = None
        self._out_cache.pop(op_id, None)
        self._in_cache.pop(op_id, None)
        self._refs_cache.pop(op_id, None)
        self._adj_version.pop(op_id, None)

    def replace_operand(self, op_id: int, index: int, new_src: ValueUse) -> None:
        """Replace operand *index* of op *op_id*, re-deriving flow edges."""
        op = self.op(op_id)
        if not 0 <= index < len(op.srcs):
            raise DDGError(f"op {op_id} has no operand index {index}")
        srcs = list(op.srcs)
        srcs[index] = new_src
        self._retire_flow_in_edges(op_id)
        self._ops[op_id] = op.with_srcs(tuple(srcs))
        self._derive_flow_in_edges(self._ops[op_id])

    def add_dep(
        self,
        src: int,
        dst: int,
        kind: DepKind,
        omega: int = 0,
        latency: int = 0,
    ) -> DepEdge:
        """Add an explicit (non-flow) ordering edge."""
        if kind == DepKind.FLOW:
            raise DDGError("flow edges are derived from operands; use operands")
        if src not in self._ops or dst not in self._ops:
            raise DDGError(f"edge {src}->{dst} references unknown ops")
        edge = DepEdge(src, dst, kind, omega, latency)
        self._insert_edge(edge)
        return edge

    def remove_dep(self, edge: DepEdge) -> None:
        """Remove an explicit ordering edge."""
        if edge.is_flow:
            raise DDGError("flow edges are derived; rewire operands instead")
        self._remove_edge(edge)

    def _derive_flow_in_edges(self, op: Operation) -> None:
        for src in op.internal_srcs:
            if src.producer in self._ops:
                self._insert_edge(DepEdge(src.producer, op.op_id, DepKind.FLOW, src.omega))
            else:
                self._forward.setdefault(src.producer, []).append(op.op_id)

    def _retire_flow_in_edges(self, op_id: int) -> None:
        for edge in [e for e in self.in_edges(op_id) if e.is_flow]:
            self._remove_edge(edge)

    def _insert_edge(self, edge: DepEdge) -> None:
        self._out.setdefault(edge.src, {})[edge.key] = edge
        self._in.setdefault(edge.dst, {})[edge.key] = edge
        self._touch_endpoints(edge)

    def _remove_edge(self, edge: DepEdge) -> None:
        self._out.get(edge.src, {}).pop(edge.key, None)
        self._in.get(edge.dst, {}).pop(edge.key, None)
        self._touch_endpoints(edge)

    def _touch_endpoints(self, edge: DepEdge) -> None:
        """Drop read caches and bump versions after an edge change."""
        self._out_cache.pop(edge.src, None)
        self._in_cache.pop(edge.dst, None)
        # Consumer references depend on the producer's out edges *and* the
        # consumer's operand list; both endpoints' refs may shift.
        self._refs_cache.pop(edge.src, None)
        versions = self._adj_version
        versions[edge.src] = versions.get(edge.src, 0) + 1
        versions[edge.dst] = versions.get(edge.dst, 0) + 1

    def adj_version(self, op_id: int) -> int:
        """Monotonic counter bumped whenever an edge touching *op_id*
        is inserted or removed.  External caches derived from this op's
        adjacency are valid exactly while the version is unchanged."""
        return self._adj_version.get(op_id, 0)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def op(self, op_id: int) -> Operation:
        """Return the operation with id *op_id*."""
        try:
            return self._ops[op_id]
        except KeyError:
            raise DDGError(f"op {op_id} not in DDG {self.name!r}") from None

    def __contains__(self, op_id: int) -> bool:
        return op_id in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def op_ids(self) -> Tuple[int, ...]:
        """Sorted operation ids (cached between mutations)."""
        ids = self._op_ids_cache
        if ids is None:
            ids = self._op_ids_cache = tuple(sorted(self._ops))
        return ids

    def operations(self) -> Iterator[Operation]:
        """Iterate operations in id order."""
        for op_id in self.op_ids:
            yield self._ops[op_id]

    def out_edges(self, op_id: int) -> Tuple[DepEdge, ...]:
        """Edges leaving *op_id* (deterministic order, cached)."""
        edges = self._out_cache.get(op_id)
        if edges is None:
            edges = tuple(
                sorted(
                    self._out.get(op_id, {}).values(),
                    key=lambda e: (e.dst, e.kind.value, e.omega),
                )
            )
            self._out_cache[op_id] = edges
        return edges

    def in_edges(self, op_id: int) -> Tuple[DepEdge, ...]:
        """Edges entering *op_id* (deterministic order, cached)."""
        edges = self._in_cache.get(op_id)
        if edges is None:
            edges = tuple(
                sorted(
                    self._in.get(op_id, {}).values(),
                    key=lambda e: (e.src, e.kind.value, e.omega),
                )
            )
            self._in_cache[op_id] = edges
        return edges

    def edges(self) -> Iterator[DepEdge]:
        """Iterate all edges, deterministically."""
        for op_id in self.op_ids:
            yield from self.out_edges(op_id)

    @property
    def n_edges(self) -> int:
        return sum(len(d) for d in self._out.values())

    def flow_succ_refs(self, op_id: int) -> Tuple[Tuple[int, int, int], ...]:
        """Consumer references of op *op_id*'s value.

        Returns one entry per operand reference (duplicates included) as
        ``(consumer_id, operand_index, omega)``, in deterministic order.
        This is the paper's "immediate data dependent successors" count.
        Cached between mutations of this op's out-adjacency.
        """
        cached = self._refs_cache.get(op_id)
        if cached is not None:
            return cached
        refs: List[Tuple[int, int, int]] = []
        for edge in self.out_edges(op_id):
            if not edge.is_flow:
                continue
            consumer = self._ops[edge.dst]
            for idx, src in enumerate(consumer.srcs):
                if not src.is_external and src.producer == op_id and src.omega == edge.omega:
                    refs.append((edge.dst, idx, edge.omega))
        result = tuple(refs)
        self._refs_cache[op_id] = result
        return result

    def flow_fanout(self, op_id: int) -> int:
        """Number of operand references to op *op_id*'s value."""
        return len(self.flow_succ_refs(op_id))

    def flow_succ_ref_edges(
        self, op_id: int
    ) -> List[Tuple[Tuple[int, int, int], DepEdge]]:
        """:meth:`flow_succ_refs` entries paired with their flow edges.

        The checker, the timing simulator and the execution oracle all
        need the per-reference view *and* the edge (for
        :meth:`edge_latency`); keeping the join here guarantees the two
        can never drift apart.
        """
        edges = {
            (edge.dst, edge.omega): edge
            for edge in self.out_edges(op_id)
            if edge.is_flow
        }
        return [
            (ref, edges[(ref[0], ref[2])])
            for ref in self.flow_succ_refs(op_id)
        ]

    def edge_latency(self, edge: DepEdge, latencies: LatencyModel) -> int:
        """Resolve the latency of *edge* under *latencies*.

        The result is cached on the edge object (keyed by latency-model
        identity): edges are shared between a graph and its copies, so
        the cache survives the per-restart copies and repeated schedule
        calls.  Safe because flow edges are only ever created internally
        for one graph family, and an op's opcode never changes.
        """
        cached = getattr(edge, "_lat_cache", None)
        if cached is not None and cached[0] is latencies:
            return cached[1]
        if edge.latency is not None:
            lat = edge.latency
        else:
            lat = latencies.latency(self._ops[edge.src].opcode)
        object.__setattr__(edge, "_lat_cache", (latencies, lat))
        return lat

    def n_useful_ops(self) -> int:
        """Number of operations counted by the paper's performance metrics."""
        return sum(1 for op in self._ops.values() if is_useful(op.opcode))

    def opcode_histogram(self) -> Dict[OpCode, int]:
        """Histogram of opcodes in the graph."""
        hist: Dict[OpCode, int] = {}
        for op in self._ops.values():
            hist[op.opcode] = hist.get(op.opcode, 0) + 1
        return hist

    # ------------------------------------------------------------------
    # Structure analysis
    # ------------------------------------------------------------------

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export to a networkx MultiDiGraph (edge data: kind, omega)."""
        graph = nx.MultiDiGraph(name=self.name)
        graph.add_nodes_from(self._ops)
        for edge in self.edges():
            graph.add_edge(edge.src, edge.dst, kind=edge.kind, omega=edge.omega)
        return graph

    def _adjacency(self, *, flow_only: bool = False) -> Dict[int, List[int]]:
        """Successor-id lists (sorted, deduplicated) for graph analyses."""
        adj: Dict[int, List[int]] = {}
        for op_id in self.op_ids:
            succs = {
                e.dst
                for e in self.out_edges(op_id)
                if not flow_only or e.is_flow
            }
            adj[op_id] = sorted(succs)
        return adj

    def sccs(self) -> List[List[int]]:
        """Non-trivial strongly connected components (recurrences).

        A component is non-trivial when it has more than one node or a
        self-loop edge; these are exactly the recurrence circuits that
        bound RecMII.
        """
        adj = self._adjacency()
        result: List[List[int]] = []
        for comp in _tarjan_sccs(adj):
            nodes = sorted(comp)
            if len(nodes) > 1 or nodes[0] in adj[nodes[0]]:
                result.append(nodes)
        result.sort()
        return result

    def has_recurrence(self, *, flow_only: bool = False) -> bool:
        """True when the graph contains a dependence circuit.

        With ``flow_only=True`` memory ordering edges are ignored, matching
        the paper's "loops without recurrences" set-2 definition applied to
        register dataflow.
        """
        adj = self._adjacency(flow_only=flow_only)
        for comp in _tarjan_sccs(adj):
            if len(comp) > 1:
                return True
            node = comp[0]
            if node in adj[node]:
                return True
        return False

    def critical_path_length(self, latencies: LatencyModel) -> int:
        """Longest intra-iteration dependence path (omega-0 edges only)."""
        order = self._topo_order_omega0()
        dist = {op_id: 0 for op_id in self._ops}
        for op_id in order:
            for edge in self.out_edges(op_id):
                if edge.omega != 0:
                    continue
                lat = self.edge_latency(edge, latencies)
                if dist[op_id] + lat > dist[edge.dst]:
                    dist[edge.dst] = dist[op_id] + lat
        if not dist:
            return 0
        return max(
            dist[op.op_id] + latencies.latency(op.opcode) for op in self._ops.values()
        )

    def _topo_order_omega0(self) -> List[int]:
        """Kahn topological order over the omega-0 subgraph."""
        indegree: Dict[int, int] = {op_id: 0 for op_id in self.op_ids}
        succs: Dict[int, List[int]] = {op_id: [] for op_id in self.op_ids}
        for op_id in self.op_ids:
            for edge in self.out_edges(op_id):
                if edge.omega == 0:
                    succs[op_id].append(edge.dst)
                    indegree[edge.dst] += 1
        ready = [op_id for op_id in self.op_ids if indegree[op_id] == 0]
        order: List[int] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for succ in succs[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._ops):
            raise DDGError(
                f"DDG {self.name!r} has an omega-0 dependence cycle; "
                "loop-carried edges must have omega >= 1"
            )
        return order

    # ------------------------------------------------------------------
    # Copy / validation / display
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "DDG":
        """Deep-copy the graph (operations are immutable, so shared)."""
        clone = DDG(name or self.name)
        clone._ops = dict(self._ops)
        clone._out = {k: dict(v) for k, v in self._out.items()}
        clone._in = {k: dict(v) for k, v in self._in.items()}
        clone._next_id = self._next_id
        # Cache values are immutable tuples; sharing them is safe because
        # each graph drops its own entries on mutation.  Adjacency
        # versions are *not* carried over: consumers of the clone rebuild
        # their keyed state lazily (starting from version 0), which keeps
        # the per-restart copy as cheap as possible.
        clone._out_cache = dict(self._out_cache)
        clone._in_cache = dict(self._in_cache)
        clone._refs_cache = dict(self._refs_cache)
        clone._op_ids_cache = self._op_ids_cache
        clone._forward = {k: list(v) for k, v in self._forward.items()}
        return clone

    def validate(self) -> None:
        """Check internal consistency; raise :class:`DDGError` on failure."""
        for op in self._ops.values():
            for src in op.internal_srcs:
                if src.producer not in self._ops:
                    raise DDGError(
                        f"op {op.op_id} reads missing producer {src.producer}"
                    )
                producer = self._ops[src.producer]
                if not produces_value(producer.opcode):
                    raise DDGError(
                        f"op {op.op_id} reads op {src.producer} "
                        f"({producer.opcode.value}) which produces no value"
                    )
                key = (src.producer, op.op_id, DepKind.FLOW, src.omega)
                if key not in self._in.get(op.op_id, {}):
                    raise DDGError(f"missing derived flow edge for {key}")
        for edge in self.edges():
            if edge.src not in self._ops or edge.dst not in self._ops:
                raise DDGError(f"dangling edge {edge}")
            if edge.is_flow:
                consumer = self._ops[edge.dst]
                if not any(
                    (not s.is_external)
                    and s.producer == edge.src
                    and s.omega == edge.omega
                    for s in consumer.srcs
                ):
                    raise DDGError(f"stale flow edge {edge} without operand")
        # omega-0 subgraph must be acyclic (checked by the topo order).
        self._topo_order_omega0()

    def summary(self) -> str:
        """Short human-readable description."""
        rec = "recurrent" if self.has_recurrence() else "recurrence-free"
        return (
            f"DDG {self.name!r}: {len(self)} ops, {self.n_edges} edges, "
            f"{self.n_useful_ops()} useful, {rec}"
        )

    def pretty(self, latencies: LatencyModel = None) -> str:
        """Multi-line listing of operations and edges."""
        lines = [self.summary()]
        for op in self.operations():
            args = ", ".join(repr(s) for s in op.srcs)
            tag = f"  ; {op.tag}" if op.tag else ""
            lines.append(f"  v{op.op_id} = {op.opcode.value}({args}){tag}")
        explicit = [e for e in self.edges() if not e.is_flow]
        if explicit:
            lines.append("  ordering edges:")
            for edge in explicit:
                lines.append(f"    {edge!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DDG {self.name!r} ops={len(self)} edges={self.n_edges}>"
