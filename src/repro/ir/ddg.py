"""The data dependence graph (DDG).

The DDG is the unit of work for the schedulers: operations (nodes) plus
dependence edges.  Flow edges are *derived* from operand references so the
graph can never disagree with the operations' operands; memory and other
ordering edges are explicit.

The graph is mutable because both the single-use transformation and the DMS
scheduler itself rewrite it (copy and move insertion, chain dismantling).
Mutation goes through a small API that keeps operands and edges in sync.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import DDGError
from .edges import DepEdge, DepKind
from .opcodes import LatencyModel, OpCode, is_useful, produces_value
from .operations import Operation, ValueUse

EdgeKey = Tuple[int, int, DepKind, int]


class DDG:
    """A mutable data dependence graph for one innermost loop body."""

    def __init__(self, name: str = "loop"):
        self.name = name
        self._ops: Dict[int, Operation] = {}
        # All edges (flow derived + explicit), indexed both ways.
        self._out: Dict[int, Dict[EdgeKey, DepEdge]] = {}
        self._in: Dict[int, Dict[EdgeKey, DepEdge]] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------

    def allocate_id(self) -> int:
        """Reserve and return a fresh operation id."""
        op_id = self._next_id
        self._next_id += 1
        return op_id

    @classmethod
    def bulk(
        cls,
        name: str,
        ops: Iterable[Operation],
        explicit_edges: Iterable[DepEdge] = (),
    ) -> "DDG":
        """Build a DDG from a complete operation set in one pass.

        Unlike repeated :meth:`add_operation` calls this is linear in the
        number of operands, which matters for unrolled graphs.
        """
        ddg = cls(name)
        for op in ops:
            if op.op_id in ddg._ops:
                raise DDGError(f"duplicate op id {op.op_id} in DDG {name!r}")
            ddg._ops[op.op_id] = op
            ddg._out.setdefault(op.op_id, {})
            ddg._in.setdefault(op.op_id, {})
            ddg._next_id = max(ddg._next_id, op.op_id + 1)
        for op in ddg._ops.values():
            ddg._derive_flow_in_edges(op)
        for edge in explicit_edges:
            if edge.is_flow:
                raise DDGError("explicit flow edges are not allowed; use operands")
            if edge.src not in ddg._ops or edge.dst not in ddg._ops:
                raise DDGError(f"bulk edge {edge} references unknown ops")
            ddg._insert_edge(edge)
        return ddg

    def add_operation(self, op: Operation) -> Operation:
        """Insert *op*, deriving flow edges from its operands.

        Operands may reference operations that are not in the graph yet
        (forward references are resolved lazily by :meth:`validate`), but
        normal construction order is producers first.
        """
        if op.op_id in self._ops:
            raise DDGError(f"duplicate op id {op.op_id} in DDG {self.name!r}")
        self._ops[op.op_id] = op
        self._out.setdefault(op.op_id, {})
        self._in.setdefault(op.op_id, {})
        self._next_id = max(self._next_id, op.op_id + 1)
        self._derive_flow_in_edges(op)
        # Existing ops may hold forward references to this op.
        for other in self._ops.values():
            if other.op_id == op.op_id:
                continue
            for src in other.internal_srcs:
                if src.producer == op.op_id:
                    self._insert_edge(
                        DepEdge(op.op_id, other.op_id, DepKind.FLOW, src.omega)
                    )
        return op

    def new_operation(
        self,
        opcode: OpCode,
        srcs: Sequence[ValueUse] = (),
        tag: str = "",
        op_id: Optional[int] = None,
    ) -> Operation:
        """Create, insert and return a new operation with a fresh id."""
        if op_id is None:
            op_id = self.allocate_id()
        return self.add_operation(Operation(op_id, opcode, tuple(srcs), tag))

    def remove_operation(self, op_id: int) -> None:
        """Remove an operation that no other operation references."""
        if op_id not in self._ops:
            raise DDGError(f"op {op_id} not in DDG {self.name!r}")
        consumers = [e.dst for e in self.out_edges(op_id) if e.is_flow]
        if consumers:
            raise DDGError(
                f"op {op_id} still referenced by {sorted(set(consumers))}; "
                "rewire consumers before removing"
            )
        for edge in list(self.out_edges(op_id)) + list(self.in_edges(op_id)):
            self._remove_edge(edge)
        del self._ops[op_id]
        self._out.pop(op_id, None)
        self._in.pop(op_id, None)

    def replace_operand(self, op_id: int, index: int, new_src: ValueUse) -> None:
        """Replace operand *index* of op *op_id*, re-deriving flow edges."""
        op = self.op(op_id)
        if not 0 <= index < len(op.srcs):
            raise DDGError(f"op {op_id} has no operand index {index}")
        srcs = list(op.srcs)
        srcs[index] = new_src
        self._retire_flow_in_edges(op_id)
        self._ops[op_id] = op.with_srcs(tuple(srcs))
        self._derive_flow_in_edges(self._ops[op_id])

    def add_dep(
        self,
        src: int,
        dst: int,
        kind: DepKind,
        omega: int = 0,
        latency: int = 0,
    ) -> DepEdge:
        """Add an explicit (non-flow) ordering edge."""
        if kind == DepKind.FLOW:
            raise DDGError("flow edges are derived from operands; use operands")
        if src not in self._ops or dst not in self._ops:
            raise DDGError(f"edge {src}->{dst} references unknown ops")
        edge = DepEdge(src, dst, kind, omega, latency)
        self._insert_edge(edge)
        return edge

    def remove_dep(self, edge: DepEdge) -> None:
        """Remove an explicit ordering edge."""
        if edge.is_flow:
            raise DDGError("flow edges are derived; rewire operands instead")
        self._remove_edge(edge)

    def _derive_flow_in_edges(self, op: Operation) -> None:
        for src in op.internal_srcs:
            if src.producer in self._ops:
                self._insert_edge(DepEdge(src.producer, op.op_id, DepKind.FLOW, src.omega))

    def _retire_flow_in_edges(self, op_id: int) -> None:
        for edge in [e for e in self.in_edges(op_id) if e.is_flow]:
            self._remove_edge(edge)

    def _insert_edge(self, edge: DepEdge) -> None:
        self._out.setdefault(edge.src, {})[edge.key] = edge
        self._in.setdefault(edge.dst, {})[edge.key] = edge

    def _remove_edge(self, edge: DepEdge) -> None:
        self._out.get(edge.src, {}).pop(edge.key, None)
        self._in.get(edge.dst, {}).pop(edge.key, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def op(self, op_id: int) -> Operation:
        """Return the operation with id *op_id*."""
        try:
            return self._ops[op_id]
        except KeyError:
            raise DDGError(f"op {op_id} not in DDG {self.name!r}") from None

    def __contains__(self, op_id: int) -> bool:
        return op_id in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def op_ids(self) -> List[int]:
        """Sorted operation ids."""
        return sorted(self._ops)

    def operations(self) -> Iterator[Operation]:
        """Iterate operations in id order."""
        for op_id in self.op_ids:
            yield self._ops[op_id]

    def out_edges(self, op_id: int) -> List[DepEdge]:
        """Edges leaving *op_id* (deterministic order)."""
        return sorted(
            self._out.get(op_id, {}).values(),
            key=lambda e: (e.dst, e.kind.value, e.omega),
        )

    def in_edges(self, op_id: int) -> List[DepEdge]:
        """Edges entering *op_id* (deterministic order)."""
        return sorted(
            self._in.get(op_id, {}).values(),
            key=lambda e: (e.src, e.kind.value, e.omega),
        )

    def edges(self) -> Iterator[DepEdge]:
        """Iterate all edges, deterministically."""
        for op_id in self.op_ids:
            yield from self.out_edges(op_id)

    @property
    def n_edges(self) -> int:
        return sum(len(d) for d in self._out.values())

    def flow_succ_refs(self, op_id: int) -> List[Tuple[int, int, int]]:
        """Consumer references of op *op_id*'s value.

        Returns one entry per operand reference (duplicates included) as
        ``(consumer_id, operand_index, omega)``, in deterministic order.
        This is the paper's "immediate data dependent successors" count.
        """
        refs: List[Tuple[int, int, int]] = []
        for edge in self.out_edges(op_id):
            if not edge.is_flow:
                continue
            consumer = self._ops[edge.dst]
            for idx, src in enumerate(consumer.srcs):
                if not src.is_external and src.producer == op_id and src.omega == edge.omega:
                    refs.append((edge.dst, idx, edge.omega))
        return refs

    def flow_fanout(self, op_id: int) -> int:
        """Number of operand references to op *op_id*'s value."""
        return len(self.flow_succ_refs(op_id))

    def edge_latency(self, edge: DepEdge, latencies: LatencyModel) -> int:
        """Resolve the latency of *edge* under *latencies*."""
        if edge.latency is not None:
            return edge.latency
        return latencies.latency(self._ops[edge.src].opcode)

    def n_useful_ops(self) -> int:
        """Number of operations counted by the paper's performance metrics."""
        return sum(1 for op in self._ops.values() if is_useful(op.opcode))

    def opcode_histogram(self) -> Dict[OpCode, int]:
        """Histogram of opcodes in the graph."""
        hist: Dict[OpCode, int] = {}
        for op in self._ops.values():
            hist[op.opcode] = hist.get(op.opcode, 0) + 1
        return hist

    # ------------------------------------------------------------------
    # Structure analysis
    # ------------------------------------------------------------------

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export to a networkx MultiDiGraph (edge data: kind, omega)."""
        graph = nx.MultiDiGraph(name=self.name)
        graph.add_nodes_from(self._ops)
        for edge in self.edges():
            graph.add_edge(edge.src, edge.dst, kind=edge.kind, omega=edge.omega)
        return graph

    def sccs(self) -> List[List[int]]:
        """Non-trivial strongly connected components (recurrences).

        A component is non-trivial when it has more than one node or a
        self-loop edge; these are exactly the recurrence circuits that
        bound RecMII.
        """
        graph = nx.DiGraph()
        graph.add_nodes_from(self._ops)
        graph.add_edges_from((e.src, e.dst) for e in self.edges())
        result: List[List[int]] = []
        for comp in nx.strongly_connected_components(graph):
            nodes = sorted(comp)
            if len(nodes) > 1 or graph.has_edge(nodes[0], nodes[0]):
                result.append(nodes)
        result.sort()
        return result

    def has_recurrence(self, *, flow_only: bool = False) -> bool:
        """True when the graph contains a dependence circuit.

        With ``flow_only=True`` memory ordering edges are ignored, matching
        the paper's "loops without recurrences" set-2 definition applied to
        register dataflow.
        """
        graph = nx.DiGraph()
        graph.add_nodes_from(self._ops)
        for edge in self.edges():
            if flow_only and not edge.is_flow:
                continue
            graph.add_edge(edge.src, edge.dst)
        for comp in nx.strongly_connected_components(graph):
            nodes = sorted(comp)
            if len(nodes) > 1 or graph.has_edge(nodes[0], nodes[0]):
                return True
        return False

    def critical_path_length(self, latencies: LatencyModel) -> int:
        """Longest intra-iteration dependence path (omega-0 edges only)."""
        order = self._topo_order_omega0()
        dist = {op_id: 0 for op_id in self._ops}
        for op_id in order:
            for edge in self.out_edges(op_id):
                if edge.omega != 0:
                    continue
                lat = self.edge_latency(edge, latencies)
                if dist[op_id] + lat > dist[edge.dst]:
                    dist[edge.dst] = dist[op_id] + lat
        if not dist:
            return 0
        return max(
            dist[op.op_id] + latencies.latency(op.opcode) for op in self._ops.values()
        )

    def _topo_order_omega0(self) -> List[int]:
        graph = nx.DiGraph()
        graph.add_nodes_from(self._ops)
        graph.add_edges_from(
            (e.src, e.dst) for e in self.edges() if e.omega == 0
        )
        try:
            return list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible:
            raise DDGError(
                f"DDG {self.name!r} has an omega-0 dependence cycle; "
                "loop-carried edges must have omega >= 1"
            ) from None

    # ------------------------------------------------------------------
    # Copy / validation / display
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "DDG":
        """Deep-copy the graph (operations are immutable, so shared)."""
        clone = DDG(name or self.name)
        clone._ops = dict(self._ops)
        clone._out = {k: dict(v) for k, v in self._out.items()}
        clone._in = {k: dict(v) for k, v in self._in.items()}
        clone._next_id = self._next_id
        return clone

    def validate(self) -> None:
        """Check internal consistency; raise :class:`DDGError` on failure."""
        for op in self._ops.values():
            for src in op.internal_srcs:
                if src.producer not in self._ops:
                    raise DDGError(
                        f"op {op.op_id} reads missing producer {src.producer}"
                    )
                producer = self._ops[src.producer]
                if not produces_value(producer.opcode):
                    raise DDGError(
                        f"op {op.op_id} reads op {src.producer} "
                        f"({producer.opcode.value}) which produces no value"
                    )
                key = (src.producer, op.op_id, DepKind.FLOW, src.omega)
                if key not in self._in.get(op.op_id, {}):
                    raise DDGError(f"missing derived flow edge for {key}")
        for edge in self.edges():
            if edge.src not in self._ops or edge.dst not in self._ops:
                raise DDGError(f"dangling edge {edge}")
            if edge.is_flow:
                consumer = self._ops[edge.dst]
                if not any(
                    (not s.is_external)
                    and s.producer == edge.src
                    and s.omega == edge.omega
                    for s in consumer.srcs
                ):
                    raise DDGError(f"stale flow edge {edge} without operand")
        # omega-0 subgraph must be acyclic (checked by the topo order).
        self._topo_order_omega0()

    def summary(self) -> str:
        """Short human-readable description."""
        rec = "recurrent" if self.has_recurrence() else "recurrence-free"
        return (
            f"DDG {self.name!r}: {len(self)} ops, {self.n_edges} edges, "
            f"{self.n_useful_ops()} useful, {rec}"
        )

    def pretty(self, latencies: LatencyModel = None) -> str:
        """Multi-line listing of operations and edges."""
        lines = [self.summary()]
        for op in self.operations():
            args = ", ".join(repr(s) for s in op.srcs)
            tag = f"  ; {op.tag}" if op.tag else ""
            lines.append(f"  v{op.op_id} = {op.opcode.value}({args}){tag}")
        explicit = [e for e in self.edges() if not e.is_flow]
        if explicit:
            lines.append("  ordering edges:")
            for edge in explicit:
                lines.append(f"    {edge!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DDG {self.name!r} ops={len(self)} edges={self.n_edges}>"
