"""Fluent construction API for loop DDGs.

Example: a dot-product loop ``acc += x[i] * c[i]``::

    b = LoopBuilder("dot")
    x = b.load("x[i]")
    c = b.load("c[i]")
    acc = b.placeholder()
    total = b.add(b.mul(x, c), b.carried(acc, 1), tag="acc")
    b.bind(acc, total)
    loop = b.build(trip_count=256)

``placeholder``/``bind`` express recurrences: a placeholder stands for a
value defined later in program order, and :meth:`bind` patches every use
once the real producer exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..errors import DDGError
from .ddg import DDG
from .edges import DepKind
from .loop import Loop
from .opcodes import OpCode
from .operations import Operation, ValueUse, external


@dataclass(frozen=True)
class Value:
    """Handle to an operation's result inside a :class:`LoopBuilder`."""

    op_id: int


@dataclass(frozen=True)
class Carried:
    """A loop-carried reference to a value (``omega`` iterations back)."""

    inner: Union[Value, "Placeholder"]
    omega: int


@dataclass(frozen=True)
class Placeholder:
    """Forward reference to a value defined later (for recurrences)."""

    index: int


Operand = Union[Value, Carried, Placeholder, str, int, float]


class LoopBuilder:
    """Builds a :class:`~repro.ir.loop.Loop` one operation at a time."""

    def __init__(self, name: str = "loop"):
        self.name = name
        self._ddg = DDG(name)
        self._placeholders: Dict[int, Optional[int]] = {}
        self._pending_uses: Dict[int, List[tuple]] = {}
        self._built = False

    # ------------------------------------------------------------------
    # Operand handling
    # ------------------------------------------------------------------

    def placeholder(self) -> Placeholder:
        """Create a forward reference for a recurrence."""
        index = len(self._placeholders)
        self._placeholders[index] = None
        self._pending_uses[index] = []
        return Placeholder(index)

    def bind(self, ph: Placeholder, value: Value) -> None:
        """Resolve *ph* to *value*, patching all recorded uses."""
        if self._placeholders.get(ph.index, "missing") is not None:
            raise DDGError(
                f"placeholder {ph.index} unknown or already bound in {self.name!r}"
            )
        self._placeholders[ph.index] = value.op_id
        for op_id, operand_index, omega in self._pending_uses.pop(ph.index):
            self._ddg.replace_operand(
                op_id, operand_index, ValueUse(producer=value.op_id, omega=omega)
            )

    def carried(self, value: Union[Value, Placeholder], omega: int = 1) -> Carried:
        """Reference *value* from *omega* iterations earlier."""
        if omega < 1:
            raise DDGError("carried references need omega >= 1")
        return Carried(value, omega)

    def _resolve(self, operand: Operand, op_id: int, index: int) -> ValueUse:
        if isinstance(operand, Value):
            return ValueUse(producer=operand.op_id)
        if isinstance(operand, Carried):
            inner, omega = operand.inner, operand.omega
            if isinstance(inner, Placeholder):
                return self._placeholder_use(inner, op_id, index, omega)
            return ValueUse(producer=inner.op_id, omega=omega)
        if isinstance(operand, Placeholder):
            return self._placeholder_use(operand, op_id, index, 0)
        if isinstance(operand, str):
            return external(operand)
        if isinstance(operand, (int, float)):
            return external(f"#{operand}")
        raise DDGError(f"unsupported operand {operand!r}")

    def _placeholder_use(
        self, ph: Placeholder, op_id: int, index: int, omega: int
    ) -> ValueUse:
        bound = self._placeholders.get(ph.index, "missing")
        if bound == "missing":
            raise DDGError(f"placeholder {ph.index} not created by this builder")
        if bound is not None:
            return ValueUse(producer=bound, omega=omega)
        self._pending_uses[ph.index].append((op_id, index, omega))
        # Temporary external stub, patched on bind().
        return external(f"__ph{ph.index}")

    # ------------------------------------------------------------------
    # Operation factories
    # ------------------------------------------------------------------

    def emit(self, opcode: OpCode, *operands: Operand, tag: str = "") -> Value:
        """Emit an operation and return a handle to its value."""
        if self._built:
            raise DDGError(f"builder {self.name!r} already built")
        op_id = self._ddg.allocate_id()
        srcs = tuple(
            self._resolve(operand, op_id, idx) for idx, operand in enumerate(operands)
        )
        self._ddg.add_operation(Operation(op_id, opcode, srcs, tag))
        return Value(op_id)

    def load(self, tag: str = "", address: Optional[Operand] = None) -> Value:
        """Emit a LOAD (optionally address-dependent on *address*)."""
        if address is None:
            return self.emit(OpCode.LOAD, tag=tag)
        return self.emit(OpCode.LOAD, address, tag=tag)

    def store(self, value: Operand, tag: str = "") -> Value:
        """Emit a STORE of *value*."""
        return self.emit(OpCode.STORE, value, tag=tag)

    def add(self, a: Operand, b: Operand, tag: str = "") -> Value:
        return self.emit(OpCode.ADD, a, b, tag=tag)

    def sub(self, a: Operand, b: Operand, tag: str = "") -> Value:
        return self.emit(OpCode.SUB, a, b, tag=tag)

    def mul(self, a: Operand, b: Operand, tag: str = "") -> Value:
        return self.emit(OpCode.MUL, a, b, tag=tag)

    def div(self, a: Operand, b: Operand, tag: str = "") -> Value:
        return self.emit(OpCode.DIV, a, b, tag=tag)

    def neg(self, a: Operand, tag: str = "") -> Value:
        return self.emit(OpCode.NEG, a, tag=tag)

    def select(self, c: Operand, a: Operand, b: Operand, tag: str = "") -> Value:
        return self.emit(OpCode.SELECT, c, a, b, tag=tag)

    def cmp(self, a: Operand, b: Operand, tag: str = "") -> Value:
        return self.emit(OpCode.CMP, a, b, tag=tag)

    def min(self, a: Operand, b: Operand, tag: str = "") -> Value:
        return self.emit(OpCode.MIN, a, b, tag=tag)

    def max(self, a: Operand, b: Operand, tag: str = "") -> Value:
        return self.emit(OpCode.MAX, a, b, tag=tag)

    def sqrt(self, a: Operand, tag: str = "") -> Value:
        return self.emit(OpCode.SQRT, a, tag=tag)

    def mem_dep(
        self, src: Value, dst: Value, omega: int = 0, latency: int = 1
    ) -> None:
        """Add an explicit memory ordering edge between two memory ops."""
        self._ddg.add_dep(src.op_id, dst.op_id, DepKind.MEM, omega, latency)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------

    def build(self, trip_count: int = 100, **origin: object) -> Loop:
        """Validate and return the finished loop."""
        unbound = [i for i, v in self._placeholders.items() if v is None]
        if unbound:
            raise DDGError(
                f"loop {self.name!r} has unbound placeholders: {unbound}"
            )
        self._ddg.validate()
        self._built = True
        return Loop(
            name=self.name, ddg=self._ddg, trip_count=trip_count, origin=dict(origin)
        )

    @property
    def ddg(self) -> DDG:
        """The (possibly unfinished) graph under construction."""
        return self._ddg
