"""Operations and operand references.

An :class:`Operation` is a node of the dependence graph.  Each operation
produces at most one value, identified by the operation id.  Operands are
:class:`ValueUse` records: either a reference to another operation's value
(with an iteration distance ``omega`` for loop-carried uses) or an external
symbol (loop invariant / live-in), which imposes no scheduling constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .opcodes import OpCode, fu_kind_of, FUKind


@dataclass(frozen=True)
class ValueUse:
    """A single operand reference.

    Attributes:
        producer: id of the producing operation, or ``None`` for an
            external (live-in/invariant) symbol.
        omega: iteration distance of the reference; ``omega = d`` means the
            consumer reads the value produced ``d`` iterations earlier.
            Always 0 for external symbols.
        symbol: name of the external symbol when ``producer is None``.
    """

    producer: Optional[int] = None
    omega: int = 0
    symbol: Optional[str] = None

    def __post_init__(self) -> None:
        if self.producer is None and self.symbol is None:
            raise ValueError("ValueUse needs a producer id or an external symbol")
        if self.producer is not None and self.symbol is not None:
            raise ValueError("ValueUse cannot be both internal and external")
        if self.omega < 0:
            raise ValueError(f"omega must be >= 0, got {self.omega}")
        if self.producer is None and self.omega != 0:
            raise ValueError("external symbols cannot be loop-carried")

    @property
    def is_external(self) -> bool:
        """True for live-in / loop-invariant operands."""
        return self.producer is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_external:
            return f"ext({self.symbol})"
        if self.omega:
            return f"v{self.producer}@-{self.omega}"
        return f"v{self.producer}"


def external(symbol: str) -> ValueUse:
    """Create an operand referencing an external (live-in) symbol."""
    return ValueUse(producer=None, omega=0, symbol=symbol)


def use(producer: int, omega: int = 0) -> ValueUse:
    """Create an operand referencing operation *producer*'s value."""
    return ValueUse(producer=producer, omega=omega)


@dataclass(frozen=True)
class Operation:
    """A single machine operation (a DDG node).

    Attributes:
        op_id: unique id within the owning DDG; also names the produced value.
        opcode: the machine operation.
        srcs: operand references, in operand order.
        tag: free-form label used by pretty printers and codegen (for
            example the source expression ``"x[i]"``).
    """

    op_id: int
    opcode: OpCode
    srcs: Tuple[ValueUse, ...] = field(default_factory=tuple)
    tag: str = ""

    def __post_init__(self) -> None:
        if self.op_id < 0:
            raise ValueError(f"op_id must be >= 0, got {self.op_id}")
        object.__setattr__(self, "srcs", tuple(self.srcs))

    @property
    def fu_kind(self) -> FUKind:
        """Functional-unit kind that executes this operation (cached)."""
        try:
            return self._fu_kind
        except AttributeError:
            value = fu_kind_of(self.opcode)
            object.__setattr__(self, "_fu_kind", value)
            return value

    @property
    def internal_srcs(self) -> Tuple[ValueUse, ...]:
        """Operands that reference other operations (not externals).

        Cached on first access: graph derivation and chain planning read
        this repeatedly and the instance is immutable.
        """
        try:
            return self._internal_srcs
        except AttributeError:
            value = tuple(s for s in self.srcs if not s.is_external)
            object.__setattr__(self, "_internal_srcs", value)
            return value

    def with_srcs(self, srcs: Tuple[ValueUse, ...]) -> "Operation":
        """Return a copy of this operation with replaced operands."""
        return replace(self, srcs=tuple(srcs))

    def with_id(self, op_id: int) -> "Operation":
        """Return a copy of this operation with a new id."""
        return replace(self, op_id=op_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(repr(s) for s in self.srcs)
        tag = f" '{self.tag}'" if self.tag else ""
        return f"<op {self.op_id}: {self.opcode.value}({args}){tag}>"
