"""Operation codes, functional-unit kinds and the latency model.

The machine model of the paper has three *useful* functional-unit kinds per
cluster (Load/Store, Add, Mul) plus one Copy FU that executes the ``copy``
and ``move`` operations introduced by the single-use transformation and by
DMS chains.  Copy-FU work is real for scheduling purposes (it occupies MRT
slots) but is excluded from the performance metrics, exactly as in the
paper: "these functional units and operations are not considered to
estimate performance figures, as they do not perform any useful
computation".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping


class FUKind(enum.Enum):
    """Functional-unit kinds present in a cluster."""

    MEM = "mem"  # load/store unit
    ALU = "alu"  # add/logic unit (the paper's "ADD" FU)
    MUL = "mul"  # multiply/divide unit
    COPY = "copy"  # copy/move unit (excluded from performance figures)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FUKind.{self.name}"


#: FU kinds that perform useful computation (counted in FU totals and IPC).
USEFUL_FU_KINDS = (FUKind.MEM, FUKind.ALU, FUKind.MUL)


class OpCode(enum.Enum):
    """Machine operations understood by the scheduler and simulator."""

    # Memory
    LOAD = "load"
    STORE = "store"
    # ALU
    ADD = "add"
    SUB = "sub"
    NEG = "neg"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CMP = "cmp"
    SELECT = "select"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    # Multiplier
    MUL = "mul"
    DIV = "div"
    SQRT = "sqrt"
    # Copy-unit operations (inserted by transforms / DMS, never by users)
    COPY = "copy"
    MOVE = "move"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpCode.{self.name}"


_OPCODE_FU: Mapping[OpCode, FUKind] = {
    OpCode.LOAD: FUKind.MEM,
    OpCode.STORE: FUKind.MEM,
    OpCode.ADD: FUKind.ALU,
    OpCode.SUB: FUKind.ALU,
    OpCode.NEG: FUKind.ALU,
    OpCode.AND: FUKind.ALU,
    OpCode.OR: FUKind.ALU,
    OpCode.XOR: FUKind.ALU,
    OpCode.SHL: FUKind.ALU,
    OpCode.SHR: FUKind.ALU,
    OpCode.CMP: FUKind.ALU,
    OpCode.SELECT: FUKind.ALU,
    OpCode.MIN: FUKind.ALU,
    OpCode.MAX: FUKind.ALU,
    OpCode.ABS: FUKind.ALU,
    OpCode.MUL: FUKind.MUL,
    OpCode.DIV: FUKind.MUL,
    OpCode.SQRT: FUKind.MUL,
    OpCode.COPY: FUKind.COPY,
    OpCode.MOVE: FUKind.COPY,
}

#: Opcodes whose executions count toward IPC / useful-operation totals.
USEFUL_OPCODES = frozenset(op for op, fu in _OPCODE_FU.items() if fu != FUKind.COPY)

#: Opcodes that produce no register result (nothing to communicate).
VOID_OPCODES = frozenset({OpCode.STORE})


def fu_kind_of(opcode: OpCode) -> FUKind:
    """Return the functional-unit kind that executes *opcode*."""
    return _OPCODE_FU[opcode]


def is_useful(opcode: OpCode) -> bool:
    """True when *opcode* performs useful computation (not copy/move)."""
    return opcode in USEFUL_OPCODES


def produces_value(opcode: OpCode) -> bool:
    """True when *opcode* defines a register value consumers can read."""
    return opcode not in VOID_OPCODES


@dataclass(frozen=True)
class LatencyModel:
    """Operation latencies in cycles.

    The defaults are era-typical for the late-90s VLIW literature the paper
    belongs to.  The paper does not state its latencies, so the model is a
    documented substitution (see DESIGN.md section 3); every component takes
    the model as a parameter so alternative profiles are one constructor
    call away.
    """

    load: int = 2
    store: int = 1
    alu: int = 1
    mul: int = 3
    div: int = 8
    sqrt: int = 12
    copy: int = 1
    move: int = 1

    _table: Mapping[OpCode, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name in ("load", "store", "alu", "mul", "div", "sqrt", "copy", "move"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"latency {name!r} must be a positive int, got {value!r}")
        table = {
            OpCode.LOAD: self.load,
            OpCode.STORE: self.store,
            OpCode.MUL: self.mul,
            OpCode.DIV: self.div,
            OpCode.SQRT: self.sqrt,
            OpCode.COPY: self.copy,
            OpCode.MOVE: self.move,
        }
        for opcode, kind in _OPCODE_FU.items():
            if opcode not in table and kind == FUKind.ALU:
                table[opcode] = self.alu
        object.__setattr__(self, "_table", table)

    def latency(self, opcode: OpCode) -> int:
        """Latency in cycles of *opcode* (result-ready delay)."""
        return self._table[opcode]

    def __getitem__(self, opcode: OpCode) -> int:
        return self._table[opcode]


#: Shared default latency model.
DEFAULT_LATENCIES = LatencyModel()
