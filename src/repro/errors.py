"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so user
code can catch everything from one place while still discriminating on the
specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class DDGError(ReproError):
    """Raised for malformed dependence graphs (unknown ops, bad edges)."""


class TransformError(ReproError):
    """Raised when an IR transformation receives an invalid input."""


class MachineError(ReproError):
    """Raised for inconsistent machine descriptions."""


class SchedulingError(ReproError):
    """Raised when a scheduler cannot produce a valid schedule."""


class IIOverflowError(SchedulingError):
    """Raised when no II up to the configured maximum admits a schedule."""

    def __init__(self, loop_name: str, max_ii: int):
        super().__init__(
            f"no feasible II found for loop {loop_name!r} up to II={max_ii}"
        )
        self.loop_name = loop_name
        self.max_ii = max_ii


class ValidationError(ReproError):
    """Raised by the schedule checker when an invariant is violated."""


class AllocationError(ReproError):
    """Raised when lifetimes cannot be mapped onto the queue files."""


class SimulationError(ReproError):
    """Raised when dynamic execution of a schedule breaks an invariant."""


class CodegenError(ReproError):
    """Raised when VLIW code generation fails."""


class WorkloadError(ReproError):
    """Raised for invalid workload generator parameters."""


class ToolchainError(ReproError):
    """Raised for invalid compilation-session requests or pass pipelines."""


class CacheError(ReproError):
    """Raised when the on-disk compilation cache cannot be used at all."""


class TargetError(ReproError):
    """Raised for invalid target descriptions, files or registry lookups."""


class BenchError(ReproError):
    """Raised for invalid bench requests (unknown cases/policies) and
    unusable benchmark baselines."""


class LintError(ReproError):
    """Raised for static-analysis misuse (bad rule ids, broken baselines)."""


class ServiceError(ReproError):
    """Raised for compilation-service failures (daemon and client side).

    ``retry_after`` (seconds), when set, tells clients the failure is
    backpressure: the daemon sends it as a ``Retry-After`` header and
    the retrying client sleeps that long before re-submitting.
    """

    def __init__(self, message: str, status: int = 500, retry_after=None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ServiceUnavailable(ServiceError):
    """Raised when the service stays unreachable/busy past a deadline.

    The retrying client converts an exhausted
    :class:`~repro.service.client.RetryPolicy` ``total_deadline`` into
    this error, so callers (the pull-worker loop, batch drivers) can
    distinguish "gave up waiting" from a single failed exchange.
    """

    def __init__(self, message: str, retry_after=None):
        super().__init__(message, status=503, retry_after=retry_after)


class JournalError(ReproError):
    """Raised when the persistent job journal cannot be used at all."""


class FaultError(ReproError):
    """Raised for invalid fault-injection specs or unknown fault points."""
