"""Cycle-accurate execution of a pipelined schedule.

The simulator issues every instance ``(operation, iteration)`` of the
modulo schedule at ``t(op) + iteration * II`` and dynamically re-checks
everything the static model promises:

* functional-unit occupancy never exceeds cluster capacity,
* every operand is ready when read, with the readiness delay resolved
  *per dependence edge* through the same shared helper the checker uses
  (:func:`repro.scheduling.timing.edge_ready_latency`: explicit latency
  for ordering edges, producer latency plus per-link communication cost
  for flow edges), so the simulator and checker can never silently
  disagree on edge cost,
* explicit (memory/anti/output) ordering edges are honoured,
* every queue pops values in FIFO order with the expected instance,
* queue occupancy stays within the allocated depth, and
* values entering any directed CQRF link per cycle fit the file's
  ``write_ports`` budget (when the machine declares one).

It reports the measured makespan next to the analytic ramp model
``(n + SC - 1) * II`` used by the experiments; the two are asserted to
agree within one operation latency (the drain of the last results).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AllocationError, SimulationError
from ..ir.opcodes import FUKind, is_useful
from ..registers.queues import QueueAllocation, allocate_queues
from ..scheduling.result import ScheduleResult
from ..scheduling.timing import dependence_slack, edge_ready_latency

StreamKey = Tuple[int, int]  # (consumer op id, operand index)


@dataclass
class SimReport:
    """Outcome of one simulation run."""

    loop_name: str
    ii: int
    iterations: int
    stage_count: int
    cycles_model: int
    cycles_span: int
    issued_total: int
    issued_useful: int
    fu_busy: Dict[FUKind, int] = field(default_factory=dict)
    max_queue_occupancy: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def ipc_model(self) -> float:
        """Useful IPC against the analytic cycle model (paper metric)."""
        return self.issued_useful / self.cycles_model

    @property
    def ipc_span(self) -> float:
        """Useful IPC against the measured makespan."""
        return self.issued_useful / max(1, self.cycles_span)

    def utilization(self, kind: FUKind, capacity: int) -> float:
        """Busy fraction of all *kind* units over the measured span."""
        total = capacity * max(1, self.cycles_span)
        return self.fu_busy.get(kind, 0) / total


def simulate(
    result: ScheduleResult,
    iterations: int,
    allocation: Optional[QueueAllocation] = None,
    strict: bool = True,
) -> SimReport:
    """Execute *iterations* overlapped iterations of *result*.

    With ``strict=True`` (default) any dynamic violation raises
    :class:`SimulationError`; otherwise it is recorded in the report.
    """
    if iterations < 1:
        raise SimulationError(f"iterations must be >= 1, got {iterations}")
    ddg = result.ddg
    placements = result.placements
    ii = result.ii
    machine = result.machine
    latencies = result.latencies
    allocation_problem = None
    if allocation is None and machine.is_clustered:
        try:
            allocation = allocate_queues(result)
        except AllocationError as err:
            # A schedule whose lifetimes cannot be mapped to queues is a
            # dynamic failure too; record it and run the other checks.
            allocation_problem = str(err)
    report = SimReport(
        loop_name=result.loop_name,
        ii=ii,
        iterations=iterations,
        stage_count=result.stage_count,
        cycles_model=result.cycles(iterations),
        cycles_span=0,
        issued_total=0,
        issued_useful=0,
    )
    if allocation_problem is not None:
        report.problems.append(f"queue allocation failed: {allocation_problem}")

    # Per-reference FIFO streams, seeded with the loop-carried initial
    # values (instances -omega .. -1 exist before the loop starts).
    streams: Dict[StreamKey, deque] = {}
    expected_next: Dict[StreamKey, int] = {}
    for consumer in ddg.operations():
        for index, src in enumerate(consumer.srcs):
            if src.is_external:
                continue
            key = (consumer.op_id, index)
            seeded = deque(range(-src.omega, 0))
            streams[key] = seeded
            expected_next[key] = -src.omega
            if len(seeded) > report.max_queue_occupancy:
                report.max_queue_occupancy = len(seeded)

    # Event lists: writes (value ready) and reads (operand consumed).
    write_events: List[Tuple[int, StreamKey, int]] = []
    read_events: List[Tuple[int, StreamKey, int]] = []
    issue_events: List[Tuple[int, int, FUKind]] = []  # (cycle, cluster, kind)
    link_writes: List[Tuple[int, int, int]] = []  # (cycle, writer, reader)

    for op in ddg.operations():
        placement = placements[op.op_id]
        latency = latencies.latency(op.opcode)
        refs = [
            ((op.op_id, index), src)
            for index, src in enumerate(op.srcs)
            if not src.is_external
        ]
        for iteration in range(iterations):
            issue = placement.time + iteration * ii
            completion = issue + latency
            report.cycles_span = max(report.cycles_span, completion)
            report.issued_total += 1
            if is_useful(op.opcode):
                report.issued_useful += 1
            issue_events.append((issue, placement.cluster, op.fu_kind))
            for key, src in refs:
                read_events.append((issue, key, iteration - src.omega))
        # The producer side: this op's value feeds streams of consumers;
        # readiness is resolved per flow edge (shared with the checker).
        for consumer_key, edge in _consumer_refs(ddg, op.op_id):
            consumer_placement = placements[edge.dst]
            ready_delay = edge_ready_latency(
                ddg,
                edge,
                latencies,
                src_cluster=placement.cluster,
                dst_cluster=consumer_placement.cluster,
                machine=machine,
            )
            crosses = placement.cluster != consumer_placement.cluster
            for iteration in range(iterations):
                ready = placement.time + iteration * ii + ready_delay
                write_events.append((ready, consumer_key, iteration))
                if crosses:
                    link_writes.append(
                        (ready, placement.cluster, consumer_placement.cluster)
                    )

    _check_resources(issue_events, machine, report)
    _check_ordering_edges(result, iterations, report)
    _check_link_writes(link_writes, machine, report)
    _run_fifo(write_events, read_events, streams, expected_next, report)
    if allocation is not None:
        _check_depths(allocation, report)
    if strict and report.problems:
        raise SimulationError(
            f"simulation of {result.loop_name!r} failed: "
            + "; ".join(report.problems[:5])
        )
    return report


def _consumer_refs(ddg, producer_id: int):
    """(consumer stream key, flow edge) pairs fed by *producer_id*.

    One pair per operand reference: an edge whose consumer reads the
    value at several operand positions yields one entry per position.
    """
    for (consumer_id, index, _omega), edge in ddg.flow_succ_ref_edges(
        producer_id
    ):
        yield (consumer_id, index), edge


def _check_resources(
    issue_events: List[Tuple[int, int, FUKind]],
    machine,
    report: SimReport,
) -> None:
    per_cycle: Dict[Tuple[int, int, FUKind], int] = {}
    for cycle, cluster, kind in issue_events:
        slot = (cycle, cluster, kind)
        per_cycle[slot] = per_cycle.get(slot, 0) + 1
        report.fu_busy[kind] = report.fu_busy.get(kind, 0) + 1
    for (cycle, cluster, kind), count in sorted(
        per_cycle.items(), key=lambda item: (item[0][0], item[0][1], item[0][2].value)
    ):
        capacity = machine.fu_in_cluster(cluster, kind)
        if count > capacity:
            report.problems.append(
                f"cycle {cycle}: {count} {kind.value} issues on cluster "
                f"{cluster} (capacity {capacity})"
            )


def _check_ordering_edges(
    result: ScheduleResult,
    iterations: int,
    report: SimReport,
) -> None:
    """Honour explicit (non-flow) ordering edges.

    Memory/anti/output edges carry no value, so the FIFO machinery never
    sees them; before this check the simulator silently accepted
    schedules that reorder aliasing memory operations.  The slack
    arithmetic is shared with the checker's dependence rule.
    """
    ddg = result.ddg
    for edge in ddg.edges():
        if edge.is_flow:
            continue
        if edge.src not in result.placements or edge.dst not in result.placements:
            continue
        slack = dependence_slack(
            ddg,
            edge,
            result.placements,
            result.ii,
            result.latencies,
            result.machine,
        )
        if slack < 0:
            # First offending instance pair: dst iteration omega reads
            # "before" src iteration 0 has retired.
            first = min(edge.omega, max(0, iterations - 1))
            cycle = result.placements[edge.dst].time + first * result.ii
            report.problems.append(
                f"cycle {cycle}: ordering violated on {edge!r} "
                f"(slack {slack})"
            )


def _check_link_writes(
    link_writes: List[Tuple[int, int, int]],
    machine,
    report: SimReport,
) -> None:
    """Per-cycle mirror of the checker's link-bandwidth rule: values
    entering one directed CQRF per cycle must fit its write ports."""
    ports = machine.cqrf.write_ports if machine.is_clustered else 0
    if ports <= 0:
        return
    per_cycle: Dict[Tuple[int, int, int], int] = {}
    for event in link_writes:
        per_cycle[event] = per_cycle.get(event, 0) + 1
    for (cycle, writer, reader), count in sorted(per_cycle.items()):
        if count > ports:
            report.problems.append(
                f"cycle {cycle}: {count} values enter cqrf[c{writer}->"
                f"c{reader}] (write ports {ports})"
            )


def _run_fifo(
    write_events: List[Tuple[int, StreamKey, int]],
    read_events: List[Tuple[int, StreamKey, int]],
    streams: Dict[StreamKey, deque],
    expected_next: Dict[StreamKey, int],
    report: SimReport,
) -> None:
    # Merge events in time order; writes land before reads of the same
    # cycle (a value written at T can be consumed at T: full bypass, as
    # guaranteed by the latency model).
    events = [(*w, 0) for w in write_events] + [(*r, 1) for r in read_events]
    events.sort(key=lambda e: (e[0], e[3]))
    for cycle, key, instance, is_read in events:
        queue = streams[key]
        if not is_read:
            queue.append(instance)
            if len(queue) > report.max_queue_occupancy:
                report.max_queue_occupancy = len(queue)
            continue
        if not queue:
            report.problems.append(
                f"cycle {cycle}: read from empty stream {key} "
                f"(expected instance {instance})"
            )
            continue
        front = queue.popleft()
        if front != instance:
            report.problems.append(
                f"cycle {cycle}: FIFO order broken on stream {key}: "
                f"popped instance {front}, expected {instance}"
            )


def _check_depths(allocation: QueueAllocation, report: SimReport) -> None:
    for violation in allocation.violations:
        report.problems.append(f"queue overflow: {violation}")
