"""Cycle-accurate validation simulator for pipelined schedules."""

from .engine import SimReport, simulate
from .semantics import (
    SequentialRun,
    assert_same_semantics,
    sequential_run,
    streams_equal,
)
from .trace import ExecutionTrace, TraceEntry, collect_trace

__all__ = [
    "SimReport",
    "simulate",
    "ExecutionTrace",
    "TraceEntry",
    "collect_trace",
    "SequentialRun",
    "assert_same_semantics",
    "sequential_run",
    "streams_equal",
]
