"""Human-readable execution traces for small simulations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..ir.opcodes import FUKind
from ..machine.fu import fu_name
from ..scheduling.result import ScheduleResult


@dataclass(frozen=True)
class TraceEntry:
    """One issued operation instance."""

    cycle: int
    op_id: int
    opcode: str
    iteration: int
    cluster: int
    kind: FUKind

    def render(self) -> str:
        return f"v{self.op_id}.{self.iteration}({self.opcode})@c{self.cluster}"


@dataclass
class ExecutionTrace:
    """Per-cycle issue listing of the first cycles of a pipelined loop."""

    loop_name: str
    ii: int
    entries: List[TraceEntry]

    def cycles(self) -> Dict[int, List[TraceEntry]]:
        by_cycle: Dict[int, List[TraceEntry]] = {}
        for entry in self.entries:
            by_cycle.setdefault(entry.cycle, []).append(entry)
        return by_cycle

    def render(self) -> str:
        lines = [f"trace of {self.loop_name!r} (II={self.ii})"]
        for cycle, entries in sorted(self.cycles().items()):
            ops = "  ".join(
                e.render()
                for e in sorted(entries, key=lambda e: (e.cluster, e.op_id))
            )
            lines.append(f"  cycle {cycle:4d}: {ops}")
        return "\n".join(lines)


def collect_trace(
    result: ScheduleResult, iterations: int, max_cycles: int = 64
) -> ExecutionTrace:
    """Build a trace of the first *max_cycles* cycles of execution."""
    entries: List[TraceEntry] = []
    for op in result.ddg.operations():
        placement = result.placements[op.op_id]
        for iteration in range(iterations):
            cycle = placement.time + iteration * result.ii
            if cycle >= max_cycles:
                break
            entries.append(
                TraceEntry(
                    cycle=cycle,
                    op_id=op.op_id,
                    opcode=op.opcode.value,
                    iteration=iteration,
                    cluster=placement.cluster,
                    kind=op.fu_kind,
                )
            )
    entries.sort(key=lambda e: (e.cycle, e.cluster, e.op_id))
    return ExecutionTrace(result.loop_name, result.ii, entries)
