"""Value-level semantics: do transformed graphs compute the same thing?

The timing simulator proves a schedule *can* execute; this module proves
the graph rewrites (unrolling, single-use copies, DMS move chains) did
not change *what* is computed.  Every opcode gets a deterministic pure
function over floats; loads and loop-carried seeds get reproducible
hash-derived values; then two graphs are compared by their store value
streams.

Identity across graphs is handled by two hooks:

* ``load_token(op)`` — a stable name for a load's input stream (defaults
  to the op tag, falling back to ``v<id>``), so the "same" load in a
  rewritten graph reads the same data;
* ``iteration_of(op, j)`` — maps the graph's iteration ``j`` to the
  *original* iteration space (an unrolled body's copy ``c`` executes
  original iteration ``j * u + c``).

With those hooks, ``sequential_run`` on a base graph over ``n``
iterations and on its unrolled twin over ``n / u`` iterations must
produce identical streams — the exact statement of transform
correctness, enforced by the test suite and a hypothesis property.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..ir.ddg import DDG
from ..ir.opcodes import OpCode
from ..ir.operations import Operation

LoadToken = Callable[[Operation], str]
IterationOf = Callable[[Operation, int], int]


def _hash_unit(token: str, iteration: int, salt: str) -> float:
    """Deterministic value in [1, 2) for a (token, iteration) pair.

    The [1, 2) range keeps divisions and square roots well-conditioned,
    so float round-off cannot blur an equivalence comparison.
    """
    digest = hashlib.blake2b(
        f"{salt}|{token}|{iteration}".encode(), digest_size=8
    ).digest()
    return 1.0 + int.from_bytes(digest, "big") / 2**64


def default_load_token(op: Operation) -> str:
    """Stable stream name for a load: its tag, else its value name."""
    return op.tag or f"v{op.op_id}"


def base_iteration(op: Operation, iteration: int) -> int:
    """Identity iteration mapping (graphs in the original space)."""
    return iteration


_TWO_ARG = {
    OpCode.ADD: lambda a, b: a + b,
    OpCode.SUB: lambda a, b: a - b,
    OpCode.MUL: lambda a, b: a * b,
    OpCode.DIV: lambda a, b: a / b,
    OpCode.MIN: min,
    OpCode.MAX: max,
    OpCode.CMP: lambda a, b: 1.0 if a > b else 0.0,
    # Bitwise ops get arbitrary-but-fixed arithmetic meanings: semantics
    # only need determinism and sensitivity to both operands.
    OpCode.AND: lambda a, b: (a * b) / (a + b),
    OpCode.OR: lambda a, b: a + b - (a * b) / (a + b),
    OpCode.XOR: lambda a, b: abs(a - b) + 1.0,
    OpCode.SHL: lambda a, b: a * (1.0 + b / 8.0),
    OpCode.SHR: lambda a, b: a / (1.0 + b / 8.0),
}

_ONE_ARG = {
    OpCode.NEG: lambda a: -a,
    OpCode.ABS: abs,
    OpCode.SQRT: lambda a: math.sqrt(abs(a)),
    OpCode.COPY: lambda a: a,
    OpCode.MOVE: lambda a: a,
}


@dataclass
class SequentialRun:
    """Outcome of a value-level execution."""

    iterations: int
    store_streams: Dict[int, List[float]] = field(default_factory=dict)
    store_tokens: Dict[int, str] = field(default_factory=dict)

    def stream_by_token(self) -> Dict[str, List[float]]:
        """Store streams keyed by store token (stable across rewrites)."""
        streams: Dict[str, List[float]] = {}
        for op_id, values in self.store_streams.items():
            token = self.store_tokens[op_id]
            if token in streams:
                raise SimulationError(f"duplicate store token {token!r}")
            streams[token] = values
        return streams


@dataclass
class ValueModel:
    """The pure-value semantics of one graph, shared between executors.

    Both :func:`sequential_run` and the VLIW execution oracle
    (:mod:`repro.validate.oracle`) evaluate operations through one
    ``ValueModel`` instance, so the two executors are bit-identical *by
    construction*: any store-stream mismatch between them is a
    scheduling/codegen/allocation bug, never a semantics drift.
    """

    ddg: DDG
    load_token: LoadToken = default_load_token
    iteration_of: IterationOf = base_iteration
    seed_salt: str = "seed"
    input_salt: str = "in"

    def external_value(self, symbol: str) -> float:
        """Value of a loop-invariant / live-in symbol."""
        return _hash_unit(symbol, 0, self.input_salt)

    def load_value(self, op: Operation, iteration: int) -> float:
        """Value a LOAD produces at *iteration* (of its own graph)."""
        return _hash_unit(
            self.load_token(op), self.iteration_of(op, iteration), self.input_salt
        )

    def seed_value(self, op_id: int, iteration: int) -> float:
        """Pre-loop value of op *op_id* at (negative) *iteration*.

        Resolves through identity operations (copies and moves forward
        whatever their source held), so a rewritten graph seeds its
        queues with the *original* producer's values.
        """
        op = self.ddg.op(op_id)
        guard = 0
        while op.opcode in (OpCode.COPY, OpCode.MOVE) and op.internal_srcs:
            src = op.srcs[0]
            iteration -= src.omega
            op = self.ddg.op(src.producer)
            guard += 1
            if guard > len(self.ddg):
                raise SimulationError("identity-op cycle while seeding")
        token = self.load_token(op)
        return _hash_unit(token, self.iteration_of(op, iteration), self.seed_salt)

    def compute(self, op: Operation, args: List[float], iteration: int) -> float:
        """Result of *op* over operand values *args* (non-STORE opcodes)."""
        if op.opcode == OpCode.LOAD:
            return self.load_value(op, iteration)
        if op.opcode in _ONE_ARG:
            return _ONE_ARG[op.opcode](args[0])
        if op.opcode in _TWO_ARG:
            return _TWO_ARG[op.opcode](args[0], args[1])
        if op.opcode == OpCode.SELECT:
            return args[1] if args[0] > 0.5 else args[2]
        if op.opcode == OpCode.STORE:
            raise SimulationError("STORE produces no value; record args[0]")
        raise SimulationError(  # pragma: no cover - new opcodes land here
            f"no semantics for {op.opcode}"
        )


def sequential_run(
    ddg: DDG,
    iterations: int,
    load_token: LoadToken = default_load_token,
    iteration_of: IterationOf = base_iteration,
    store_token: Optional[LoadToken] = None,
    seed_salt: str = "seed",
    input_salt: str = "in",
) -> SequentialRun:
    """Execute *ddg* sequentially for *iterations* iterations.

    Operations evaluate in dependence order within each iteration;
    loop-carried reads look up earlier iterations, with hash-derived
    seeds for pre-loop values.  Returns the store value streams.
    """
    if iterations < 1:
        raise SimulationError(f"iterations must be >= 1, got {iterations}")
    store_token = store_token or default_load_token
    model = ValueModel(
        ddg,
        load_token=load_token,
        iteration_of=iteration_of,
        seed_salt=seed_salt,
        input_salt=input_salt,
    )
    order = _evaluation_order(ddg)
    values: Dict[Tuple[int, int], float] = {}
    run = SequentialRun(iterations)

    def operand_value(op: Operation, index: int, iteration: int) -> float:
        src = op.srcs[index]
        if src.is_external:
            return model.external_value(src.symbol)
        producer_iter = iteration - src.omega
        key = (src.producer, producer_iter)
        if producer_iter < 0:
            return model.seed_value(src.producer, producer_iter)
        if key not in values:
            raise SimulationError(
                f"value v{src.producer}@{producer_iter} read before computed"
            )
        return values[key]

    for iteration in range(iterations):
        for op_id in order:
            op = ddg.op(op_id)
            args = [
                operand_value(op, index, iteration)
                for index in range(len(op.srcs))
            ]
            if op.opcode == OpCode.STORE:
                run.store_streams.setdefault(op_id, []).append(args[0])
                run.store_tokens[op_id] = store_token(op)
                continue
            values[(op_id, iteration)] = model.compute(op, args, iteration)
    return run


def _evaluation_order(ddg: DDG) -> List[int]:
    """Topological order over omega-0 edges (valid within an iteration)."""
    return ddg._topo_order_omega0()


def streams_equal(
    a: Dict[str, List[float]],
    b: Dict[str, List[float]],
    rel_tol: float = 1e-9,
) -> bool:
    """Compare two token-keyed stream maps for (near-)equality."""
    if set(a) != set(b):
        return False
    for token, left in a.items():
        right = b[token]
        if len(left) != len(right):
            return False
        for x, y in zip(left, right):
            if not math.isclose(x, y, rel_tol=rel_tol, abs_tol=1e-12):
                return False
    return True


def assert_same_semantics(
    base: DDG,
    rewritten: DDG,
    iterations: int,
    load_token: LoadToken = default_load_token,
    iteration_of: IterationOf = base_iteration,
    store_token: Optional[LoadToken] = None,
) -> None:
    """Raise :class:`SimulationError` unless the two graphs agree.

    ``load_token``/``iteration_of``/``store_token`` apply to the
    *rewritten* graph; the base graph uses the defaults.
    """
    reference = sequential_run(base, iterations).stream_by_token()
    candidate = sequential_run(
        rewritten,
        iterations,
        load_token=load_token,
        iteration_of=iteration_of,
        store_token=store_token,
    ).stream_by_token()
    if not streams_equal(reference, candidate):
        raise SimulationError(
            f"graphs {base.name!r} and {rewritten.name!r} disagree on "
            "store streams"
        )
