"""Command-line interface: ``repro <command>``.

Commands:

* ``info``          — machine/paper overview;
* ``suite-stats``   — shape statistics of the Perfect Club surrogate;
* ``schedule``      — compile one named kernel and print its assembly;
* ``batch``         — batch-compile kernels through the session API
  (process pool + on-disk cache);
* ``fig4|fig5|fig6``— regenerate a paper figure over the surrogate suite;
* ``backtracking``  — the IMS-vs-DMS backtracking comparison;
* ``all-figures``   — everything above in one sweep.

Figures accept ``--loops N`` to subsample the 1258-loop suite (a full run
takes tens of minutes in pure Python), ``--workers N`` to fan the sweep
across processes, and ``--csv DIR`` to persist data.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from .api import BatchCompiler, CompilationRequest, Toolchain, compile_many
from .config import DEFAULT_CONFIG
from .experiments import (
    FigureData,
    SweepConfig,
    backtracking_report,
    figure4,
    figure5,
    figure6,
    moves_report,
    pass_timing_figure,
    run_sweep,
)
from .machine import clustered_vliw, unclustered_vliw
from .codegen import assembly_for
from .workloads import (
    KERNELS,
    PERFECT_CLUB_LOOP_COUNT,
    make_kernel,
    perfect_club_surrogate,
    suite_stats,
)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed Modulo Scheduling (Fernandes, Llosa & Topham, "
            "HPCA 1999) - reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="overview of machines and experiments")

    stats = sub.add_parser("suite-stats", help="surrogate suite statistics")
    _suite_args(stats)

    sched = sub.add_parser("schedule", help="compile one kernel, print assembly")
    sched.add_argument("kernel", choices=sorted(KERNELS))
    sched.add_argument("--clusters", type=int, default=4)
    sched.add_argument("--unclustered", action="store_true")
    sched.add_argument("--ramp", action="store_true", help="show prologue/epilogue")
    sched.add_argument(
        "--timings", action="store_true", help="print per-pass wall-clock times"
    )

    batch = sub.add_parser(
        "batch", help="batch-compile kernels via the session API"
    )
    batch.add_argument(
        "--kernels",
        type=str,
        default="all",
        help="comma-separated kernel names (default: all)",
    )
    batch.add_argument(
        "--clusters",
        type=str,
        default="1,2,3,4,5,6,7,8,9,10",
        help="comma-separated cluster counts",
    )
    batch.add_argument(
        "--workers", type=int, default=None, help="process-pool width (default: serial)"
    )
    batch.add_argument(
        "--cache", type=str, default=None, help="on-disk compilation cache directory"
    )
    batch.add_argument(
        "--clear-cache", action="store_true", help="empty the cache before compiling"
    )
    batch.add_argument(
        "--json", dest="json_out", type=str, default=None,
        help="write one JSON report per job (JSON lines)",
    )
    batch.add_argument(
        "--timings", action="store_true", help="print the per-pass timing figure"
    )

    for name in ("fig4", "fig5", "fig6", "backtracking", "moves", "all-figures"):
        fig = sub.add_parser(name, help=f"regenerate {name}")
        _suite_args(fig)
        fig.add_argument(
            "--clusters",
            type=str,
            default="1,2,3,4,5,6,7,8,9,10",
            help="comma-separated cluster counts",
        )
        fig.add_argument("--csv", type=str, default=None, help="output directory")
        fig.add_argument(
            "--runs-out", type=str, default=None, help="persist runs as JSONL"
        )
        fig.add_argument(
            "--workers",
            type=int,
            default=None,
            help="process-pool width for the sweep (default: serial)",
        )

    storage = sub.add_parser(
        "storage", help="register/queue storage requirements (paper section 1)"
    )
    _suite_args(storage)
    storage.add_argument("--clusters", type=str, default="1,2,4,6,8,10")
    storage.add_argument("--csv", type=str, default=None)

    ablation = sub.add_parser("ablation", help="run one design ablation")
    from .experiments import ABLATIONS

    ablation.add_argument("name", choices=sorted(ABLATIONS))
    _suite_args(ablation)
    ablation.add_argument("--clusters", type=str, default="4,6,8,10")
    ablation.add_argument("--csv", type=str, default=None)

    baseline = sub.add_parser(
        "baseline", help="DMS vs two-phase partition+schedule"
    )
    _suite_args(baseline)
    baseline.add_argument("--clusters", type=str, default="4,6,8,10")
    baseline.add_argument("--csv", type=str, default=None)

    sensitivity = sub.add_parser(
        "sensitivity", help="figure-4 shape under alternative latency models"
    )
    _suite_args(sensitivity)
    sensitivity.add_argument("--clusters", type=str, default="2,4,8")
    sensitivity.add_argument("--csv", type=str, default=None)
    return parser


def _suite_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--loops",
        type=int,
        default=PERFECT_CLUB_LOOP_COUNT,
        help="number of suite loops (default: the paper's 1258)",
    )
    parser.add_argument("--seed", type=int, default=1999)


def _info() -> str:
    lines = [
        "Distributed Modulo Scheduling (DMS) reproduction",
        "paper: Fernandes, Llosa & Topham, HPCA-5, 1999",
        "",
        "machines: clustered(k) = k x {1 L/S, 1 Add, 1 Mul, 1 Copy} on a",
        "          bi-directional ring; unclustered(k) = monolithic 3k FUs",
        "schedulers: IMS (Rau 1996) for unclustered, DMS for clustered",
        "",
        "experiments:",
        "  fig4  - %% loops with II increase due to partitioning (1-10 clusters)",
        "  fig5  - relative execution cycles vs useful FUs (3-30)",
        "  fig6  - aggregate IPC vs useful FUs",
        "  backtracking - IMS vs DMS ejections per placement",
        "",
        f"kernels: {', '.join(sorted(KERNELS))}",
    ]
    return "\n".join(lines)


def _schedule_command(args: argparse.Namespace) -> int:
    loop = make_kernel(args.kernel)
    if args.unclustered:
        machine = unclustered_vliw(args.clusters)
    else:
        machine = clustered_vliw(args.clusters)
    report = Toolchain.default().compile(
        CompilationRequest(loop=loop, machine=machine, equivalent_k=args.clusters)
    )
    compiled = report.compiled
    result = compiled.result
    print(result.summary())
    print(
        f"unroll={compiled.unroll_factor} cycles={compiled.cycles} "
        f"ipc={compiled.ipc:.2f}"
    )
    if args.timings:
        for name, seconds in report.pass_seconds().items():
            print(f"  {name:<12} {1e3 * seconds:8.2f} ms")
    print(assembly_for(result, compiled.allocation, show_ramp=args.ramp))
    return 0


def _batch_command(args: argparse.Namespace) -> int:
    if args.kernels == "all":
        names = sorted(KERNELS)
    else:
        names = [n for n in args.kernels.split(",") if n]
        unknown = sorted(set(names) - set(KERNELS))
        if unknown:
            print(f"unknown kernels: {', '.join(unknown)}", file=sys.stderr)
            return 2
    cluster_counts = [int(c) for c in args.clusters.split(",") if c]
    requests = [
        CompilationRequest(
            loop=make_kernel(name),
            machine=clustered_vliw(k),
            equivalent_k=k,
            allocate=False,
            validate=True,
        )
        for name in names
        for k in cluster_counts
    ]
    compiler = BatchCompiler(cache=args.cache, workers=args.workers)
    if args.clear_cache and compiler.cache is not None:
        removed = compiler.cache.clear()
        print(f"# cleared {removed} cache entries", file=sys.stderr)
    started = time.time()
    reports = compiler.compile_many(
        requests, progress=lambda msg: print(f"  {msg}", file=sys.stderr)
    )
    elapsed = time.time() - started
    for report in reports:
        print(report.summary())
    hits = sum(1 for r in reports if r.cache_hit)
    print(
        f"# {len(reports)} jobs ({len(names)} kernels x "
        f"{len(cluster_counts)} cluster counts) in {elapsed:.2f}s, "
        f"{hits} cache hits",
        file=sys.stderr,
    )
    if compiler.cache is not None:
        print(f"# {compiler.cache.stats.summary()}", file=sys.stderr)
    if args.timings:
        cold = [r for r in reports if not r.cache_hit]
        if cold:
            print(pass_timing_figure(cold).render_table())
        else:
            print("# all jobs cached; no cold timings to report", file=sys.stderr)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            for report in reports:
                handle.write(json.dumps(report.to_dict(), sort_keys=True))
                handle.write("\n")
        print(f"# wrote {args.json_out}", file=sys.stderr)
    return 0


_FIGURES = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "backtracking": backtracking_report,
    "moves": moves_report,
}


def _figures_command(args: argparse.Namespace) -> int:
    cluster_counts = [int(c) for c in args.clusters.split(",") if c]
    loops = perfect_club_surrogate(args.loops, seed=args.seed)
    started = time.time()
    runs = run_sweep(
        loops,
        SweepConfig(
            cluster_counts=cluster_counts,
            workers=getattr(args, "workers", None),
        ),
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
    )
    elapsed = time.time() - started
    print(
        f"# {len(loops)} loops x {len(cluster_counts)} cluster counts "
        f"({elapsed:.1f}s)",
        file=sys.stderr,
    )
    if getattr(args, "runs_out", None):
        from .experiments import dump_runs

        dump_runs(runs, args.runs_out)
        print(f"# wrote {args.runs_out}", file=sys.stderr)
    names = (
        list(_FIGURES) if args.command == "all-figures" else [args.command]
    )
    figures: List[FigureData] = [_FIGURES[name](runs) for name in names]
    for figure in figures:
        print(figure.render_table())
        print()
        if args.csv:
            os.makedirs(args.csv, exist_ok=True)
            path = os.path.join(args.csv, f"{figure.name}.csv")
            figure.to_csv(path)
            print(f"# wrote {path}", file=sys.stderr)
    return 0


def _emit_figure(figure: FigureData, csv_dir: Optional[str]) -> None:
    print(figure.render_table())
    if csv_dir:
        os.makedirs(csv_dir, exist_ok=True)
        path = os.path.join(csv_dir, f"{figure.name}.csv")
        figure.to_csv(path)
        print(f"# wrote {path}", file=sys.stderr)


def _storage_command(args: argparse.Namespace) -> int:
    from .experiments import storage_report, storage_sweep

    cluster_counts = [int(c) for c in args.clusters.split(",") if c]
    loops = perfect_club_surrogate(args.loops, seed=args.seed)
    points = storage_sweep(loops, cluster_counts)
    _emit_figure(storage_report(points), args.csv)
    return 0


def _ablation_command(args: argparse.Namespace) -> int:
    from .experiments import ABLATIONS

    cluster_counts = [int(c) for c in args.clusters.split(",") if c]
    loops = perfect_club_surrogate(args.loops, seed=args.seed)
    figure = ABLATIONS[args.name](loops, cluster_counts)
    _emit_figure(figure, args.csv)
    return 0


def _baseline_command(args: argparse.Namespace) -> int:
    from .experiments import two_phase_comparison

    cluster_counts = [int(c) for c in args.clusters.split(",") if c]
    loops = perfect_club_surrogate(args.loops, seed=args.seed)
    figure = two_phase_comparison(loops, cluster_counts)
    _emit_figure(figure, args.csv)
    return 0


def _sensitivity_command(args: argparse.Namespace) -> int:
    from .experiments import latency_sensitivity

    cluster_counts = [int(c) for c in args.clusters.split(",") if c]
    loops = perfect_club_surrogate(args.loops, seed=args.seed)
    figure = latency_sensitivity(loops, cluster_counts)
    _emit_figure(figure, args.csv)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "info":
        print(_info())
        return 0
    if args.command == "suite-stats":
        loops = perfect_club_surrogate(args.loops, seed=args.seed)
        stats = suite_stats(loops)
        print(f"loops:            {stats.n_loops}")
        print(
            f"vectorizable:     {stats.n_vectorizable} "
            f"({100 * stats.vectorizable_fraction:.1f}%)"
        )
        print(f"ops total/mean:   {stats.total_ops} / {stats.mean_ops:.1f}")
        print(f"largest loop:     {stats.max_ops} ops")
        print(f"mean trip count:  {stats.mean_trip:.0f}")
        mix = ", ".join(f"{k}={v:.2f}" for k, v in stats.fu_mix.items())
        print(f"op mix:           {mix}")
        return 0
    if args.command == "schedule":
        return _schedule_command(args)
    if args.command == "batch":
        return _batch_command(args)
    if args.command == "storage":
        return _storage_command(args)
    if args.command == "ablation":
        return _ablation_command(args)
    if args.command == "baseline":
        return _baseline_command(args)
    if args.command == "sensitivity":
        return _sensitivity_command(args)
    return _figures_command(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
