"""Command-line interface: ``repro <command>``.

Commands:

* ``info``          — machine/paper overview;
* ``suite-stats``   — shape statistics of the Perfect Club surrogate;
* ``schedule``      — compile one named kernel and print its assembly;
* ``target``        — list/show/validate declarative target descriptions
  (builtin names or TOML/JSON machine files);
* ``batch``         — batch-compile kernels through the session API
  (process pool + on-disk cache);
* ``bench``         — scheduler performance benchmarks; writes/compares
  ``BENCH_scheduler.json`` with a tolerance gate (used by CI);
* ``verify``        — differential execution oracle: execute the emitted
  VLIW programs value-by-value and bit-compare against the sequential
  reference, across kernels x topologies x cluster counts;
* ``fuzz``          — schedule-mutation fuzzing: random loops plus
  systematic schedule mutations, cross-examined by the checker, the
  timing simulator and the oracle (used by CI with a fixed seed);
* ``serve``         — long-lived compilation service: warm process pool,
  in-memory LRU over the disk cache, request dedup, priority admission
  control and live ``/metrics`` (``schedule --remote`` is its client);
* ``fig4|fig5|fig6``— regenerate a paper figure over the surrogate suite;
* ``backtracking``  — the IMS-vs-DMS backtracking comparison;
* ``all-figures``   — everything above in one sweep.

Figures accept ``--loops N`` to subsample the 1258-loop suite (a full run
takes tens of minutes in pure Python), ``--workers N`` to fan the sweep
across processes, and ``--csv DIR`` to persist data.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from .api import BatchCompiler, CompilationRequest, Toolchain, compile_many
from .config import DEFAULT_CONFIG
from .experiments import (
    FigureData,
    SweepConfig,
    backtracking_report,
    figure4,
    figure5,
    figure6,
    moves_report,
    pass_timing_figure,
    run_sweep,
)
from .machine import clustered_vliw, unclustered_vliw
from .codegen import assembly_for
from .workloads import (
    KERNELS,
    PERFECT_CLUB_LOOP_COUNT,
    make_kernel,
    perfect_club_surrogate,
    suite_stats,
)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed Modulo Scheduling (Fernandes, Llosa & Topham, "
            "HPCA 1999) - reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="overview of machines and experiments")

    stats = sub.add_parser("suite-stats", help="surrogate suite statistics")
    _suite_args(stats)

    sched = sub.add_parser("schedule", help="compile one kernel, print assembly")
    sched.add_argument("kernel", choices=sorted(KERNELS))
    sched.add_argument("--clusters", type=int, default=4)
    sched.add_argument("--unclustered", action="store_true")
    sched.add_argument(
        "--target",
        type=str,
        default=None,
        help="target name or machine file (overrides --clusters/--unclustered)",
    )
    sched.add_argument("--ramp", action="store_true", help="show prologue/epilogue")
    sched.add_argument(
        "--timings", action="store_true", help="print per-pass wall-clock times"
    )
    sched.add_argument(
        "--remote",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="compile via a running `repro serve` daemon instead of locally",
    )
    _search_arg(sched)

    target = sub.add_parser(
        "target", help="list/show/validate declarative target descriptions"
    )
    target.add_argument("action", choices=("list", "show", "validate"))
    target.add_argument(
        "name",
        nargs="?",
        default=None,
        help="registered target name or .toml/.json machine file",
    )

    batch = sub.add_parser(
        "batch", help="batch-compile kernels via the session API"
    )
    batch.add_argument(
        "--kernels",
        type=str,
        default="all",
        help="comma-separated kernel names (default: all)",
    )
    batch.add_argument(
        "--clusters",
        type=str,
        default="1,2,3,4,5,6,7,8,9,10",
        help="comma-separated cluster counts",
    )
    batch.add_argument(
        "--target",
        type=str,
        default=None,
        help=(
            "comma-separated target names or machine files "
            "(replaces the --clusters machine sweep)"
        ),
    )
    batch.add_argument(
        "--workers", type=int, default=None, help="process-pool width (default: serial)"
    )
    batch.add_argument(
        "--cache", type=str, default=None, help="on-disk compilation cache directory"
    )
    batch.add_argument(
        "--coordinator",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="run cache misses as one distributed sweep on this "
        "'repro serve' coordinator instead of compiling locally",
    )
    batch.add_argument(
        "--clear-cache", action="store_true", help="empty the cache before compiling"
    )
    batch.add_argument(
        "--json", dest="json_out", type=str, default=None,
        help="write one JSON report per job (JSON lines)",
    )
    batch.add_argument(
        "--timings", action="store_true", help="print the per-pass timing figure"
    )
    _search_arg(batch)

    for name in ("fig4", "fig5", "fig6", "backtracking", "moves", "all-figures"):
        fig = sub.add_parser(name, help=f"regenerate {name}")
        _suite_args(fig)
        _search_arg(fig)
        fig.add_argument(
            "--clusters",
            type=str,
            default="1,2,3,4,5,6,7,8,9,10",
            help="comma-separated cluster counts",
        )
        fig.add_argument("--csv", type=str, default=None, help="output directory")
        fig.add_argument(
            "--runs-out", type=str, default=None, help="persist runs as JSONL"
        )
        fig.add_argument(
            "--workers",
            type=int,
            default=None,
            help="process-pool width for the sweep (default: serial)",
        )

    bench = sub.add_parser(
        "bench", help="scheduler performance benchmarks + regression gate"
    )
    bench.add_argument(
        "--quick", action="store_true", help="3 reps per case instead of 5"
    )
    bench.add_argument(
        "--cases", type=str, default=None, help="comma-separated case subset"
    )
    bench.add_argument(
        "--out", type=str, default=None, help="write results JSON to this path"
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline; exit 1 on regression",
    )
    bench.add_argument(
        "--baseline",
        type=str,
        default="BENCH_scheduler.json",
        help="baseline JSON for --check (default: BENCH_scheduler.json)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative tolerance on normalized times (default: 0.25)",
    )
    bench.add_argument(
        "--baseline-carry",
        type=str,
        default=None,
        help="carry seed_reference forward from this JSON when rewriting "
        "the baseline",
    )
    bench.add_argument(
        "--profile",
        type=str,
        default=None,
        metavar="CASE",
        help="print cProfile top-20 cumulative for one case and exit",
    )
    _search_arg(
        bench,
        help=(
            "override the II-search policy of scheduler-backed cases "
            "(default: each case's own policy; *_ladder cases stay pinned)"
        ),
    )

    verify = sub.add_parser(
        "verify", help="differential execution oracle over the kernel suite"
    )
    verify.add_argument(
        "--kernels",
        type=str,
        default="all",
        help="comma-separated kernel names (default: all)",
    )
    verify.add_argument(
        "--topologies",
        type=str,
        default="ring,linear,mesh,torus,crossbar",
        help="comma-separated topology kinds",
    )
    verify.add_argument(
        "--clusters", type=str, default="2,4,8", help="comma-separated counts"
    )
    verify.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="kernel iterations to execute (default: fill + steady + drain)",
    )
    verify.add_argument(
        "--short-ramp",
        action="store_true",
        help="also execute each program with ramp listings shorter than "
        "the stage count (the short-trip-count path)",
    )
    verify.add_argument(
        "--unclustered",
        action="store_true",
        help="also verify the IMS/unclustered reference machines",
    )
    verify.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width for the compile phase (default: serial)",
    )
    verify.add_argument(
        "--coordinator",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="distribute the compile phase as one sweep on this "
        "'repro serve' coordinator (execution stays local)",
    )
    _search_arg(verify)

    fuzz = sub.add_parser(
        "fuzz", help="schedule-mutation fuzzing (checker vs simulator vs oracle)"
    )
    fuzz.add_argument("--seed", type=int, default=1999)
    fuzz.add_argument(
        "--trials", type=int, default=200, help="max random loops to fuzz"
    )
    fuzz.add_argument(
        "--mutants", type=int, default=10, help="mutants per valid schedule"
    )
    fuzz.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="stop after this many seconds (for CI smoke budgets)",
    )
    fuzz.add_argument(
        "--no-minimize",
        action="store_true",
        help="skip counterexample minimization",
    )
    fuzz.add_argument(
        "--out",
        type=str,
        default=None,
        help="write the JSON campaign report (and counterexamples) here",
    )

    storage = sub.add_parser(
        "storage", help="register/queue storage requirements (paper section 1)"
    )
    _suite_args(storage)
    _search_arg(storage)
    storage.add_argument("--clusters", type=str, default="1,2,4,6,8,10")
    storage.add_argument("--csv", type=str, default=None)

    ablation = sub.add_parser("ablation", help="run one design ablation")
    from .experiments import ABLATIONS

    ablation.add_argument("name", choices=sorted(ABLATIONS))
    _suite_args(ablation)
    _search_arg(ablation)
    ablation.add_argument("--clusters", type=str, default="4,6,8,10")
    ablation.add_argument("--csv", type=str, default=None)

    baseline = sub.add_parser(
        "baseline", help="DMS vs two-phase partition+schedule"
    )
    _suite_args(baseline)
    _search_arg(baseline)
    baseline.add_argument("--clusters", type=str, default="4,6,8,10")
    baseline.add_argument("--csv", type=str, default=None)

    sensitivity = sub.add_parser(
        "sensitivity", help="figure-4 shape under alternative latency models"
    )
    _suite_args(sensitivity)
    _search_arg(sensitivity)
    sensitivity.add_argument("--clusters", type=str, default="2,4,8")
    sensitivity.add_argument("--csv", type=str, default=None)

    serve = sub.add_parser(
        "serve",
        help="long-lived compilation service (warm pool, LRU, metrics)",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (default 0: ephemeral)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="warm process-pool width (0 = in-process threads, for tests)",
    )
    serve.add_argument(
        "--lru-capacity",
        type=int,
        default=256,
        help="in-memory LRU entry bound (default: 256)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="admission-control queue depth (default: 64)",
    )
    serve.add_argument(
        "--cache",
        type=str,
        default=None,
        help="on-disk cache directory behind the in-memory LRU",
    )
    serve.add_argument(
        "--port-file",
        type=str,
        default=None,
        help="write the bound host:port here (for ephemeral ports)",
    )
    serve.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="write the final metrics snapshot JSON here on drain",
    )
    serve.add_argument(
        "--journal",
        type=str,
        default=None,
        help="persistent job-journal file: wait=false submissions are "
             "replayed after a crash-restart against the same path",
    )
    serve.add_argument(
        "--faults",
        type=str,
        default=None,
        metavar="SPEC",
        help="arm deterministic fault injection (e.g. "
             "'worker-crash:times=3;conn-reset:times=2'); test/chaos use",
    )
    serve.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for probabilistic fault rules (default: 0)",
    )

    worker = sub.add_parser(
        "worker",
        help="pull-based sweep worker for a 'repro serve' coordinator",
    )
    worker.add_argument(
        "--coordinator",
        type=str,
        required=True,
        metavar="HOST:PORT",
        help="the coordinator daemon to pull chunks from",
    )
    worker.add_argument(
        "--name",
        type=str,
        default=None,
        help="worker name for leases/metrics (default: w<pid>)",
    )
    worker.add_argument(
        "--cache",
        type=str,
        default=None,
        help="local on-disk compilation cache directory (share the "
        "coordinator's to skip redundant compiles)",
    )
    worker.add_argument(
        "--chunk-factor",
        type=float,
        default=2.0,
        help="self-scheduling divisor: chunk = remaining / "
        "(workers * factor), clamped (default: 2.0)",
    )
    worker.add_argument(
        "--min-chunk", type=int, default=1, help="smallest chunk claimed"
    )
    worker.add_argument(
        "--max-chunk", type=int, default=32, help="largest chunk claimed"
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="seconds between polls when no work is granted (default: 0.5)",
    )
    worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        help="exit after this many seconds without work (default: run "
        "until interrupted)",
    )
    worker.add_argument(
        "--faults",
        type=str,
        default=None,
        metavar="SPEC",
        help="arm deterministic fault injection (e.g. "
        "'worker-vanish:times=1'); test/chaos use",
    )
    worker.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for probabilistic fault rules (default: 0)",
    )
    worker.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="write the worker's final stats JSON here on exit",
    )

    lint = sub.add_parser(
        "lint",
        help="project-aware static analysis (invariant-enforcing AST rules)",
    )
    lint.add_argument(
        "--root", type=str, default=".",
        help="repository root holding pyproject.toml (default: cwd)",
    )
    lint.add_argument(
        "--rules", type=str, default=None,
        help="comma-separated rule ids to run (default: all); "
             "'help' lists every rule with its description",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif emits a SARIF 2.1.0 "
             "document for GitHub code scanning",
    )
    lint.add_argument(
        "--changed", action="store_true",
        help="lint only files changed vs HEAD (git diff + untracked); "
             "cross-file analysis still indexes the whole tree",
    )
    lint.add_argument(
        "--callgraph-cache", type=str, default=None,
        help="JSON file to reload/save the project call-graph index "
             "(keyed on a source hash; stale caches rebuild silently)",
    )
    lint.add_argument(
        "--baseline", type=str, default=None,
        help="baseline file (default: [tool.repro.lint] baseline, "
             "else LINT_baseline.json)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to grandfather every current finding",
    )
    lint.add_argument(
        "--fail-on-new", action="store_true",
        help="exit 1 when any finding outside the baseline exists (CI gate)",
    )
    lint.add_argument(
        "--out", type=str, default=None,
        help="also write the JSON report to this path",
    )
    lint.add_argument(
        "--verbose", action="store_true",
        help="text format: also list baselined (grandfathered) findings",
    )
    return parser


def _search_arg(parser: argparse.ArgumentParser, help: Optional[str] = None) -> None:
    parser.add_argument(
        "--search",
        type=str,
        default=None,
        choices=("ladder", "adaptive", "portfolio"),
        help=help or "II-search policy (default: the scheduler default, adaptive)",
    )


def _scheduler_config(args: argparse.Namespace):
    """The scheduler config implied by a command's ``--search`` flag."""
    search = getattr(args, "search", None)
    if search is None:
        return DEFAULT_CONFIG
    return DEFAULT_CONFIG.with_(search=search)


def _suite_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--loops",
        type=int,
        default=PERFECT_CLUB_LOOP_COUNT,
        help="number of suite loops (default: the paper's 1258)",
    )
    parser.add_argument("--seed", type=int, default=1999)


def _info() -> str:
    lines = [
        "Distributed Modulo Scheduling (DMS) reproduction",
        "paper: Fernandes, Llosa & Topham, HPCA-5, 1999",
        "",
        "machines: clustered(k) = k x {1 L/S, 1 Add, 1 Mul, 1 Copy} on a",
        "          bi-directional ring; unclustered(k) = monolithic 3k FUs",
        "targets:  `repro target list` — declarative targets over any",
        "          registered topology (ring/linear/mesh/torus/crossbar/graph)",
        "schedulers: IMS (Rau 1996) for unclustered, DMS for clustered",
        "",
        "experiments:",
        "  fig4  - %% loops with II increase due to partitioning (1-10 clusters)",
        "  fig5  - relative execution cycles vs useful FUs (3-30)",
        "  fig6  - aggregate IPC vs useful FUs",
        "  backtracking - IMS vs DMS ejections per placement",
        "",
        f"kernels: {', '.join(sorted(KERNELS))}",
    ]
    return "\n".join(lines)


def _schedule_command(args: argparse.Namespace) -> int:
    from .errors import TargetError
    from .targets import resolve_target

    loop = make_kernel(args.kernel)
    equivalent_k: Optional[int] = args.clusters
    if args.target is not None:
        try:
            machine = resolve_target(args.target)
        except TargetError as err:
            print(str(err), file=sys.stderr)
            return 2
        equivalent_k = None
    elif args.unclustered:
        machine = unclustered_vliw(args.clusters)
    else:
        machine = clustered_vliw(args.clusters)
    request = CompilationRequest(
        loop=loop,
        machine=machine,
        equivalent_k=equivalent_k,
        config=_scheduler_config(args),
    )
    if args.remote is not None:
        return _schedule_remote(args, request)
    report = Toolchain.default().compile(request)
    compiled = report.compiled
    result = compiled.result
    print(result.summary())
    print(
        f"unroll={compiled.unroll_factor} cycles={compiled.cycles} "
        f"ipc={compiled.ipc:.2f}"
    )
    if args.timings:
        for name, seconds in report.pass_seconds().items():
            print(f"  {name:<12} {1e3 * seconds:8.2f} ms")
    print(assembly_for(result, compiled.allocation, show_ramp=args.ramp))
    return 0


def _schedule_remote(args: argparse.Namespace, request) -> int:
    """``repro schedule --remote host:port``: compile on a daemon."""
    from .errors import ServiceError
    from .service import ServiceClient

    client = ServiceClient(args.remote)
    try:
        result = client.compile_request(request, assembly=True)
    except ServiceError as err:
        print(str(err), file=sys.stderr)
        return 2
    doc = result["report"]
    print(
        f"{doc['loop']}: {str(doc['scheduler']).upper()} on {doc['machine']} "
        f"II={doc['ii']} (MII={doc['mii']}) "
        f"[remote: {result.get('served_from', '?')}]"
    )
    print(
        f"unroll={doc['unroll']} cycles={doc['cycles']} ipc={doc['ipc']:.2f}"
    )
    if args.timings:
        for name, ms in doc.get("timings_ms", {}).items():
            print(f"  {name:<12} {ms:8.2f} ms")
    if args.ramp:
        print(
            "# --ramp is a local renderer option; remote assembly shows "
            "the steady-state kernel",
            file=sys.stderr,
        )
    print(result.get("assembly", ""))
    return 0


def _serve_command(args: argparse.Namespace) -> int:
    import asyncio

    from .service import run_service

    asyncio.run(
        run_service(
            host=args.host,
            port=args.port,
            workers=args.workers,
            lru_capacity=args.lru_capacity,
            disk_cache=args.cache,
            max_queue_depth=args.max_queue,
            port_file=args.port_file,
            metrics_out=args.metrics_out,
            journal=args.journal,
            fault_spec=args.faults,
            fault_seed=args.fault_seed,
        )
    )
    return 0


def _worker_command(args: argparse.Namespace) -> int:
    import json as json_module

    from . import faults
    from .service.worker import SweepWorker

    if args.faults:
        faults.install(
            faults.FaultPlan.from_spec(args.faults, seed=args.fault_seed)
        )
    sweep_worker = SweepWorker(
        args.coordinator,
        name=args.name,
        cache=args.cache,
        chunk_factor=args.chunk_factor,
        min_chunk=args.min_chunk,
        max_chunk=args.max_chunk,
        poll_interval=args.poll,
        idle_exit=args.idle_exit,
    )
    try:
        stats = sweep_worker.run()
    except KeyboardInterrupt:
        stats = dict(sweep_worker.stats, worker=sweep_worker.name)
    line = json_module.dumps(stats, sort_keys=True)
    print(f"repro worker exiting: {line}", file=sys.stderr)
    if args.metrics_out:
        from pathlib import Path

        Path(args.metrics_out).write_text(line + "\n")
    return 0


def _lint_command(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import (
        load_config,
        render_json,
        render_sarif,
        render_text,
        run_lint,
        update_baseline,
    )
    from .analysis.rules import META_RULE_IDS, get_rule, registered_rules
    from .errors import LintError

    try:
        config = load_config(Path(args.root))
        if args.baseline is not None:
            config.baseline = args.baseline
        if args.rules == "help":
            for rule_id in registered_rules():
                print(f"{rule_id:<22} {get_rule(rule_id).description}")
            for rule_id in META_RULE_IDS:
                print(f"{rule_id:<22} (engine-level finding)")
            return 0
        only = None
        if args.rules is not None:
            only = [part.strip() for part in args.rules.split(",") if part.strip()]
        if args.update_baseline and only is not None:
            print(
                "repro lint: --update-baseline needs the full rule set "
                "(a narrowed run would drop other rules' baseline entries)",
                file=sys.stderr,
            )
            return 2
        files = None
        if args.changed:
            if args.update_baseline:
                print(
                    "repro lint: --update-baseline needs a full run "
                    "(--changed only sees a subset of the tree)",
                    file=sys.stderr,
                )
                return 2
            files = _changed_files(Path(args.root))
        cache = (
            Path(args.callgraph_cache) if args.callgraph_cache else None
        )
        result = run_lint(
            config, only=only, files=files, callgraph_cache=cache
        )
    except LintError as err:
        print(f"repro lint: {err}", file=sys.stderr)
        return 2
    if args.update_baseline:
        path = update_baseline(config, result)
        print(
            f"baseline updated: {path} "
            f"({len(result.findings)} findings grandfathered)"
        )
        return 0
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(render_json(result) + "\n")
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, verbose=args.verbose))
    if args.fail_on_new and not result.ok:
        return 1
    return 0


def _changed_files(root) -> list:
    """Repo-relative paths changed vs HEAD, plus untracked files.

    Outside a git checkout (or without git) the subset is empty — the
    run reports 0 files rather than silently falling back to the whole
    tree, so ``--changed`` in a broken environment is loud, not slow.
    """
    import subprocess

    changed = []
    for argv in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            out = subprocess.run(
                argv, cwd=str(root), capture_output=True, text=True,
                check=True, timeout=30,
            ).stdout
        except (OSError, subprocess.SubprocessError):
            continue
        changed.extend(line.strip() for line in out.splitlines() if line.strip())
    return sorted(set(changed))


def _batch_command(args: argparse.Namespace) -> int:
    if args.kernels == "all":
        names = sorted(KERNELS)
    else:
        names = [n for n in args.kernels.split(",") if n]
        unknown = sorted(set(names) - set(KERNELS))
        if unknown:
            print(f"unknown kernels: {', '.join(unknown)}", file=sys.stderr)
            return 2
    if args.target is not None:
        from .errors import TargetError
        from .targets import resolve_target

        try:
            machines = [
                resolve_target(ref) for ref in args.target.split(",") if ref
            ]
        except TargetError as err:
            print(str(err), file=sys.stderr)
            return 2
        requests = [
            CompilationRequest(
                loop=make_kernel(name),
                machine=machine,
                allocate=False,
                validate=True,
                config=_scheduler_config(args),
            )
            for name in names
            for machine in machines
        ]
        shape = f"{len(names)} kernels x {len(machines)} targets"
    else:
        cluster_counts = [int(c) for c in args.clusters.split(",") if c]
        requests = [
            CompilationRequest(
                loop=make_kernel(name),
                machine=clustered_vliw(k),
                equivalent_k=k,
                allocate=False,
                validate=True,
                config=_scheduler_config(args),
            )
            for name in names
            for k in cluster_counts
        ]
        shape = f"{len(names)} kernels x {len(cluster_counts)} cluster counts"
    compiler = BatchCompiler(
        cache=args.cache,
        workers=args.workers,
        coordinator=args.coordinator,
    )
    if args.clear_cache and compiler.cache is not None:
        removed = compiler.cache.clear()
        print(f"# cleared {removed} cache entries", file=sys.stderr)
    started = time.time()
    reports = compiler.compile_many(
        requests, progress=lambda msg: print(f"  {msg}", file=sys.stderr)
    )
    elapsed = time.time() - started
    for report in reports:
        print(report.summary())
    hits = sum(1 for r in reports if r.cache_hit)
    print(
        f"# {len(reports)} jobs ({shape}) in {elapsed:.2f}s, "
        f"{hits} cache hits",
        file=sys.stderr,
    )
    if compiler.cache is not None:
        print(f"# {compiler.cache.stats.summary()}", file=sys.stderr)
    if args.timings:
        cold = [r for r in reports if not r.cache_hit]
        if cold:
            print(pass_timing_figure(cold).render_table())
        else:
            print("# all jobs cached; no cold timings to report", file=sys.stderr)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            for report in reports:
                handle.write(json.dumps(report.to_dict(), sort_keys=True))
                handle.write("\n")
        print(f"# wrote {args.json_out}", file=sys.stderr)
    return 0


def _target_command(args: argparse.Namespace) -> int:
    from .errors import TargetError
    from .targets import resolve_target, target_names, target_to_toml, get_target

    if args.action == "list":
        for name in target_names():
            target = get_target(name)
            print(
                f"{name:<16} {target.n_clusters:>2} x "
                f"{target.topology_kind:<8} {target.useful_fus:>3} useful FUs"
                f"  {target.description}"
            )
        return 0
    if args.name is None:
        print(f"target {args.action} needs a target name or file", file=sys.stderr)
        return 2
    try:
        target = resolve_target(args.name)
    except TargetError as err:
        print(f"invalid target: {err}", file=sys.stderr)
        return 2
    if args.action == "show":
        print(f"# {target.describe()}")
        print(f"# topology: {target.topology!r}")
        print(target_to_toml(target), end="")
        return 0
    # validate: the spec itself was checked at load; report derived facts
    # a machine-file author most often gets wrong.
    from .ir.opcodes import FUKind, USEFUL_FU_KINDS

    problems = []
    for kind in USEFUL_FU_KINDS:
        if not target.supports(kind):
            problems.append(f"no {kind.value} unit anywhere on the machine")
    if target.is_clustered and target.fu_count(FUKind.COPY) == 0:
        problems.append(
            "clustered machine without any copy FU: DMS cannot insert "
            "chains or single-use copies"
        )
    for problem in problems:
        print(f"PROBLEM: {problem}", file=sys.stderr)
    if problems:
        return 2
    print(
        f"ok: {target.name} ({target.n_clusters} clusters, "
        f"{target.topology_kind} topology, {target.useful_fus} useful FUs)"
    )
    return 0


_FIGURES = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "backtracking": backtracking_report,
    "moves": moves_report,
}


def _figures_command(args: argparse.Namespace) -> int:
    cluster_counts = [int(c) for c in args.clusters.split(",") if c]
    loops = perfect_club_surrogate(args.loops, seed=args.seed)
    started = time.time()
    runs = run_sweep(
        loops,
        SweepConfig(
            cluster_counts=cluster_counts,
            workers=getattr(args, "workers", None),
            scheduler_config=_scheduler_config(args),
        ),
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
    )
    elapsed = time.time() - started
    print(
        f"# {len(loops)} loops x {len(cluster_counts)} cluster counts "
        f"({elapsed:.1f}s)",
        file=sys.stderr,
    )
    if getattr(args, "runs_out", None):
        from .experiments import dump_runs

        dump_runs(runs, args.runs_out)
        print(f"# wrote {args.runs_out}", file=sys.stderr)
    names = (
        list(_FIGURES) if args.command == "all-figures" else [args.command]
    )
    figures: List[FigureData] = [_FIGURES[name](runs) for name in names]
    for figure in figures:
        print(figure.render_table())
        print()
        if args.csv:
            os.makedirs(args.csv, exist_ok=True)
            path = os.path.join(args.csv, f"{figure.name}.csv")
            figure.to_csv(path)
            print(f"# wrote {path}", file=sys.stderr)
    return 0


def _emit_figure(figure: FigureData, csv_dir: Optional[str]) -> None:
    print(figure.render_table())
    if csv_dir:
        os.makedirs(csv_dir, exist_ok=True)
        path = os.path.join(csv_dir, f"{figure.name}.csv")
        figure.to_csv(path)
        print(f"# wrote {path}", file=sys.stderr)


def _verify_command(args: argparse.Namespace) -> int:
    from .machine import clustered_vliw, unclustered_vliw
    from .machine.topology import topology_kinds
    from .validate import verify_many

    if args.kernels == "all":
        names = sorted(KERNELS)
    else:
        names = [n for n in args.kernels.split(",") if n]
        unknown = sorted(set(names) - set(KERNELS))
        if unknown:
            print(f"unknown kernels: {', '.join(unknown)}", file=sys.stderr)
            return 2
    topologies = [t for t in args.topologies.split(",") if t]
    unknown = sorted(set(topologies) - set(topology_kinds()))
    if unknown:
        print(f"unknown topologies: {', '.join(unknown)}", file=sys.stderr)
        return 2
    cluster_counts = [int(c) for c in args.clusters.split(",") if c]

    machines = [
        clustered_vliw(k, topology=topology)
        for topology in topologies
        for k in cluster_counts
    ]
    if args.unclustered:
        machines.extend(unclustered_vliw(k) for k in cluster_counts)

    started = time.time()
    # One toolchain and one batch over the whole (kernel, machine) matrix
    # instead of a fresh Toolchain per program: the compile phase shares
    # every per-session cache and, with --workers, fans across processes;
    # each run depth below then re-verifies its already-compiled loop.
    from .api import compile_many

    loops = {name: make_kernel(name) for name in names}
    jobs = [(name, machine) for name in names for machine in machines]
    requests = [
        CompilationRequest(
            loop=loops[name], machine=machine, config=_scheduler_config(args)
        )
        for name, machine in jobs
    ]
    compiled_reports = compile_many(
        requests,
        toolchain=Toolchain.default(),
        workers=args.workers,
        coordinator=args.coordinator,
        progress=(
            (lambda msg: print(f"  {msg}", file=sys.stderr))
            if args.coordinator
            else None
        ),
    )
    # The oracle phase fans across the same --workers pool the compile
    # phase used: each job is one (compiled, iterations) execution.
    verify_jobs = []
    labels = []
    for (name, machine), compile_report in zip(jobs, compiled_reports):
        compiled = compile_report.compiled
        verify_jobs.append((compiled, args.iterations))
        labels.append((name, machine, ""))
        if args.short_ramp:
            # A run shorter than the pipeline depth (ramp listings
            # degenerate: no steady-state kernel issue).
            short = max(1, compiled.result.stage_count - 1)
            verify_jobs.append((compiled, short))
            labels.append((name, machine, " [short ramp]"))
    verify_reports = verify_many(verify_jobs, workers=args.workers)
    programs = 0
    failures = 0
    for (name, machine, suffix), report in zip(labels, verify_reports):
        programs += 1
        if report.ok:
            continue
        failures += 1
        for problem in report.all_problems[:4]:
            print(
                f"FAIL {name} on {machine.name}{suffix}: {problem}",
                file=sys.stderr,
            )
    elapsed = time.time() - started
    print(
        f"verified {programs} program(s): {len(names)} kernel(s) x "
        f"{len(machines)} machine(s) in {elapsed:.1f}s -> "
        f"{failures} failure(s)"
    )
    return 1 if failures else 0


def _fuzz_command(args: argparse.Namespace) -> int:
    from .validate import FuzzConfig, run_fuzz

    config = FuzzConfig(
        seed=args.seed,
        trials=args.trials,
        mutants_per_trial=args.mutants,
        time_budget=args.time_budget,
        minimize=not args.no_minimize,
    )
    report = run_fuzz(
        config, progress=lambda msg: print(f"  {msg}", file=sys.stderr)
    )
    print(report.summary())
    for disagreement in report.disagreements:
        print(
            f"DISAGREEMENT trial {disagreement.trial} "
            f"({disagreement.loop_name} on {disagreement.machine}, "
            f"{disagreement.mutation} {disagreement.mutation_detail}): "
            + "; ".join(disagreement.violations),
            file=sys.stderr,
        )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote {args.out}", file=sys.stderr)
    return 0 if report.ok else 1


def _storage_command(args: argparse.Namespace) -> int:
    from .experiments import storage_report, storage_sweep

    cluster_counts = [int(c) for c in args.clusters.split(",") if c]
    loops = perfect_club_surrogate(args.loops, seed=args.seed)
    points = storage_sweep(loops, cluster_counts, config=_scheduler_config(args))
    _emit_figure(storage_report(points), args.csv)
    return 0


def _ablation_command(args: argparse.Namespace) -> int:
    from .experiments import ABLATIONS

    cluster_counts = [int(c) for c in args.clusters.split(",") if c]
    loops = perfect_club_surrogate(args.loops, seed=args.seed)
    figure = ABLATIONS[args.name](
        loops, cluster_counts, config=_scheduler_config(args)
    )
    _emit_figure(figure, args.csv)
    return 0


def _baseline_command(args: argparse.Namespace) -> int:
    from .experiments import two_phase_comparison

    cluster_counts = [int(c) for c in args.clusters.split(",") if c]
    loops = perfect_club_surrogate(args.loops, seed=args.seed)
    figure = two_phase_comparison(
        loops, cluster_counts, config=_scheduler_config(args)
    )
    _emit_figure(figure, args.csv)
    return 0


def _sensitivity_command(args: argparse.Namespace) -> int:
    from .experiments import latency_sensitivity

    cluster_counts = [int(c) for c in args.clusters.split(",") if c]
    loops = perfect_club_surrogate(args.loops, seed=args.seed)
    figure = latency_sensitivity(
        loops, cluster_counts, config=_scheduler_config(args)
    )
    _emit_figure(figure, args.csv)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "info":
        print(_info())
        return 0
    if args.command == "suite-stats":
        loops = perfect_club_surrogate(args.loops, seed=args.seed)
        stats = suite_stats(loops)
        print(f"loops:            {stats.n_loops}")
        print(
            f"vectorizable:     {stats.n_vectorizable} "
            f"({100 * stats.vectorizable_fraction:.1f}%)"
        )
        print(f"ops total/mean:   {stats.total_ops} / {stats.mean_ops:.1f}")
        print(f"largest loop:     {stats.max_ops} ops")
        print(f"mean trip count:  {stats.mean_trip:.0f}")
        mix = ", ".join(f"{k}={v:.2f}" for k, v in stats.fu_mix.items())
        print(f"op mix:           {mix}")
        return 0
    if args.command == "schedule":
        return _schedule_command(args)
    if args.command == "target":
        return _target_command(args)
    if args.command == "batch":
        return _batch_command(args)
    if args.command == "bench":
        from .bench import main_bench

        return main_bench(args)
    if args.command == "verify":
        return _verify_command(args)
    if args.command == "fuzz":
        return _fuzz_command(args)
    if args.command == "storage":
        return _storage_command(args)
    if args.command == "ablation":
        return _ablation_command(args)
    if args.command == "baseline":
        return _baseline_command(args)
    if args.command == "sensitivity":
        return _sensitivity_command(args)
    if args.command == "serve":
        return _serve_command(args)
    if args.command == "worker":
        return _worker_command(args)
    if args.command == "lint":
        return _lint_command(args)
    return _figures_command(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
