"""Regeneration of the paper's figures 4-6 (plus the backtracking claim).

Each ``figure*`` function turns a list of :class:`LoopRun` records into a
:class:`FigureData`: the x axis, the named series, and paper anchors for
eyeball comparison.  ``render_table`` prints the same rows the paper
plots; ``to_csv`` persists them.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import ReproError
from .metrics import (
    LoopRun,
    aggregate_ipc,
    ii_overhead_fraction,
    mean_ejections_per_placement,
    total_cycles,
)


@dataclass
class FigureData:
    """One regenerated figure: x axis plus named series."""

    name: str
    title: str
    x_label: str
    x: List[float]
    series: Dict[str, List[float]]
    notes: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        for label, values in self.series.items():
            if len(values) != len(self.x):
                raise ReproError(
                    f"{self.name}: series {label!r} has {len(values)} points "
                    f"for {len(self.x)} x values"
                )

    def series_value(self, label: str, x_value: float) -> float:
        index = self.x.index(x_value)
        return self.series[label][index]

    def render_table(self, precision: int = 2) -> str:
        """ASCII table, one row per x value."""
        labels = list(self.series)
        width = max(12, *(len(label) + 2 for label in labels))
        header = f"{self.x_label:>12} " + " ".join(
            f"{label:>{width}}" for label in labels
        )
        lines = [self.title, header, "-" * len(header)]
        for i, x_value in enumerate(self.x):
            row = f"{x_value:>12g} " + " ".join(
                f"{self.series[label][i]:>{width}.{precision}f}"
                for label in labels
            )
            lines.append(row)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self, path: str) -> None:
        """Write the figure data as CSV."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([self.x_label, *self.series])
            for i, x_value in enumerate(self.x):
                writer.writerow(
                    [x_value, *(self.series[label][i] for label in self.series)]
                )


def _cluster_counts(runs: Sequence[LoopRun]) -> List[int]:
    counts = sorted({run.clusters for run in runs})
    if not counts:
        raise ReproError("no runs supplied")
    return counts


def figure4(runs: Sequence[LoopRun]) -> FigureData:
    """Figure 4: % of loops with an II increase due to partitioning."""
    clusters = _cluster_counts(runs)
    fractions = [100.0 * ii_overhead_fraction(runs, k) for k in clusters]
    return FigureData(
        name="figure4",
        title="Figure 4 - Overhead on II due to partitioning (% of loops)",
        x_label="clusters",
        x=[float(k) for k in clusters],
        series={"ii_increase_pct": fractions},
        notes=[
            "paper anchors: ~0% at 1 cluster; 2-3 clusters only copy-op "
            "overhead; >80% of loops overhead-free up to 8 clusters",
        ],
    )


def figure5(runs: Sequence[LoopRun]) -> FigureData:
    """Figure 5: relative execution cycles vs useful FU count."""
    clusters = _cluster_counts(runs)
    fus = [3 * k for k in clusters]
    series: Dict[str, List[float]] = {}
    for set_label, vectorizable_only in (("set1", False), ("set2", True)):
        baseline = total_cycles(runs, clusters[0], "ims", vectorizable_only)
        for sched_label, scheduler in (
            ("unclustered", "ims"),
            ("clustered", "dms"),
        ):
            series[f"{set_label}_{sched_label}"] = [
                100.0
                * total_cycles(runs, k, scheduler, vectorizable_only)
                / baseline
                for k in clusters
            ]
    return FigureData(
        name="figure5",
        title="Figure 5 - Execution time (cycles, relative; 100 = 3-FU unclustered)",
        x_label="useful FUs",
        x=[float(f) for f in fus],
        series=series,
        notes=[
            "paper anchors: clustered tracks unclustered closely up to 21 FUs "
            "on set 1 and everywhere on set 2",
        ],
    )


def figure6(runs: Sequence[LoopRun]) -> FigureData:
    """Figure 6: aggregate IPC vs useful FU count."""
    clusters = _cluster_counts(runs)
    fus = [3 * k for k in clusters]
    series: Dict[str, List[float]] = {}
    for set_label, vectorizable_only in (("set1", False), ("set2", True)):
        for sched_label, scheduler in (
            ("unclustered", "ims"),
            ("clustered", "dms"),
        ):
            series[f"{set_label}_{sched_label}"] = [
                aggregate_ipc(runs, k, scheduler, vectorizable_only)
                for k in clusters
            ]
    return FigureData(
        name="figure6",
        title="Figure 6 - IPC (useful instructions per cycle, ramp included)",
        x_label="useful FUs",
        x=[float(f) for f in fus],
        series=series,
        notes=[
            "paper anchors: set 1 clustered IPC levels off beyond 21 FUs "
            "(7 clusters); set 2 keeps improving through 30 FUs",
        ],
    )


def backtracking_report(runs: Sequence[LoopRun]) -> FigureData:
    """Section 3/4 claim: IMS and DMS backtrack at the same order."""
    clusters = _cluster_counts(runs)
    return FigureData(
        name="backtracking",
        title="Backtracking intensity (mean ejections per placement)",
        x_label="clusters",
        x=[float(k) for k in clusters],
        series={
            "ims": [
                mean_ejections_per_placement(runs, k, "ims") for k in clusters
            ],
            "dms": [
                mean_ejections_per_placement(runs, k, "dms") for k in clusters
            ],
        },
        notes=[
            "paper claim: 'on average the backtracking frequency of IMS and "
            "DMS are of the same order'",
        ],
    )


def pass_timing_figure(reports: Sequence) -> FigureData:
    """Compilation cost per pass vs machine width.

    Takes :class:`~repro.api.CompilationReport` objects (cache hits are
    excluded — their recorded timings describe the original cold run) and
    plots mean per-pass wall-clock milliseconds against the cluster count,
    the observability half of the session API: where does compile time go
    as the ring widens?
    """
    cold = [r for r in reports if not r.cache_hit]
    if not cold:
        raise ReproError("no cold compilation reports supplied")
    clusters = sorted({r.result.machine.n_clusters for r in cold})
    pass_names: List[str] = []
    for report in cold:
        for timing in report.timings:
            if timing.pass_name not in pass_names:
                pass_names.append(timing.pass_name)
    series: Dict[str, List[float]] = {name: [] for name in pass_names}
    for k in clusters:
        at_k = [r for r in cold if r.result.machine.n_clusters == k]
        for name in pass_names:
            total = sum(r.pass_seconds().get(name, 0.0) for r in at_k)
            series[name].append(1e3 * total / len(at_k))
    return FigureData(
        name="pass_timings",
        title="Mean compilation time per pass (ms) vs cluster count",
        x_label="clusters",
        x=[float(k) for k in clusters],
        series=series,
        notes=[f"{len(cold)} cold compilations"],
    )


def moves_report(runs: Sequence[LoopRun]) -> FigureData:
    """Supplementary: average move/copy operations per loop vs clusters."""
    clusters = _cluster_counts(runs)
    moves: List[float] = []
    copies: List[float] = []
    for k in clusters:
        dms_runs = [r for r in runs if r.clusters == k and r.scheduler == "dms"]
        if not dms_runs:
            raise ReproError(f"no dms runs at {k} clusters")
        moves.append(sum(r.n_moves for r in dms_runs) / len(dms_runs))
        copies.append(sum(r.n_copies for r in dms_runs) / len(dms_runs))
    return FigureData(
        name="moves",
        title="Move/copy operations inserted by DMS (mean per loop)",
        x_label="clusters",
        x=[float(k) for k in clusters],
        series={"moves": moves, "copies": copies},
    )
