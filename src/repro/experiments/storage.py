"""Storage-requirement analysis (the paper's section-1 motivation).

The paper's premise: "the scalability of VLIW architectures is still
constrained by the size and number of ports of the register file required
by a large number of functional units".  This module quantifies that
premise on the reproduction's own schedules:

* **unclustered machines** — MaxLive, the peak number of simultaneously
  live values a central multi-ported register file must hold (its port
  count grows with the FU count by construction: 2 reads + 1 write per
  FU);
* **clustered machines** — the per-cluster storage DMS schedules
  actually need: LRF queues, CQRF queues, and their depths, each file
  with a fixed small port count (one FU trio reads/writes the LRF; one
  neighbour writes and one reads each CQRF).

The output is the quantitative version of the paper's argument: total
storage stays comparable while the *per-file* requirements — what
determines access time — stay flat for the clustered machine and grow
linearly for the unclustered one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..ir.loop import Loop
from ..ir.opcodes import DEFAULT_LATENCIES, LatencyModel
from ..machine.cqrf import LRFId
from ..machine.machine import clustered_vliw, unclustered_vliw
from ..registers.lifetimes import register_pressure
from ..registers.queues import allocate_queues
from ..scheduling.pipeline import compile_loop
from .figures import FigureData


@dataclass(frozen=True)
class StoragePoint:
    """Storage demand of one loop at one cluster count."""

    loop_name: str
    clusters: int
    unclustered_maxlive: int
    lrf_queues_max: int  # largest LRF queue count of any single cluster
    lrf_depth_max: int
    cqrf_queues_max: int  # largest queue count of any single CQRF
    cqrf_depth_max: int

    @property
    def largest_clustered_file(self) -> int:
        """Queue count of the biggest storage structure any cluster owns."""
        return max(self.lrf_queues_max, self.cqrf_queues_max)


def storage_point(
    loop: Loop,
    k: int,
    latencies: LatencyModel = DEFAULT_LATENCIES,
    config: SchedulerConfig = DEFAULT_CONFIG,
) -> StoragePoint:
    """Measure the storage demands of *loop* on the k-cluster pair."""
    unclustered = compile_loop(
        loop, unclustered_vliw(k), latencies, config, equivalent_k=k, allocate=False
    )
    maxlive = register_pressure(unclustered.result)
    clustered = compile_loop(
        loop, clustered_vliw(k), latencies, config, equivalent_k=k, allocate=False
    )
    allocation = allocate_queues(clustered.result)
    lrf_queues = [0]
    lrf_depths = [0]
    cqrf_queues = [0]
    cqrf_depths = [0]
    for usage in allocation.files:
        if isinstance(usage.file_id, LRFId):
            lrf_queues.append(usage.queues_used)
            lrf_depths.append(usage.max_depth)
        else:
            cqrf_queues.append(usage.queues_used)
            cqrf_depths.append(usage.max_depth)
    return StoragePoint(
        loop_name=loop.name,
        clusters=k,
        unclustered_maxlive=maxlive,
        lrf_queues_max=max(lrf_queues),
        lrf_depth_max=max(lrf_depths),
        cqrf_queues_max=max(cqrf_queues),
        cqrf_depth_max=max(cqrf_depths),
    )


def storage_sweep(
    loops: Sequence[Loop],
    cluster_counts: Sequence[int] = (1, 2, 4, 6, 8, 10),
    latencies: LatencyModel = DEFAULT_LATENCIES,
    config: SchedulerConfig = DEFAULT_CONFIG,
) -> List[StoragePoint]:
    """Measure storage for every loop/cluster-count combination."""
    points: List[StoragePoint] = []
    for loop in loops:
        for k in cluster_counts:
            points.append(storage_point(loop, k, latencies, config))
    return points


def storage_report(points: Sequence[StoragePoint]) -> FigureData:
    """Aggregate a storage sweep into a renderable figure.

    Series are means across loops: the central file's MaxLive vs the
    largest single queue file any cluster owns.
    """
    cluster_counts = sorted({p.clusters for p in points})
    maxlive: List[float] = []
    largest_file: List[float] = []
    cqrf_depth: List[float] = []
    for k in cluster_counts:
        at_k = [p for p in points if p.clusters == k]
        maxlive.append(sum(p.unclustered_maxlive for p in at_k) / len(at_k))
        largest_file.append(
            sum(p.largest_clustered_file for p in at_k) / len(at_k)
        )
        cqrf_depth.append(sum(p.cqrf_depth_max for p in at_k) / len(at_k))
    return FigureData(
        name="storage",
        title=(
            "Storage requirements: central RF MaxLive vs largest clustered "
            "queue file (means per loop)"
        ),
        x_label="clusters",
        x=[float(k) for k in cluster_counts],
        series={
            "central_rf_maxlive": maxlive,
            "largest_cluster_file": largest_file,
            "cqrf_depth_max": cqrf_depth,
        },
        notes=[
            "paper section 1: central register file size/ports constrain "
            "wide VLIWs; clustering keeps every individual file small",
        ],
    )
