"""Persistence for experiment runs (JSON lines).

A full 1258-loop sweep takes minutes; persisting the
:class:`~repro.experiments.metrics.LoopRun` records lets figures be
re-rendered, re-sliced and diffed without rescheduling anything.
"""

from __future__ import annotations

import dataclasses
import json
from typing import List, Sequence

from ..errors import ReproError
from .metrics import LoopRun


def dump_runs(runs: Sequence[LoopRun], path: str) -> None:
    """Write runs as JSON lines (one record per line)."""
    with open(path, "w") as handle:
        for run in runs:
            handle.write(json.dumps(dataclasses.asdict(run), sort_keys=True))
            handle.write("\n")


def load_runs(path: str) -> List[LoopRun]:
    """Read runs written by :func:`dump_runs`."""
    field_names = {f.name for f in dataclasses.fields(LoopRun)}
    runs: List[LoopRun] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise ReproError(
                    f"{path}:{line_number}: invalid JSON ({err})"
                ) from None
            unknown = set(record) - field_names
            missing = field_names - set(record)
            if unknown or missing:
                raise ReproError(
                    f"{path}:{line_number}: field mismatch "
                    f"(unknown={sorted(unknown)}, missing={sorted(missing)})"
                )
            runs.append(LoopRun(**record))
    return runs
