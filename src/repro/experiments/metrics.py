"""Per-loop run records and metric aggregation for the paper's figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ReproError


@dataclass(frozen=True)
class LoopRun:
    """One (loop, machine, scheduler) measurement.

    ``clusters`` is the cluster count of the comparison point (for the
    unclustered machine it is the k whose clustered twin has 3k FUs).
    """

    loop_name: str
    vectorizable: bool
    clusters: int
    useful_fus: int
    scheduler: str  # "ims" | "dms"
    unroll: int
    ii: int
    mii: int
    res_mii: int
    rec_mii: int
    stage_count: int
    kernel_iterations: int
    cycles: int
    useful_instances: int
    n_moves: int
    n_copies: int
    placements: int
    total_ejections: int
    strategy1: int
    strategy2: int
    strategy3: int

    @property
    def ipc(self) -> float:
        return self.useful_instances / self.cycles

    @property
    def ejections_per_placement(self) -> float:
        """Backtracking intensity (paper section 3's frequency claim)."""
        if self.placements == 0:
            return 0.0
        return self.total_ejections / self.placements


def _index_runs(
    runs: Iterable[LoopRun],
) -> Dict[Tuple[str, int, str], LoopRun]:
    indexed: Dict[Tuple[str, int, str], LoopRun] = {}
    for run in runs:
        key = (run.loop_name, run.clusters, run.scheduler)
        if key in indexed:
            raise ReproError(f"duplicate run {key}")
        indexed[key] = run
    return indexed


def ii_overhead_fraction(runs: Sequence[LoopRun], clusters: int) -> float:
    """Fraction of loops with DMS II above the unclustered IMS II.

    This is figure 4's y-axis for one cluster count.
    """
    indexed = _index_runs(runs)
    loops = sorted({r.loop_name for r in runs if r.clusters == clusters})
    if not loops:
        raise ReproError(f"no runs at {clusters} clusters")
    worse = 0
    for name in loops:
        dms = indexed.get((name, clusters, "dms"))
        ims = indexed.get((name, clusters, "ims"))
        if dms is None or ims is None:
            raise ReproError(f"incomplete pair for {name!r} at k={clusters}")
        if dms.ii > ims.ii:
            worse += 1
    return worse / len(loops)


def total_cycles(
    runs: Sequence[LoopRun],
    clusters: int,
    scheduler: str,
    vectorizable_only: bool = False,
) -> int:
    """Suite-wide execution cycles for one machine/scheduler point."""
    total = 0
    found = False
    for run in runs:
        if run.clusters != clusters or run.scheduler != scheduler:
            continue
        if vectorizable_only and not run.vectorizable:
            continue
        total += run.cycles
        found = True
    if not found:
        raise ReproError(
            f"no {scheduler} runs at {clusters} clusters "
            f"(vectorizable_only={vectorizable_only})"
        )
    return total


def aggregate_ipc(
    runs: Sequence[LoopRun],
    clusters: int,
    scheduler: str,
    vectorizable_only: bool = False,
) -> float:
    """Suite-wide IPC: total useful instructions / total cycles."""
    instructions = 0
    cycles = 0
    for run in runs:
        if run.clusters != clusters or run.scheduler != scheduler:
            continue
        if vectorizable_only and not run.vectorizable:
            continue
        instructions += run.useful_instances
        cycles += run.cycles
    if cycles == 0:
        raise ReproError(
            f"no {scheduler} runs at {clusters} clusters "
            f"(vectorizable_only={vectorizable_only})"
        )
    return instructions / cycles


def mean_ejections_per_placement(
    runs: Sequence[LoopRun], clusters: int, scheduler: str
) -> float:
    """Average backtracking intensity across loops (TXT-BT experiment)."""
    values: List[float] = [
        run.ejections_per_placement
        for run in runs
        if run.clusters == clusters and run.scheduler == scheduler
    ]
    if not values:
        raise ReproError(f"no {scheduler} runs at {clusters} clusters")
    return sum(values) / len(values)
