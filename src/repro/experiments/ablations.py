"""Programmatic ablation studies over the DMS design choices.

Each ablation varies exactly one design decision the paper discusses and
re-runs the figure-4 style sweep (through the :mod:`repro.api` batch
compiler — pass ``workers`` to fan a heavy ablation across processes),
returning a comparable :class:`~repro.experiments.figures.FigureData`:

* ``copy_fu_ablation``   — 1 vs 2 Copy FUs per cluster (the paper's
  "additional hardware support" remark);
* ``chain_policy_ablation`` — the paper's both-directions bottleneck
  scoring vs a shortest-direction-only planner;
* ``single_use_ablation``   — linear copy chains (paper) vs balanced trees;
* ``restart_ablation``      — strict single-pass DMS vs diversified
  restarts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..ir.loop import Loop
from ..machine.cluster import ClusterSpec
from .figures import FigureData
from .metrics import LoopRun, ii_overhead_fraction
from .runner import SweepConfig, run_sweep

DEFAULT_ABLATION_CLUSTERS = (4, 6, 8, 10)


def _overhead_series(
    runs: Sequence[LoopRun], cluster_counts: Sequence[int]
) -> List[float]:
    return [100.0 * ii_overhead_fraction(runs, k) for k in cluster_counts]


def _two_variant_figure(
    name: str,
    title: str,
    cluster_counts: Sequence[int],
    series: Dict[str, List[float]],
    notes: Sequence[str] = (),
) -> FigureData:
    return FigureData(
        name=name,
        title=title,
        x_label="clusters",
        x=[float(k) for k in cluster_counts],
        series=series,
        notes=list(notes),
    )


def copy_fu_ablation(
    loops: Sequence[Loop],
    cluster_counts: Sequence[int] = DEFAULT_ABLATION_CLUSTERS,
    config: SchedulerConfig = DEFAULT_CONFIG,
    workers: Optional[int] = None,
) -> FigureData:
    """II-overhead with 1 vs 2 Copy FUs per cluster (ABL-COPYFU)."""
    series: Dict[str, List[float]] = {}
    for label, copies in (("copy_fus_1", 1), ("copy_fus_2", 2)):
        runs = run_sweep(
            loops,
            SweepConfig(
                cluster_counts=cluster_counts,
                workers=workers,
                scheduler_config=config,
                cluster_spec=ClusterSpec(copy=copies),
            ),
        )
        series[label] = _overhead_series(runs, cluster_counts)
    return _two_variant_figure(
        "ablation_copy_fus",
        "ABL-COPYFU: II overhead (%) with 1 vs 2 Copy FUs per cluster",
        cluster_counts,
        series,
        [
            "paper conclusion: wide-ring overhead 'could be minimized by "
            "using additional FUs to schedule move operations'",
        ],
    )


def chain_policy_ablation(
    loops: Sequence[Loop],
    cluster_counts: Sequence[int] = DEFAULT_ABLATION_CLUSTERS,
    config: SchedulerConfig = DEFAULT_CONFIG,
    workers: Optional[int] = None,
) -> FigureData:
    """Both-direction bottleneck scoring vs shortest-only (ABL-CHAIN)."""
    series: Dict[str, List[float]] = {}
    for label, shortest_only in (("paper_rule", False), ("shortest_only", True)):
        runs = run_sweep(
            loops,
            SweepConfig(
                cluster_counts=cluster_counts,
                workers=workers,
                scheduler_config=config.with_(
                    prefer_shortest_chain_only=shortest_only
                ),
            ),
        )
        series[label] = _overhead_series(runs, cluster_counts)
    return _two_variant_figure(
        "ablation_chain_policy",
        "ABL-CHAIN: II overhead (%), paper chain rule vs shortest-only",
        cluster_counts,
        series,
    )


def single_use_ablation(
    loops: Sequence[Loop],
    cluster_counts: Sequence[int] = DEFAULT_ABLATION_CLUSTERS,
    config: SchedulerConfig = DEFAULT_CONFIG,
    workers: Optional[int] = None,
) -> FigureData:
    """Copy chain vs copy tree insertion shapes (ABL-SINGLEUSE)."""
    series: Dict[str, List[float]] = {}
    for label, strategy in (("copy_chain", "chain"), ("copy_tree", "tree")):
        runs = run_sweep(
            loops,
            SweepConfig(
                cluster_counts=cluster_counts,
                workers=workers,
                scheduler_config=config.with_(single_use_strategy=strategy),
            ),
        )
        series[label] = _overhead_series(runs, cluster_counts)
    return _two_variant_figure(
        "ablation_single_use",
        "ABL-SINGLEUSE: II overhead (%), linear copy chains vs trees",
        cluster_counts,
        series,
    )


def restart_ablation(
    loops: Sequence[Loop],
    cluster_counts: Sequence[int] = DEFAULT_ABLATION_CLUSTERS,
    config: SchedulerConfig = DEFAULT_CONFIG,
    workers: Optional[int] = None,
) -> FigureData:
    """Single-pass DMS vs diversified restarts (ABL-BUDGET companion)."""
    series: Dict[str, List[float]] = {}
    for label, restarts in (("restarts_1", 1), ("restarts_3", 3)):
        runs = run_sweep(
            loops,
            SweepConfig(
                cluster_counts=cluster_counts,
                workers=workers,
                scheduler_config=config.with_(restarts_per_ii=restarts),
            ),
        )
        series[label] = _overhead_series(runs, cluster_counts)
    return _two_variant_figure(
        "ablation_restarts",
        "ABL-RESTARTS: II overhead (%), single-pass vs diversified restarts",
        cluster_counts,
        series,
    )


#: Interconnects compared by the topology ablation, best-connected last.
TOPOLOGY_ABLATION_KINDS = ("linear", "ring", "mesh", "crossbar")


def topology_ablation(
    loops: Sequence[Loop],
    cluster_counts: Sequence[int] = DEFAULT_ABLATION_CLUSTERS,
    config: SchedulerConfig = DEFAULT_CONFIG,
    workers: Optional[int] = None,
    topologies: Sequence[str] = TOPOLOGY_ABLATION_KINDS,
) -> FigureData:
    """II overhead across interconnects (linear / ring / mesh / crossbar).

    The ring is the paper's choice; the linear array (one chain path per
    far pair, no wraparound) shows what the second ring direction buys,
    while the mesh covers the CGRA-style interconnects of the follow-on
    literature and the full crossbar bounds the study from below (no
    communication conflicts can arise at all).  Any registered topology
    kind can be added to *topologies*.
    """
    series: Dict[str, List[float]] = {}
    for topology in topologies:
        runs = run_sweep(
            loops,
            SweepConfig(
                cluster_counts=cluster_counts,
                workers=workers,
                scheduler_config=config,
                topology=topology,
            ),
        )
        series[topology] = _overhead_series(runs, cluster_counts)
    return _two_variant_figure(
        "ablation_topology",
        "ABL-TOPOLOGY: II overhead (%) across cluster interconnects",
        cluster_counts,
        series,
        [
            "the ring's second direction halves worst-case distances and "
            "doubles the chain options (paper section 2)",
            "the crossbar makes every pair adjacent: its overhead is the "
            "no-communication-conflict floor",
        ],
    )


ABLATIONS = {
    "copy_fus": copy_fu_ablation,
    "chain_policy": chain_policy_ablation,
    "single_use": single_use_ablation,
    "restarts": restart_ablation,
    "topology": topology_ablation,
}
