"""Baseline comparison: single-phase DMS vs partition-then-schedule.

The paper positions DMS against two-phase approaches from the related
work (partitioning and scheduling as separate passes).  This experiment
schedules the suite with both on the same machines and reports the
figure-4 metric (fraction of loops whose II exceeds the unclustered IMS
II) side by side — the measured version of the paper's integration
argument.

With the session API the baseline is literally a one-pass swap::

    dms_toolchain       = Toolchain.default()
    two_phase_toolchain = dms_toolchain.with_pass("schedule", "schedule_two_phase")

everything else (unroll policy, single-use insertion, validation) is
shared by construction instead of by copy-paste.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..api.batch import compile_many
from ..api.request import CompilationRequest
from ..api.toolchain import Toolchain
from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..errors import IIOverflowError, ReproError
from ..ir.loop import Loop
from ..ir.opcodes import DEFAULT_LATENCIES, LatencyModel
from ..machine.machine import clustered_vliw, unclustered_vliw
from .figures import FigureData


def two_phase_comparison(
    loops: Sequence[Loop],
    cluster_counts: Sequence[int] = (4, 6, 8, 10),
    latencies: LatencyModel = DEFAULT_LATENCIES,
    config: SchedulerConfig = DEFAULT_CONFIG,
    workers: Optional[int] = None,
) -> FigureData:
    """II-overhead fractions for DMS and the two-phase baseline."""
    dms_toolchain = Toolchain.default()
    two_phase_toolchain = dms_toolchain.with_pass("schedule", "schedule_two_phase")

    def requests(machine_for_k, scheduler: Optional[str]) -> List[CompilationRequest]:
        return [
            CompilationRequest(
                loop=loop,
                machine=machine_for_k[k],
                latencies=latencies,
                config=config,
                equivalent_k=k,
                allocate=False,
                validate=True,
                scheduler=scheduler,
            )
            for k in cluster_counts
            for loop in loops
        ]

    unclustered = {k: unclustered_vliw(k) for k in cluster_counts}
    clustered = {k: clustered_vliw(k) for k in cluster_counts}
    reference = compile_many(
        requests(unclustered, "ims"), toolchain=dms_toolchain, workers=workers
    )
    dms = compile_many(
        requests(clustered, "dms"), toolchain=dms_toolchain, workers=workers
    )
    # The two-phase scheduler can exhaust its II search on loops DMS
    # handles; such failures come back as exception objects and count as
    # overhead (the baseline simply cannot schedule the loop).
    two_phase = compile_many(
        requests(clustered, None),
        toolchain=two_phase_toolchain,
        workers=workers,
        return_errors=True,
    )

    dms_overhead: List[float] = []
    twophase_overhead: List[float] = []
    twophase_failures = 0
    for k_index, k in enumerate(cluster_counts):
        dms_worse = 0
        twophase_worse = 0
        for loop_index in range(len(loops)):
            at = k_index * len(loops) + loop_index
            reference_ii = reference[at].result.ii
            if dms[at].result.ii > reference_ii:
                dms_worse += 1
            outcome = two_phase[at]
            if isinstance(outcome, ReproError):
                if not isinstance(outcome, IIOverflowError):
                    raise outcome
                twophase_failures += 1
                twophase_worse += 1
            elif outcome.result.ii > reference_ii:
                twophase_worse += 1
        dms_overhead.append(100.0 * dms_worse / len(loops))
        twophase_overhead.append(100.0 * twophase_worse / len(loops))
    notes = [
        "two-phase = ring partition + static move chains + pinned IMS "
        "(related-work style, refs [1][6][12])",
    ]
    if twophase_failures:
        notes.append(
            f"two-phase failed to find any II for {twophase_failures} "
            "(loop, machine) pairs (counted as overhead)"
        )
    return FigureData(
        name="baseline_two_phase",
        title="Single-phase DMS vs two-phase partition+schedule "
        "(% loops with II overhead)",
        x_label="clusters",
        x=[float(k) for k in cluster_counts],
        series={
            "dms_single_phase": dms_overhead,
            "two_phase": twophase_overhead,
        },
        notes=notes,
    )
