"""Baseline comparison: single-phase DMS vs partition-then-schedule.

The paper positions DMS against two-phase approaches from the related
work (partitioning and scheduling as separate passes).  This experiment
schedules the suite with both on the same machines and reports the
figure-4 metric (fraction of loops whose II exceeds the unclustered IMS
II) side by side — the measured version of the paper's integration
argument.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..errors import IIOverflowError
from ..ir.loop import Loop
from ..ir.opcodes import DEFAULT_LATENCIES, LatencyModel
from ..ir.transforms import single_use_ddg, unroll_ddg
from ..machine.machine import clustered_vliw, unclustered_vliw
from ..scheduling.checker import validate_schedule
from ..scheduling.dms import DistributedModuloScheduler
from ..scheduling.ims import IterativeModuloScheduler
from ..scheduling.pipeline import choose_unroll_factor
from ..scheduling.twophase import TwoPhaseScheduler
from .figures import FigureData


def two_phase_comparison(
    loops: Sequence[Loop],
    cluster_counts: Sequence[int] = (4, 6, 8, 10),
    latencies: LatencyModel = DEFAULT_LATENCIES,
    config: SchedulerConfig = DEFAULT_CONFIG,
) -> FigureData:
    """II-overhead fractions for DMS and the two-phase baseline."""
    dms_overhead: List[float] = []
    twophase_overhead: List[float] = []
    twophase_failures = 0
    for k in cluster_counts:
        unclustered = unclustered_vliw(k)
        clustered = clustered_vliw(k)
        dms_worse = 0
        twophase_worse = 0
        for loop in loops:
            unroll = choose_unroll_factor(
                loop.ddg, k, latencies=latencies, cap=config.unroll_cap
            )
            base = unroll_ddg(loop.ddg, unroll)
            reference = IterativeModuloScheduler(
                unclustered, latencies, config
            ).schedule(base)
            prepared = (
                single_use_ddg(base, config.single_use_strategy)
                if clustered.is_clustered
                else base
            )
            dms_result = DistributedModuloScheduler(
                clustered, latencies, config
            ).schedule(prepared.copy())
            validate_schedule(dms_result)
            if dms_result.ii > reference.ii:
                dms_worse += 1
            try:
                twophase_result = TwoPhaseScheduler(
                    clustered, latencies, config
                ).schedule(prepared.copy())
                validate_schedule(twophase_result)
                if twophase_result.ii > reference.ii:
                    twophase_worse += 1
            except IIOverflowError:
                twophase_failures += 1
                twophase_worse += 1
        dms_overhead.append(100.0 * dms_worse / len(loops))
        twophase_overhead.append(100.0 * twophase_worse / len(loops))
    notes = [
        "two-phase = ring partition + static move chains + pinned IMS "
        "(related-work style, refs [1][6][12])",
    ]
    if twophase_failures:
        notes.append(
            f"two-phase failed to find any II for {twophase_failures} "
            "(loop, machine) pairs (counted as overhead)"
        )
    return FigureData(
        name="baseline_two_phase",
        title="Single-phase DMS vs two-phase partition+schedule "
        "(% loops with II overhead)",
        x_label="clusters",
        x=[float(k) for k in cluster_counts],
        series={
            "dms_single_phase": dms_overhead,
            "two_phase": twophase_overhead,
        },
        notes=notes,
    )
