"""The machine-sweep runner behind figures 4-6.

For every loop and every cluster count ``k`` the runner schedules the loop
twice — IMS on the unclustered 3k-FU machine and DMS on the k-cluster
machine — sharing one unroll factor chosen on the unclustered model, then
records a :class:`~repro.experiments.metrics.LoopRun` per schedule.

Since the compilation-session redesign the runner is a thin client of
:mod:`repro.api`: it expands the sweep into
:class:`~repro.api.CompilationRequest` jobs and hands them to a
:class:`~repro.api.BatchCompiler`, which gives every sweep process-level
parallelism (``SweepConfig.workers``) and on-disk memoisation
(``SweepConfig.cache_dir``) for free.  (The old in-loop reuse of
unrolled/single-use DDGs across cluster counts is gone with the shared
driver; the transforms are <6% of sweep wall-clock — scheduling
dominates — and the cache more than buys it back on reruns.)

Schedules are validated with the independent checker as they are
produced; a reproduction harness that silently accepts broken schedules
would be worthless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..api.batch import BatchCompiler
from ..api.request import CompilationRequest
from ..api.toolchain import Toolchain
from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..ir.loop import Loop
from ..ir.opcodes import DEFAULT_LATENCIES, LatencyModel
from ..machine.cluster import ClusterSpec, PAPER_CLUSTER
from ..machine.machine import clustered_vliw, unclustered_vliw
from ..scheduling.pipeline import CompiledLoop
from .metrics import LoopRun

ProgressFn = Callable[[str], None]


@dataclass
class SweepConfig:
    """Parameters of one experiment sweep."""

    cluster_counts: Sequence[int] = tuple(range(1, 11))
    latencies: LatencyModel = DEFAULT_LATENCIES
    scheduler_config: SchedulerConfig = DEFAULT_CONFIG
    cluster_spec: ClusterSpec = PAPER_CLUSTER
    #: Interconnect of the clustered twin: any registered topology kind
    #: (ring, linear, mesh, torus, crossbar, graph, ...).
    topology: str = "ring"
    #: Optional topology parameters (e.g. ``{"rows": 3, "cols": 3}``);
    #: ``None`` lets each topology pick its default shape per k.
    topology_params: Optional[dict] = None
    validate: bool = True
    #: Process-pool width for the batch compiler (None/1 = serial).
    workers: Optional[int] = None
    #: On-disk compilation cache directory (None = no memoisation).
    cache_dir: Optional[str] = None


def _record(compiled: CompiledLoop, clusters: int) -> LoopRun:
    result = compiled.result
    return LoopRun(
        loop_name=compiled.loop.name,
        vectorizable=compiled.loop.is_vectorizable,
        clusters=clusters,
        useful_fus=result.machine.useful_fus,
        scheduler=result.scheduler,
        unroll=compiled.unroll_factor,
        ii=result.ii,
        mii=result.mii,
        res_mii=result.res_mii,
        rec_mii=result.rec_mii,
        stage_count=result.stage_count,
        kernel_iterations=compiled.kernel_iterations,
        cycles=compiled.cycles,
        useful_instances=compiled.useful_instances,
        n_moves=result.n_moves,
        n_copies=result.n_copies,
        placements=result.stats.placements,
        total_ejections=result.stats.total_ejections,
        strategy1=result.stats.strategy1,
        strategy2=result.stats.strategy2,
        strategy3=result.stats.strategy3,
    )


def sweep_requests(
    loops: Sequence[Loop], sweep: SweepConfig
) -> List[Tuple[int, CompilationRequest]]:
    """Expand a sweep into ``(clusters, request)`` jobs, loop-major.

    Per (loop, k) pair: the unclustered IMS twin first, then the
    clustered machine — always scheduled with DMS, even at one cluster
    where DMS degenerates to IMS (the paper's comparison pairs figure-4
    labels by scheduler, so the k=1 clustered run must stay ``"dms"``).
    Both twins pass ``equivalent_k=k`` so they share one unroll factor.
    """
    jobs: List[Tuple[int, CompilationRequest]] = []
    machines = {
        k: (
            unclustered_vliw(k),
            clustered_vliw(
                k,
                cluster=sweep.cluster_spec,
                topology=sweep.topology,
                topology_params=sweep.topology_params,
            ),
        )
        for k in sweep.cluster_counts
    }
    for loop in loops:
        for k in sweep.cluster_counts:
            unclustered, clustered = machines[k]
            common = dict(
                loop=loop,
                latencies=sweep.latencies,
                config=sweep.scheduler_config,
                equivalent_k=k,
                allocate=False,
                validate=sweep.validate,
            )
            jobs.append((k, CompilationRequest(machine=unclustered, scheduler="ims", **common)))
            jobs.append((k, CompilationRequest(machine=clustered, scheduler="dms", **common)))
    return jobs


def run_sweep(
    loops: Sequence[Loop],
    sweep: Optional[SweepConfig] = None,
    progress: Optional[ProgressFn] = None,
) -> List[LoopRun]:
    """Schedule every loop on every machine pair of the sweep."""
    sweep = sweep or SweepConfig()
    jobs = sweep_requests(loops, sweep)
    compiler = BatchCompiler(
        toolchain=Toolchain.default(),
        cache=sweep.cache_dir,
        workers=sweep.workers,
    )
    per_loop = 2 * len(sweep.cluster_counts)
    reports = compiler.compile_many(
        [request for _k, request in jobs], progress=progress
    )
    runs: List[LoopRun] = []
    for (k, _request), report in zip(jobs, reports):
        runs.append(_record(report.compiled, k))
        if progress is not None and per_loop and len(runs) % (25 * per_loop) == 0:
            progress(f"scheduled {len(runs) // per_loop}/{len(loops)} loops")
    return runs
