"""The machine-sweep runner behind figures 4-6.

For every loop and every cluster count ``k`` the runner schedules the loop
twice — IMS on the unclustered 3k-FU machine and DMS on the k-cluster
machine — sharing one unroll factor chosen on the unclustered model, then
records a :class:`~repro.experiments.metrics.LoopRun` per schedule.

Schedules are validated with the independent checker as they are
produced; a reproduction harness that silently accepts broken schedules
would be worthless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..ir.ddg import DDG
from ..ir.loop import Loop
from ..ir.opcodes import DEFAULT_LATENCIES, LatencyModel
from ..ir.transforms import single_use_ddg, unroll_ddg
from ..machine.cluster import ClusterSpec, PAPER_CLUSTER
from ..machine.machine import clustered_vliw, unclustered_vliw
from ..scheduling.checker import validate_schedule
from ..scheduling.dms import DistributedModuloScheduler
from ..scheduling.ims import IterativeModuloScheduler
from ..scheduling.pipeline import choose_unroll_factor
from ..scheduling.result import ScheduleResult
from .metrics import LoopRun

ProgressFn = Callable[[str], None]


@dataclass
class SweepConfig:
    """Parameters of one experiment sweep."""

    cluster_counts: Sequence[int] = tuple(range(1, 11))
    latencies: LatencyModel = DEFAULT_LATENCIES
    scheduler_config: SchedulerConfig = DEFAULT_CONFIG
    cluster_spec: ClusterSpec = PAPER_CLUSTER
    topology: str = "ring"
    validate: bool = True


def _record(
    loop: Loop,
    result: ScheduleResult,
    clusters: int,
    unroll: int,
    kernel_iterations: int,
) -> LoopRun:
    return LoopRun(
        loop_name=loop.name,
        vectorizable=loop.is_vectorizable,
        clusters=clusters,
        useful_fus=result.machine.useful_fus,
        scheduler=result.scheduler,
        unroll=unroll,
        ii=result.ii,
        mii=result.mii,
        res_mii=result.res_mii,
        rec_mii=result.rec_mii,
        stage_count=result.stage_count,
        kernel_iterations=kernel_iterations,
        cycles=result.cycles(kernel_iterations),
        useful_instances=result.useful_instances(kernel_iterations),
        n_moves=result.n_moves,
        n_copies=result.n_copies,
        placements=result.stats.placements,
        total_ejections=result.stats.total_ejections,
        strategy1=result.stats.strategy1,
        strategy2=result.stats.strategy2,
        strategy3=result.stats.strategy3,
    )


def run_sweep(
    loops: Sequence[Loop],
    sweep: Optional[SweepConfig] = None,
    progress: Optional[ProgressFn] = None,
) -> List[LoopRun]:
    """Schedule every loop on every machine pair of the sweep."""
    sweep = sweep or SweepConfig()
    runs: List[LoopRun] = []
    for loop_index, loop in enumerate(loops):
        unrolled_cache: Dict[int, DDG] = {}
        single_use_cache: Dict[int, DDG] = {}
        for k in sweep.cluster_counts:
            unroll = choose_unroll_factor(
                loop.ddg,
                k,
                latencies=sweep.latencies,
                cap=sweep.scheduler_config.unroll_cap,
            )
            if unroll not in unrolled_cache:
                unrolled_cache[unroll] = unroll_ddg(loop.ddg, unroll)
            base = unrolled_cache[unroll]
            kernel_iterations = -(-loop.trip_count // unroll)

            # The unclustered twin always carries k units per useful kind
            # (the paper pairs k clusters of {1 L/S, 1 Add, 1 Mul} with a
            # monolithic 3k-FU machine; ablation cluster specs only vary
            # the Copy FUs, which the unclustered machine does not have).
            unclustered = unclustered_vliw(k)
            ims = IterativeModuloScheduler(
                unclustered, sweep.latencies, sweep.scheduler_config
            )
            ims_result = ims.schedule(base)
            if sweep.validate:
                validate_schedule(ims_result)
            runs.append(_record(loop, ims_result, k, unroll, kernel_iterations))

            clustered = clustered_vliw(
                k, cluster=sweep.cluster_spec, topology=sweep.topology
            )
            if clustered.is_clustered:
                if unroll not in single_use_cache:
                    single_use_cache[unroll] = single_use_ddg(
                        base, strategy=sweep.scheduler_config.single_use_strategy
                    )
                clustered_ddg = single_use_cache[unroll]
                dms = DistributedModuloScheduler(
                    clustered, sweep.latencies, sweep.scheduler_config
                )
            else:
                # One cluster: DMS degenerates to IMS, no copies needed.
                clustered_ddg = base
                dms = DistributedModuloScheduler(
                    clustered, sweep.latencies, sweep.scheduler_config
                )
            dms_result = dms.schedule(clustered_ddg)
            if sweep.validate:
                validate_schedule(dms_result)
            record = _record(loop, dms_result, k, unroll, kernel_iterations)
            runs.append(record)
        if progress is not None and (loop_index + 1) % 25 == 0:
            progress(f"scheduled {loop_index + 1}/{len(loops)} loops")
    return runs
