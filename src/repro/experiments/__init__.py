"""Experiment harness: the paper's figures regenerated from loop runs."""

from .figures import (
    FigureData,
    backtracking_report,
    figure4,
    figure5,
    figure6,
    moves_report,
    pass_timing_figure,
)
from .metrics import (
    LoopRun,
    aggregate_ipc,
    ii_overhead_fraction,
    mean_ejections_per_placement,
    total_cycles,
)
from .ablations import (
    ABLATIONS,
    chain_policy_ablation,
    copy_fu_ablation,
    restart_ablation,
    single_use_ablation,
    topology_ablation,
)
from .baselines import two_phase_comparison
from .io import dump_runs, load_runs
from .runner import SweepConfig, run_sweep, sweep_requests
from .sensitivity import LATENCY_PROFILES, latency_sensitivity
from .storage import StoragePoint, storage_point, storage_report, storage_sweep

__all__ = [
    "FigureData",
    "backtracking_report",
    "figure4",
    "figure5",
    "figure6",
    "moves_report",
    "pass_timing_figure",
    "LoopRun",
    "aggregate_ipc",
    "ii_overhead_fraction",
    "mean_ejections_per_placement",
    "total_cycles",
    "SweepConfig",
    "run_sweep",
    "sweep_requests",
    "LATENCY_PROFILES",
    "latency_sensitivity",
    "ABLATIONS",
    "chain_policy_ablation",
    "copy_fu_ablation",
    "restart_ablation",
    "single_use_ablation",
    "topology_ablation",
    "two_phase_comparison",
    "dump_runs",
    "load_runs",
    "StoragePoint",
    "storage_point",
    "storage_report",
    "storage_sweep",
]
