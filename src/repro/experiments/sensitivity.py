"""Latency-model sensitivity of the headline result.

The paper does not publish its operation latencies, so the reproduction
assumes an era-typical profile (DESIGN.md section 3).  This experiment
re-runs the figure-4 metric under several plausible profiles and shows
the *shape* conclusion — DMS effective through 8 clusters — does not
hinge on the assumption.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..ir.loop import Loop
from ..ir.opcodes import LatencyModel
from .figures import FigureData
from .metrics import ii_overhead_fraction
from .runner import SweepConfig, run_sweep

#: Alternative latency profiles: name -> model.
LATENCY_PROFILES: Dict[str, LatencyModel] = {
    "default": LatencyModel(),
    "fast_alu_slow_mem": LatencyModel(load=4, store=1, alu=1, mul=3),
    "deep_pipeline": LatencyModel(load=3, store=1, alu=2, mul=5, div=12),
    "unit_latency": LatencyModel(load=1, store=1, alu=1, mul=1, div=1, sqrt=1),
}


def latency_sensitivity(
    loops: Sequence[Loop],
    cluster_counts: Sequence[int] = (2, 4, 8),
    profiles: Dict[str, LatencyModel] = None,
    config: SchedulerConfig = DEFAULT_CONFIG,
    workers: Optional[int] = None,
) -> FigureData:
    """Figure-4 overhead under each latency profile."""
    profiles = profiles or LATENCY_PROFILES
    series: Dict[str, List[float]] = {}
    for name, latencies in profiles.items():
        runs = run_sweep(
            loops,
            SweepConfig(
                cluster_counts=cluster_counts,
                latencies=latencies,
                scheduler_config=config,
                workers=workers,
            ),
        )
        series[name] = [
            100.0 * ii_overhead_fraction(runs, k) for k in cluster_counts
        ]
    return FigureData(
        name="latency_sensitivity",
        title="Latency-profile sensitivity of the II-overhead fraction (%)",
        x_label="clusters",
        x=[float(k) for k in cluster_counts],
        series=series,
        notes=[
            "the paper's latencies are unknown; the reproduction's shape "
            "claims must hold under any plausible profile",
        ],
    )
