"""Process-pool construction with a pinned spawn start method.

Every process pool in this codebase must use the ``spawn`` start
method: the CLI, the daemon and the batch driver all run pools from
processes that already own threads (asyncio loops, metrics writers),
and a forked worker can inherit a held call-queue lock and wedge the
pool forever.  ``spawn`` workers start from a clean interpreter and
re-import work functions by qualified name — which also forces the
discipline the ``pool-safety`` lint rule checks: work functions must be
module-level and their inputs explicit.

Use :func:`spawn_pool` instead of constructing
``ProcessPoolExecutor`` directly; the lint rule flags direct
constructions without an ``mp_context``.

Spawned workers start from a clean interpreter, so process-wide state
armed in the parent — in particular a programmatically installed
:class:`repro.faults.FaultPlan` — would silently vanish in the pool.
:func:`spawn_pool` therefore forwards the parent's active fault plan
through the worker initializer (composing with any caller-supplied
initializer), so a fault-armed daemon's workers crash on schedule too.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Optional, Tuple

from . import faults


def spawn_context() -> multiprocessing.context.SpawnContext:
    """The multiprocessing spawn context (safe under threaded parents)."""
    return multiprocessing.get_context("spawn")


def _arm_then_init(
    spec: str,
    seed: int,
    inner: Optional[Callable[..., Any]],
    inner_args: Tuple[Any, ...],
) -> None:
    """Worker initializer: arm the parent's fault plan, then chain."""
    faults.install_from_spec(spec, seed)
    if inner is not None:
        inner(*inner_args)


def spawn_pool(
    max_workers: int,
    *,
    initializer: Optional[Callable[..., Any]] = None,
    initargs: Tuple[Any, ...] = (),
) -> ProcessPoolExecutor:
    """A ``ProcessPoolExecutor`` pinned to the spawn start method."""
    plan = faults.active()
    if plan is not None and plan.rules:
        initializer, initargs = _arm_then_init, (
            plan.spec,
            plan.seed,
            initializer,
            initargs,
        )
    return ProcessPoolExecutor(
        max_workers=max_workers,
        mp_context=spawn_context(),
        initializer=initializer,
        initargs=initargs,
    )
