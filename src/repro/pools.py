"""Process-pool construction with a pinned spawn start method.

Every process pool in this codebase must use the ``spawn`` start
method: the CLI, the daemon and the batch driver all run pools from
processes that already own threads (asyncio loops, metrics writers),
and a forked worker can inherit a held call-queue lock and wedge the
pool forever.  ``spawn`` workers start from a clean interpreter and
re-import work functions by qualified name — which also forces the
discipline the ``pool-safety`` lint rule checks: work functions must be
module-level and their inputs explicit.

Use :func:`spawn_pool` instead of constructing
``ProcessPoolExecutor`` directly; the lint rule flags direct
constructions without an ``mp_context``.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Optional, Tuple


def spawn_context() -> multiprocessing.context.SpawnContext:
    """The multiprocessing spawn context (safe under threaded parents)."""
    return multiprocessing.get_context("spawn")


def spawn_pool(
    max_workers: int,
    *,
    initializer: Optional[Callable[..., Any]] = None,
    initargs: Tuple[Any, ...] = (),
) -> ProcessPoolExecutor:
    """A ``ProcessPoolExecutor`` pinned to the spawn start method."""
    return ProcessPoolExecutor(
        max_workers=max_workers,
        mp_context=spawn_context(),
        initializer=initializer,
        initargs=initargs,
    )
