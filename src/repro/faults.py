"""Deterministic fault injection: named failure points, seeded schedules.

Every recovery path in the compilation service — pool respawn after a
worker crash, journal replay after a torn write, disk-cache read-repair,
client retry after a connection reset — needs to be *provoked* before it
can be trusted.  This module provides the switchboard: code under test
calls a named fault point (:func:`fire`, :func:`crashpoint`,
:func:`slowpoint`, :func:`damage_cache_entry`) and an armed
:class:`FaultPlan` decides, deterministically, whether that occurrence
fails.  Unarmed (the default), every fault point is a no-op costing one
attribute load and a ``None`` check.

The catalog of points (see :data:`FAULT_POINTS`):

``worker-crash``
    compile worker dies mid-job (``os._exit`` in a real pool worker, a
    :class:`SimulatedWorkerCrash` — a ``BrokenExecutor`` — in thread
    mode), exercising pool respawn, retry budgets and poison quarantine;
``slow-compile``
    the worker sleeps ``delay`` seconds before compiling, widening race
    windows for kill/restart tests;
``corrupt-cache-entry``
    the next disk-cache read finds its entry garbled on disk,
    exercising read-repair;
``conn-reset``
    the daemon aborts the TCP connection instead of writing a response,
    exercising client retry;
``journal-torn-write``
    a journal append stops halfway through the line (a crash mid-write),
    exercising torn-tail truncation on replay;
``worker-vanish``
    a sweep worker claims a chunk and then disappears without ever
    heartbeating or completing it, exercising lease expiry and chunk
    requeue on the coordinator;
``slow-worker``
    a sweep worker sleeps ``delay`` seconds before each job in a chunk
    (a straggler), exercising heartbeat-extended leases and
    lease-steal/duplicate-completion resolution.

Schedules are deterministic: a rule fires on explicit 1-based occurrence
indices (``times=2+5``), on every Nth occurrence (``every=3``), or with
probability ``rate`` drawn from a :class:`random.Random` seeded from
``(seed, point)`` — never the global RNG, so two runs with the same seed
and the same call sequence fire identically.

Arming: :func:`install` a plan programmatically (tests), or set
``REPRO_FAULTS`` (a spec string, see :meth:`FaultPlan.from_spec`) plus
``REPRO_FAULTS_SEED`` in the environment — spawn-context pool workers
inherit the environment, so an env-armed daemon automatically arms its
workers; a programmatically armed daemon passes the serialized spec to
workers through the pool initializer (:func:`install_from_spec`).
"""

from __future__ import annotations

import hashlib
import os
import random
import threading
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .errors import FaultError

#: Every fault point the codebase calls, so a typo'd spec is an error
#: instead of a silently dead rule.
FAULT_POINTS: Tuple[str, ...] = (
    "worker-crash",
    "slow-compile",
    "corrupt-cache-entry",
    "conn-reset",
    "journal-torn-write",
    "worker-vanish",
    "slow-worker",
)

#: Exit status a crashed pool worker dies with (BSD's EX_SOFTWARE).
WORKER_CRASH_EXIT = 70

#: Environment switchboard.
ENV_SPEC = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULTS_SEED"


class SimulatedWorkerCrash(BrokenExecutor):
    """A worker crash injected in thread-executor mode.

    Deriving from ``BrokenExecutor`` makes the daemon's supervision path
    indistinguishable from a real pool collapse, without killing the
    test process the thread pool lives in.
    """


@dataclass(frozen=True)
class FaultRule:
    """When one fault point fires.

    ``times`` (1-based occurrence indices) and ``every`` are exact;
    ``rate`` is probabilistic but seeded.  ``limit`` caps total fires
    (0 = unlimited); ``delay`` parameterizes ``slow-compile``.
    """

    point: str
    times: Tuple[int, ...] = ()
    every: int = 0
    rate: float = 0.0
    delay: float = 0.0
    limit: int = 0

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise FaultError(
                f"unknown fault point {self.point!r}; "
                f"catalog: {', '.join(FAULT_POINTS)}"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise FaultError(f"{self.point}: rate must be in [0, 1], got {self.rate}")
        if self.every < 0 or self.limit < 0 or self.delay < 0:
            raise FaultError(f"{self.point}: every/limit/delay must be >= 0")
        if any(t < 1 for t in self.times):
            raise FaultError(f"{self.point}: occurrence indices are 1-based")


def _point_seed(seed: int, point: str) -> int:
    """A stable per-point sub-seed (sha256, not the salted ``hash()``)."""
    digest = hashlib.sha256(f"{seed}:{point}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class FaultPlan:
    """An armed set of fault rules with deterministic firing state."""

    def __init__(self, rules: Tuple[FaultRule, ...] = (), seed: int = 0):
        by_point: Dict[str, FaultRule] = {}
        for rule in rules:
            if rule.point in by_point:
                raise FaultError(f"duplicate rule for fault point {rule.point!r}")
            by_point[rule.point] = rule
        self.rules = by_point
        self.seed = int(seed)
        self.spec = plan_spec(tuple(by_point.values()))
        self._lock = threading.Lock()
        self._occurrences: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {
            point: random.Random(_point_seed(self.seed, point))
            for point in by_point
        }

    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a plan from its spec string.

        Grammar: ``;``-separated clauses, each
        ``point[:key=value[:key=value...]]`` with keys ``times`` (1-based
        indices joined by ``+``), ``every``, ``rate``, ``delay`` and
        ``limit``::

            worker-crash:times=3;slow-compile:rate=0.25:delay=0.05
        """
        rules = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            parts = clause.split(":")
            point, options = parts[0].strip(), parts[1:]
            kwargs: Dict[str, object] = {}
            for option in options:
                key, sep, value = option.partition("=")
                key = key.strip()
                if not sep or key not in ("times", "every", "rate", "delay", "limit"):
                    raise FaultError(
                        f"bad fault option {option!r} in clause {clause!r}; "
                        "keys: times=<i+j+...>, every=<n>, rate=<p>, "
                        "delay=<s>, limit=<n>"
                    )
                try:
                    if key == "times":
                        kwargs[key] = tuple(
                            int(part) for part in value.split("+") if part
                        )
                    elif key in ("every", "limit"):
                        kwargs[key] = int(value)
                    else:
                        kwargs[key] = float(value)
                except ValueError:
                    raise FaultError(
                        f"bad value {value!r} for {key!r} in clause {clause!r}"
                    )
            rules.append(FaultRule(point=point, **kwargs))  # type: ignore[arg-type]
        return cls(tuple(rules), seed=seed)

    # ------------------------------------------------------------------

    def should_fire(self, point: str) -> bool:
        """Record one occurrence of *point* and decide whether it fails."""
        rule = self.rules.get(point)
        with self._lock:
            n = self._occurrences.get(point, 0) + 1
            self._occurrences[point] = n
            if rule is None:
                return False
            if rule.limit and self._fired.get(point, 0) >= rule.limit:
                return False
            fire = False
            if rule.times and n in rule.times:
                fire = True
            elif rule.every and n % rule.every == 0:
                fire = True
            elif rule.rate and self._rngs[point].random() < rule.rate:
                fire = True
            if fire:
                self._fired[point] = self._fired.get(point, 0) + 1
            return fire

    def delay_for(self, point: str) -> float:
        rule = self.rules.get(point)
        return rule.delay if rule is not None else 0.0

    def counters(self) -> Dict[str, object]:
        """Armed points + occurrence/fire counts (for ``/metrics``)."""
        with self._lock:
            return {
                "armed": sorted(self.rules),
                "seed": self.seed,
                "spec": self.spec,
                "occurrences": dict(sorted(self._occurrences.items())),
                "fired": dict(sorted(self._fired.items())),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultPlan {self.spec!r} seed={self.seed}>"


def plan_spec(rules: Tuple[FaultRule, ...]) -> str:
    """The canonical spec string for *rules* (inverse of ``from_spec``)."""
    clauses = []
    for rule in rules:
        clause = rule.point
        if rule.times:
            clause += ":times=" + "+".join(str(t) for t in rule.times)
        if rule.every:
            clause += f":every={rule.every}"
        if rule.rate:
            clause += f":rate={rule.rate:g}"
        if rule.delay:
            clause += f":delay={rule.delay:g}"
        if rule.limit:
            clause += f":limit={rule.limit}"
        clauses.append(clause)
    return ";".join(clauses)


# ----------------------------------------------------------------------
# Process-wide arming
# ----------------------------------------------------------------------

_active: Optional[FaultPlan] = None
_env_checked = False
_arm_lock = threading.Lock()


def install(plan: Optional[FaultPlan]) -> None:
    """Arm *plan* process-wide (``None`` disarms)."""
    global _active, _env_checked
    with _arm_lock:
        _active = plan
        _env_checked = True


def install_from_spec(spec: str, seed: int = 0) -> None:
    """Arm from a spec string (picklable pool-worker initializer)."""
    install(FaultPlan.from_spec(spec, seed=seed))


def disarm() -> None:
    """Disarm and forget any env arming (tests call this in teardown)."""
    global _active, _env_checked
    with _arm_lock:
        _active = None
        _env_checked = True


def reset() -> None:
    """Disarm and re-enable lazy env arming (fresh-process semantics)."""
    global _active, _env_checked
    with _arm_lock:
        _active = None
        _env_checked = False


def active() -> Optional[FaultPlan]:
    """The armed plan, lazily reading ``REPRO_FAULTS`` once per process."""
    global _active, _env_checked
    if _active is None and not _env_checked:
        with _arm_lock:
            if _active is None and not _env_checked:
                _env_checked = True
                spec = os.environ.get(ENV_SPEC)
                if spec:
                    try:
                        seed = int(os.environ.get(ENV_SEED, "0"))
                    except ValueError:
                        raise FaultError(
                            f"{ENV_SEED} must be an integer, "
                            f"got {os.environ.get(ENV_SEED)!r}"
                        )
                    _active = FaultPlan.from_spec(spec, seed=seed)
    return _active


# ----------------------------------------------------------------------
# Fault points (call sites use these; all no-ops when unarmed)
# ----------------------------------------------------------------------


def fire(point: str) -> bool:
    """One occurrence of *point*: ``True`` means the caller must fail."""
    plan = active()
    return plan is not None and plan.should_fire(point)


def crashpoint(point: str = "worker-crash") -> None:
    """Die here when armed.

    In a real (spawned) pool worker the process hard-exits, so the
    parent observes a genuine ``BrokenProcessPool``.  In the parent
    process (thread-executor test mode) it raises
    :class:`SimulatedWorkerCrash` instead, which is a
    ``BrokenExecutor`` and takes the identical recovery path.
    """
    if not fire(point):
        return
    import multiprocessing

    if multiprocessing.parent_process() is not None:
        os._exit(WORKER_CRASH_EXIT)
    raise SimulatedWorkerCrash(
        f"fault injection: simulated worker crash at {point!r}"
    )


def slowpoint(point: str = "slow-compile") -> None:
    """Sleep the rule's ``delay`` when armed (widens race windows)."""
    plan = active()
    if plan is not None and plan.should_fire(point):
        delay = plan.delay_for(point)
        if delay > 0:
            time.sleep(delay)


def damage_cache_entry(path: object) -> None:
    """Garble the cache entry at *path* on disk when armed.

    The corruption is real — the normal read path then trips over it —
    so read-repair is exercised end to end, not around a mock.
    """
    if not fire("corrupt-cache-entry"):
        return
    try:
        with open(path, "r+b") as handle:
            handle.seek(0)
            handle.write(b"\x00repro-fault-injection: corrupt entry\x00")
    except FileNotFoundError:
        pass  # nothing to corrupt: the read will miss anyway


def torn_write_size(line_length: int) -> Optional[int]:
    """Bytes of the next journal line to actually write, when armed.

    ``None`` means write the whole line; an int means simulate a crash
    mid-append by persisting only that prefix (no trailing newline).
    """
    if not fire("journal-torn-write"):
        return None
    return max(1, line_length // 2)
