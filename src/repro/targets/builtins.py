"""Builtin named targets and the target registry.

``get_target("paper-ring-4")`` answers the names used throughout the
paper reproduction; :func:`resolve_target` additionally accepts a path to
a ``.toml``/``.json`` machine file, so every ``--target`` flag and every
``CompilationRequest(machine="...")`` accepts either form.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple, Union

from ..errors import TargetError
from ..ir.opcodes import LatencyModel
from ..machine.cluster import ClusterSpec, PAPER_CLUSTER
from .files import TARGET_SUFFIXES, load_target
from .spec import TargetSpec

#: name -> spec.  Populated below; extended by :func:`register_target`.
TARGET_REGISTRY: Dict[str, TargetSpec] = {}


def register_target(target: TargetSpec, *, replace: bool = False) -> TargetSpec:
    """Register *target* under its name for ``get_target`` lookups."""
    if not isinstance(target, TargetSpec):
        raise TargetError(
            f"register_target needs a TargetSpec, got {type(target).__name__}"
        )
    if target.name in TARGET_REGISTRY and not replace:
        raise TargetError(
            f"target {target.name!r} is already registered "
            "(pass replace=True to override)"
        )
    TARGET_REGISTRY[target.name] = target
    return target


def target_names() -> Tuple[str, ...]:
    """All registered target names, sorted."""
    return tuple(sorted(TARGET_REGISTRY))


def get_target(name: str) -> TargetSpec:
    """The registered target called *name*."""
    try:
        return TARGET_REGISTRY[name]
    except KeyError:
        raise TargetError(
            f"unknown target {name!r}; registered: {', '.join(target_names())}"
        ) from None


def resolve_target(ref: Union[str, os.PathLike]) -> TargetSpec:
    """Resolve *ref* — a registered target name or a machine-file path."""
    text = os.fspath(ref)
    if text.lower().endswith(TARGET_SUFFIXES) or os.sep in text:
        return load_target(text)
    return get_target(text)


# ----------------------------------------------------------------------
# Builtins
# ----------------------------------------------------------------------


def _paper(name: str, k: int, kind: str, description: str, **params) -> TargetSpec:
    return TargetSpec(
        name=name,
        clusters=(PAPER_CLUSTER,) * k,
        topology_kind=kind,
        topology_params=params,
        description=description,
    )


for _k in (2, 4, 8):
    register_target(
        _paper(
            f"paper-ring-{_k}",
            _k,
            "ring",
            f"the paper's machine: {_k} clusters of "
            "{1 L/S, 1 Add, 1 Mul, 1 Copy} on a bi-directional ring",
        )
    )

register_target(
    _paper(
        "paper-linear-4",
        4,
        "linear",
        "topology-ablation variant: 4 paper clusters on a linear array",
    )
)

register_target(
    _paper(
        "mesh-3x3",
        9,
        "mesh",
        "CGRA-style 3x3 mesh of paper clusters",
        rows=3,
        cols=3,
    )
)

register_target(
    _paper(
        "torus-3x3",
        9,
        "torus",
        "3x3 torus (mesh with wraparound on both axes)",
        rows=3,
        cols=3,
    )
)

register_target(
    _paper(
        "crossbar-8",
        8,
        "crossbar",
        "8 paper clusters behind a full crossbar (no communication "
        "conflicts possible)",
    )
)

#: A heterogeneous target: specialised clusters and a slow-memory latency
#: profile, exercising the per-cluster FU mixes and per-target latencies
#: target files make first-class.
register_target(
    TargetSpec(
        name="hetero-4",
        clusters=(
            ClusterSpec(mem=2, alu=1, mul=0, copy=1),  # load/store cluster
            ClusterSpec(mem=1, alu=2, mul=1, copy=1),  # ALU-heavy cluster
            ClusterSpec(mem=0, alu=1, mul=2, copy=1),  # multiplier cluster
            PAPER_CLUSTER,
        ),
        topology_kind="ring",
        latencies=LatencyModel(load=4, mul=4),
        description=(
            "heterogeneous ring: mem/alu/mul-specialised clusters with a "
            "slow-memory latency profile"
        ),
    )
)
