"""Declarative target descriptions: machine + latency model, serialisable.

A :class:`TargetSpec` is a :class:`~repro.machine.machine.MachineSpec`
extended with everything a retargetable toolchain needs to know about one
concrete machine:

* heterogeneous per-cluster FU mixes (the base spec already carries one
  :class:`~repro.machine.cluster.ClusterSpec` per cluster — target files
  make mixed clusters first-class instead of a constructor trick);
* a per-target :class:`~repro.ir.opcodes.LatencyModel`, so a target is
  self-contained instead of relying on the process-global default table;
* a free-form description for listings.

``to_dict``/``from_dict`` round-trip losslessly
(``from_dict(to_dict(t)) == t``) through the plain-data schema used by
the TOML/JSON target files in :mod:`repro.targets.files`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from ..errors import TargetError
from ..ir.opcodes import DEFAULT_LATENCIES, LatencyModel
from ..machine.cluster import ClusterSpec
from ..machine.cqrf import QueueFileSpec
from ..machine.machine import MachineSpec

#: The latency fields of :class:`LatencyModel`, in declaration order.
#: Derived, not hand-listed: this tuple feeds target serialisation *and*
#: the batch-cache content hash, so it must never lag the model.
LATENCY_FIELDS = tuple(
    f.name for f in dataclasses.fields(LatencyModel) if f.init
)


@dataclass(frozen=True)
class TargetSpec(MachineSpec):
    """A fully self-described compilation target.

    Everywhere a :class:`MachineSpec` is accepted — ``CompilationRequest``,
    schedulers, the checker — a ``TargetSpec`` drops in unchanged; the
    extra fields feed serialisation and the session API (a request built
    from a target adopts the target's latency model).
    """

    latencies: LatencyModel = field(default_factory=lambda: DEFAULT_LATENCIES)
    description: str = ""

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data description; inverse of :func:`target_from_dict`."""
        data: Dict[str, object] = {
            "name": self.name,
            "topology": {
                "kind": self.topology_kind,
                "params": {
                    key: _plain(value) for key, value in self.topology_params
                },
            },
            "cqrf": _queue_dict(self.cqrf),
            "clusters": _cluster_dicts(self.clusters),
            "latencies": {
                name: getattr(self.latencies, name) for name in LATENCY_FIELDS
            },
        }
        if self.description:
            data["description"] = self.description
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TargetSpec":
        """Build a target from plain data, validating the schema."""
        return target_from_dict(data)


# ----------------------------------------------------------------------
# dict <-> spec
# ----------------------------------------------------------------------


def _plain(value: object) -> object:
    """Tuples -> lists, recursively (JSON/TOML-friendly)."""
    if isinstance(value, tuple):
        return [_plain(v) for v in value]
    return value


def _queue_dict(spec: QueueFileSpec) -> Dict[str, int]:
    data = {"n_queues": spec.n_queues, "queue_depth": spec.queue_depth}
    if spec.write_ports:
        data["write_ports"] = spec.write_ports
    return data


def _cluster_dicts(clusters: Tuple[ClusterSpec, ...]) -> List[Dict[str, object]]:
    """Run-length-encode identical consecutive clusters via ``count``."""
    out: List[Dict[str, object]] = []
    for cluster in clusters:
        entry = {
            "mem": cluster.mem,
            "alu": cluster.alu,
            "mul": cluster.mul,
            "copy": cluster.copy,
            "count": 1,
            "lrf": _queue_dict(cluster.lrf),
        }
        if out and all(
            out[-1][key] == entry[key] for key in entry if key != "count"
        ):
            out[-1]["count"] += 1
        else:
            out.append(entry)
    return out


#: Fallbacks for omitted machine-file keys: the constructor defaults.
_DEFAULT_CLUSTER = ClusterSpec()


def _require_mapping(data: object, where: str) -> Mapping[str, object]:
    if not isinstance(data, Mapping):
        raise TargetError(f"{where} must be a table/object, got {type(data).__name__}")
    return data


def _check_keys(data: Mapping[str, object], allowed: Tuple[str, ...], where: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise TargetError(
            f"unknown key(s) {unknown} in {where}; allowed: {sorted(allowed)}"
        )


def _queue_from(data: object, where: str) -> QueueFileSpec:
    data = _require_mapping(data, where)
    _check_keys(data, ("n_queues", "queue_depth", "write_ports"), where)
    defaults = QueueFileSpec()
    try:
        return QueueFileSpec(
            n_queues=int(data.get("n_queues", defaults.n_queues)),
            queue_depth=int(data.get("queue_depth", defaults.queue_depth)),
            write_ports=int(data.get("write_ports", defaults.write_ports)),
        )
    except (TypeError, ValueError) as err:
        raise TargetError(f"invalid {where}: {err}") from err


def _clusters_from(entries: object) -> Tuple[ClusterSpec, ...]:
    if not isinstance(entries, (list, tuple)) or not entries:
        raise TargetError("'clusters' must be a non-empty array of tables")
    clusters: List[ClusterSpec] = []
    for position, raw in enumerate(entries):
        where = f"clusters[{position}]"
        entry = _require_mapping(raw, where)
        _check_keys(entry, ("mem", "alu", "mul", "copy", "count", "lrf"), where)
        count = int(entry.get("count", 1))
        if count < 1:
            raise TargetError(f"{where}: count must be >= 1, got {count}")
        try:
            spec = ClusterSpec(
                **{
                    name: int(entry.get(name, getattr(_DEFAULT_CLUSTER, name)))
                    for name in ("mem", "alu", "mul", "copy")
                },
                lrf=_queue_from(entry.get("lrf", {}), f"{where}.lrf"),
            )
        except (TypeError, ValueError) as err:
            raise TargetError(f"invalid {where}: {err}") from err
        clusters.extend([spec] * count)
    return tuple(clusters)


def _latencies_from(data: object) -> LatencyModel:
    data = _require_mapping(data, "latencies")
    _check_keys(data, LATENCY_FIELDS, "latencies")
    defaults = {name: getattr(DEFAULT_LATENCIES, name) for name in LATENCY_FIELDS}
    try:
        defaults.update({key: int(value) for key, value in data.items()})
        return LatencyModel(**defaults)
    except (TypeError, ValueError) as err:
        raise TargetError(f"invalid latencies: {err}") from err


def target_from_dict(data: Mapping[str, object]) -> TargetSpec:
    """Build and validate a :class:`TargetSpec` from plain data.

    Raises :class:`~repro.errors.TargetError` on any schema violation —
    unknown keys, missing required fields, untileable topology shapes,
    non-positive latencies — so a broken target file fails loudly at load
    time, not mid-compilation.
    """
    from ..errors import MachineError

    data = _require_mapping(data, "target")
    _check_keys(
        data,
        ("name", "description", "topology", "cqrf", "clusters", "latencies"),
        "target",
    )
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise TargetError("target needs a non-empty string 'name'")
    topo = _require_mapping(data.get("topology", {"kind": "ring"}), "topology")
    _check_keys(topo, ("kind", "params"), "topology")
    kind = topo.get("kind", "ring")
    if not isinstance(kind, str):
        raise TargetError(f"topology kind must be a string, got {kind!r}")
    params = _require_mapping(topo.get("params", {}), "topology.params")
    description = data.get("description", "")
    if not isinstance(description, str):
        raise TargetError("target 'description' must be a string")
    try:
        return TargetSpec(
            name=name,
            clusters=_clusters_from(data.get("clusters")),
            cqrf=_queue_from(data.get("cqrf", {}), "cqrf"),
            topology_kind=kind,
            topology_params=dict(params),
            latencies=_latencies_from(data.get("latencies", {})),
            description=description,
        )
    except MachineError as err:
        raise TargetError(f"invalid target {name!r}: {err}") from err


def machine_as_target(
    machine: MachineSpec,
    latencies: LatencyModel = DEFAULT_LATENCIES,
    description: str = "",
) -> TargetSpec:
    """Lift a plain :class:`MachineSpec` into a serialisable target."""
    if isinstance(machine, TargetSpec):
        return machine
    fields = {f.name: getattr(machine, f.name) for f in dataclasses.fields(machine)}
    return TargetSpec(latencies=latencies, description=description, **fields)
