"""Declarative target descriptions: specs, machine files and the registry.

The target subsystem turns the machine model into data: a
:class:`TargetSpec` bundles clusters, interconnect topology and latency
model; machine files serialise it to TOML/JSON; the registry names the
builtin configurations (``paper-ring-4``, ``mesh-3x3``, ``crossbar-8``,
...) every CLI ``--target`` flag and ``CompilationRequest(machine="...")``
string resolves through.
"""

from .builtins import (
    TARGET_REGISTRY,
    get_target,
    register_target,
    resolve_target,
    target_names,
)
from .files import (
    dumps_toml,
    load_target,
    loads_target,
    save_target,
    target_to_toml,
)
from .spec import TargetSpec, machine_as_target, target_from_dict

__all__ = [
    "TARGET_REGISTRY",
    "get_target",
    "register_target",
    "resolve_target",
    "target_names",
    "dumps_toml",
    "load_target",
    "loads_target",
    "save_target",
    "target_to_toml",
    "TargetSpec",
    "machine_as_target",
    "target_from_dict",
]
