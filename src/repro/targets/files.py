"""Target files: TOML/JSON serialisation of :class:`TargetSpec`.

A machine file is the plain-data schema of
:func:`~repro.targets.spec.target_from_dict` written as TOML (preferred,
human-authored) or JSON (machine-generated)::

    name = "mesh-3x3"
    description = "3x3 mesh of paper clusters"

    [topology]
    kind = "mesh"

    [topology.params]
    rows = 3
    cols = 3

    [latencies]
    load = 2

    [[clusters]]
    mem = 1
    alu = 1
    mul = 1
    copy = 1
    count = 9

Loading goes through the stdlib ``tomllib``/``json`` parsers; writing
uses a small emitter restricted to the schema's value types (ints,
strings, lists, nested tables, arrays of tables), so no third-party TOML
writer is needed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Union

from ..errors import TargetError
from .spec import TargetSpec, target_from_dict

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python 3.10 fallback
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ModuleNotFoundError:
        tomllib = None  # type: ignore[assignment]

#: File suffixes understood by :func:`load_target` / :func:`save_target`.
TARGET_SUFFIXES = (".toml", ".json")


# ----------------------------------------------------------------------
# TOML emission (schema-restricted)
# ----------------------------------------------------------------------


def _toml_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return json.dumps(value)  # TOML basic strings are JSON-compatible
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise TargetError(f"cannot emit {value!r} ({type(value).__name__}) as TOML")


def _emit_table(data: Mapping[str, object], prefix: str, lines: List[str]) -> None:
    scalars = {
        k: v
        for k, v in data.items()
        if not isinstance(v, Mapping)
        and not (isinstance(v, list) and v and isinstance(v[0], Mapping))
    }
    for key, value in scalars.items():
        lines.append(f"{key} = {_toml_value(value)}")
    for key, value in data.items():
        if isinstance(value, Mapping):
            if not value:
                continue  # empty tables carry no information
            lines.append("")
            lines.append(f"[{prefix}{key}]")
            _emit_table(value, f"{prefix}{key}.", lines)
    for key, value in data.items():
        if isinstance(value, list) and value and isinstance(value[0], Mapping):
            for item in value:
                lines.append("")
                lines.append(f"[[{prefix}{key}]]")
                _emit_table(item, f"{prefix}{key}.", lines)


def dumps_toml(data: Mapping[str, object]) -> str:
    """Serialise a target dict as TOML text."""
    lines: List[str] = []
    _emit_table(data, "", lines)
    return "\n".join(lines) + "\n"


def target_to_toml(target: TargetSpec) -> str:
    """The TOML machine-file text for *target*."""
    return dumps_toml(target.to_dict())


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------


def loads_target(text: str, format: str = "toml") -> TargetSpec:
    """Parse machine-file *text* (``"toml"`` or ``"json"``)."""
    if format == "toml":
        if tomllib is None:  # pragma: no cover - Python 3.10 without tomli
            raise TargetError(
                "TOML target files need Python >= 3.11 (tomllib) or the "
                "'tomli' package; use a .json target file instead"
            )
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as err:
            raise TargetError(f"invalid TOML target file: {err}") from err
    elif format == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise TargetError(f"invalid JSON target file: {err}") from err
    else:
        raise TargetError(
            f"unknown target file format {format!r}; supported: toml, json"
        )
    return target_from_dict(data)


def load_target(path: Union[str, os.PathLike]) -> TargetSpec:
    """Load a target from a ``.toml`` or ``.json`` machine file."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix not in TARGET_SUFFIXES:
        raise TargetError(
            f"target file {path} has unsupported suffix {suffix!r}; "
            f"expected one of {TARGET_SUFFIXES}"
        )
    try:
        text = path.read_text()
    except OSError as err:
        raise TargetError(f"cannot read target file {path}: {err}") from err
    return loads_target(text, format=suffix.lstrip("."))


def save_target(target: TargetSpec, path: Union[str, os.PathLike]) -> None:
    """Write *target* as a machine file (format chosen by suffix)."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".toml":
        text = target_to_toml(target)
    elif suffix == ".json":
        text = json.dumps(target.to_dict(), indent=2, sort_keys=True) + "\n"
    else:
        raise TargetError(
            f"target file {path} has unsupported suffix {suffix!r}; "
            f"expected one of {TARGET_SUFFIXES}"
        )
    path.write_text(text)
