"""ASCII Gantt rendering of a modulo schedule's kernel.

One line per functional unit, one column per MRT row; cells show the
operation id occupying the unit at that row (``.`` = idle).  This is the
picture compiler writers draw on whiteboards when debugging modulo
schedules, and the quickest way to *see* cluster balance and Copy-FU
pressure.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.opcodes import FUKind
from ..machine.fu import FUSlot
from ..scheduling.result import ScheduleResult

_KIND_ORDER = (FUKind.MEM, FUKind.ALU, FUKind.MUL, FUKind.COPY)


def kernel_gantt(result: ScheduleResult, cell_width: int = 5) -> str:
    """Render the kernel as an FU x row occupancy chart."""
    ii = result.ii
    machine = result.machine
    # (cluster, kind, row) -> ordered op ids, mirroring codegen binding.
    cells: Dict[Tuple[int, FUKind, int], List[int]] = {}
    for op_id, placement in sorted(result.placements.items()):
        op = result.ddg.op(op_id)
        key = (placement.cluster, op.fu_kind, placement.time % ii)
        cells.setdefault(key, []).append(op_id)

    lines: List[str] = []
    header = " " * 10 + "".join(f"{f'r{r}':>{cell_width}}" for r in range(ii))
    lines.append(f"kernel of {result.loop_name!r}: II={ii} "
                 f"SC={result.stage_count}")
    lines.append(header)
    for cluster in range(machine.n_clusters):
        for kind in _KIND_ORDER:
            capacity = machine.fu_in_cluster(cluster, kind)
            for index in range(capacity):
                slot = FUSlot(cluster, kind, index)
                row_cells = []
                for row in range(ii):
                    occupants = cells.get((cluster, kind, row), [])
                    if index < len(occupants):
                        row_cells.append(f"{f'v{occupants[index]}':>{cell_width}}")
                    else:
                        row_cells.append(f"{'.':>{cell_width}}")
                lines.append(f"{str(slot):<10}" + "".join(row_cells))
        if cluster < machine.n_clusters - 1:
            lines.append("")
    return "\n".join(lines)


def utilization_summary(result: ScheduleResult) -> str:
    """Per-kind issue-slot utilisation across the kernel."""
    ii = result.ii
    machine = result.machine
    used: Dict[FUKind, int] = {kind: 0 for kind in _KIND_ORDER}
    for op_id, _placement in result.placements.items():
        used[result.ddg.op(op_id).fu_kind] += 1
    parts = []
    for kind in _KIND_ORDER:
        capacity = machine.fu_count(kind) * ii
        if capacity == 0:
            continue
        parts.append(f"{kind.value} {100.0 * used[kind] / capacity:.0f}%")
    return "utilization: " + ", ".join(parts)
