"""VLIW code generation from modulo schedules."""

from .assembly import assembly_for, render_program
from .gantt import kernel_gantt, utilization_summary
from .kernel import CycleIssue, SlotBinding, VLIWProgram, build_program

__all__ = [
    "assembly_for",
    "render_program",
    "CycleIssue",
    "SlotBinding",
    "VLIWProgram",
    "build_program",
    "kernel_gantt",
    "utilization_summary",
]
