"""VLIW program construction from a modulo schedule.

A modulo schedule with initiation interval II and stage count SC executes
as:

* **prologue** — cycles ``0 .. (SC-1)*II - 1``: the pipeline fills, one new
  iteration entering every II cycles;
* **kernel** — II instruction words issued repeatedly; the word at row
  ``r`` holds every operation with ``time % II == r``, each annotated with
  its stage ``time // II`` (the iteration offset it belongs to);
* **epilogue** — ``(SC-1)*II`` cycles draining the last SC-1 iterations.

Functional-unit instances are bound per (cluster, kind, row) in op-id
order; the schedule checker has already guaranteed capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import CodegenError
from ..ir.opcodes import FUKind
from ..machine.fu import FUSlot
from ..registers.queues import QueueAllocation
from ..scheduling.result import ScheduleResult


@dataclass(frozen=True)
class SlotBinding:
    """One operation bound to a functional unit in the kernel."""

    op_id: int
    opcode: str
    fu: FUSlot
    row: int
    stage: int
    operands: Tuple[str, ...] = ()

    def render(self) -> str:
        args = ", ".join(self.operands)
        return f"{self.fu}: v{self.op_id} = {self.opcode}({args}) .s{self.stage}"


@dataclass(frozen=True)
class CycleIssue:
    """Operations issued in one ramp (prologue/epilogue) cycle."""

    cycle: int
    bindings: Tuple[SlotBinding, ...]


@dataclass
class VLIWProgram:
    """Complete pipelined program for one loop.

    ``ramp_iterations`` records how many iterations the prologue/epilogue
    listings were generated for (``min(stage_count, requested)``); the
    execution oracle replays the program for any run depth by reusing the
    steady-state ramp pattern, but the listings themselves are exact only
    for a run of that many iterations.
    """

    loop_name: str
    machine_name: str
    ii: int
    stage_count: int
    kernel: List[List[SlotBinding]]  # one list per row 0..II-1
    prologue: List[CycleIssue] = field(default_factory=list)
    epilogue: List[CycleIssue] = field(default_factory=list)
    ramp_iterations: int = 0

    @property
    def kernel_ops(self) -> int:
        return sum(len(row) for row in self.kernel)

    @property
    def prologue_cycles(self) -> int:
        return min(self.stage_count - 1, self.ramp_iterations or self.stage_count) * self.ii

    def row(self, index: int) -> List[SlotBinding]:
        if not 0 <= index < self.ii:
            raise CodegenError(f"kernel row {index} out of range [0, {self.ii})")
        return self.kernel[index]


def _operand_labels(
    result: ScheduleResult,
    op_id: int,
    allocation: Optional[QueueAllocation],
) -> Tuple[str, ...]:
    lookup = allocation.by_lifetime() if allocation is not None else {}
    op = result.ddg.op(op_id)
    labels = []
    for index, src in enumerate(op.srcs):
        if src.is_external:
            labels.append(src.symbol)
            continue
        base = f"v{src.producer}"
        if src.omega:
            base += f"@-{src.omega}"
        assignment = lookup.get((src.producer, op_id, index))
        if assignment is not None:
            base += f"<{assignment.label}>"
        labels.append(base)
    return tuple(labels)


def build_program(
    result: ScheduleResult,
    allocation: Optional[QueueAllocation] = None,
    ramp_iterations: Optional[int] = None,
) -> VLIWProgram:
    """Build the VLIW program (kernel + ramp listings) for *result*.

    ``ramp_iterations`` bounds how many iterations the prologue/epilogue
    listings assume; by default the full stage count is used.
    """
    ii = result.ii
    stage_count = result.stage_count
    # Bind FU instances: per (cluster, kind, row), op-id order.
    cell_ops: Dict[Tuple[int, FUKind, int], List[int]] = {}
    for op_id, placement in sorted(result.placements.items()):
        op = result.ddg.op(op_id)
        cell = (placement.cluster, op.fu_kind, placement.time % ii)
        cell_ops.setdefault(cell, []).append(op_id)

    bindings: Dict[int, SlotBinding] = {}
    for (cluster, kind, row), op_ids in cell_ops.items():
        capacity = result.machine.fu_in_cluster(cluster, kind)
        if len(op_ids) > capacity:
            raise CodegenError(
                f"row {row} cluster {cluster} {kind.value}: "
                f"{len(op_ids)} ops for {capacity} units"
            )
        for fu_index, op_id in enumerate(op_ids):
            placement = result.placements[op_id]
            bindings[op_id] = SlotBinding(
                op_id=op_id,
                opcode=result.ddg.op(op_id).opcode.value,
                fu=FUSlot(cluster, kind, fu_index),
                row=row,
                stage=placement.time // ii,
                operands=_operand_labels(result, op_id, allocation),
            )

    kernel: List[List[SlotBinding]] = [[] for _ in range(ii)]
    for binding in bindings.values():
        kernel[binding.row].append(binding)
    for row in kernel:
        row.sort(key=lambda b: b.fu.sort_key)

    if ramp_iterations is not None and ramp_iterations < 1:
        raise CodegenError(
            f"ramp_iterations must be >= 1, got {ramp_iterations}"
        )
    ramp = stage_count if ramp_iterations is None else min(stage_count, ramp_iterations)
    # For a run of n iterations the fill phase ends where the drain phase
    # begins: at cycle min(SC - 1, n) * II.  Spanning the full
    # (SC - 1) * II prologue when n < SC - 1 would re-list issues the
    # drain phase (which starts at n * II) also covers — the short-run
    # double-issue bug the execution oracle flushed out.
    prologue = _ramp_cycles(
        result, bindings, range(min(stage_count - 1, ramp) * ii), 0, ramp
    )
    epilogue = _drain_cycles(result, bindings, ramp)
    return VLIWProgram(
        loop_name=result.loop_name,
        machine_name=result.machine.name,
        ii=ii,
        stage_count=stage_count,
        kernel=kernel,
        prologue=prologue,
        epilogue=epilogue,
        ramp_iterations=ramp,
    )


def _ramp_cycles(
    result: ScheduleResult,
    bindings: Dict[int, SlotBinding],
    cycles: range,
    first_iteration: int,
    iterations: int,
) -> List[CycleIssue]:
    """Issue listing for the fill phase."""
    issues: List[CycleIssue] = []
    for cycle in cycles:
        row: List[SlotBinding] = []
        for op_id, placement in sorted(result.placements.items()):
            for iteration in range(first_iteration, iterations):
                if placement.time + iteration * result.ii == cycle:
                    row.append(bindings[op_id])
        if row:
            issues.append(CycleIssue(cycle, tuple(row)))
    return issues


def _drain_cycles(
    result: ScheduleResult,
    bindings: Dict[int, SlotBinding],
    iterations: int,
) -> List[CycleIssue]:
    """Issue listing for the drain phase of an *iterations*-deep run."""
    ii = result.ii
    start = iterations * ii
    end = (iterations + result.stage_count - 1) * ii
    issues: List[CycleIssue] = []
    for cycle in range(start, end):
        row: List[SlotBinding] = []
        for op_id, placement in sorted(result.placements.items()):
            for iteration in range(iterations):
                if placement.time + iteration * ii == cycle:
                    row.append(bindings[op_id])
        if row:
            issues.append(CycleIssue(cycle, tuple(row)))
    return issues
