"""Textual VLIW assembly rendering."""

from __future__ import annotations

from typing import List, Optional

from ..registers.queues import QueueAllocation
from ..scheduling.result import ScheduleResult
from .kernel import VLIWProgram, build_program


def render_program(program: VLIWProgram, show_ramp: bool = True) -> str:
    """Render *program* as readable VLIW assembly."""
    lines: List[str] = [
        f"; loop {program.loop_name!r} on {program.machine_name}",
        f"; II={program.ii} stages={program.stage_count} "
        f"kernel_ops={program.kernel_ops}",
    ]
    if show_ramp and program.prologue:
        lines.append("prologue:")
        for issue in program.prologue:
            ops = "  ".join(b.render() for b in issue.bindings)
            lines.append(f"  [{issue.cycle:4d}] {ops}")
    lines.append("kernel:")
    for row_index in range(program.ii):
        row = program.row(row_index)
        if row:
            ops = "  ".join(b.render() for b in row)
        else:
            ops = "nop"
        lines.append(f"  [row {row_index}] {ops}")
    if show_ramp and program.epilogue:
        lines.append("epilogue:")
        for issue in program.epilogue:
            ops = "  ".join(b.render() for b in issue.bindings)
            lines.append(f"  [{issue.cycle:4d}] {ops}")
    return "\n".join(lines)


def assembly_for(
    result: ScheduleResult,
    allocation: Optional[QueueAllocation] = None,
    show_ramp: bool = False,
) -> str:
    """Convenience wrapper: build and render in one call."""
    program = build_program(result, allocation)
    return render_program(program, show_ramp=show_ramp)
