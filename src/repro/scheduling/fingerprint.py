"""Canonical schedule fingerprints.

A fingerprint is a stable hash of everything a schedule *means*: the final
DDG (operations, operands, explicit edges — moves included) plus the
(time, cluster) placement of every operation and the achieved II.  Two
scheduler builds that produce the same fingerprint for a loop/machine pair
emitted bit-identical schedules.

The perf-regression suite (``tests/test_perf_fingerprints.py``) pins the
fingerprints of the full kernel suite across topologies and cluster
counts, so hot-path optimisations can be proven behaviour-preserving; the
golden file is regenerated with ``tests/gen_golden_fingerprints.py`` only
when a change is *meant* to alter schedules.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Tuple

from ..ir.ddg import DDG
from .result import ScheduleResult


def ddg_canonical_lines(ddg: DDG) -> List[str]:
    """Deterministic text rendering of a DDG's ops and explicit edges."""
    lines: List[str] = []
    for op in ddg.operations():
        srcs = ",".join(
            f"ext:{s.symbol}" if s.is_external else f"v{s.producer}@{s.omega}"
            for s in op.srcs
        )
        lines.append(f"op {op.op_id} {op.opcode.value} [{srcs}]")
    for edge in ddg.edges():
        if edge.is_flow:
            continue  # derived from the operand lines above
        lines.append(
            f"edge {edge.src}->{edge.dst} {edge.kind.value} "
            f"w={edge.omega} lat={edge.latency}"
        )
    return lines


def schedule_fingerprint(result: ScheduleResult) -> str:
    """SHA-256 over the canonical form of *result* (hex digest)."""
    lines = [
        f"loop {result.loop_name}",
        f"machine {result.machine.name}",
        f"scheduler {result.scheduler}",
        f"ii {result.ii}",
    ]
    lines.extend(ddg_canonical_lines(result.ddg))
    for op_id in sorted(result.placements):
        placement = result.placements[op_id]
        lines.append(f"place {op_id} t={placement.time} c={placement.cluster}")
    digest = hashlib.sha256("\n".join(lines).encode("utf-8"))
    return digest.hexdigest()


def fingerprint_map(results: Iterable[Tuple[str, ScheduleResult]]) -> Dict[str, str]:
    """``case name -> fingerprint`` for a batch of labelled results."""
    return {name: schedule_fingerprint(result) for name, result in results}
