"""Two-phase baseline: partition first, then modulo-schedule.

The paper's related work (section 2) describes schemes that "partition
prior to scheduling, ensuring that no communication conflicts arise when
operations are scheduled" (refs [1], [6], [12]) — the design DMS argues
against by integrating both decisions.  This module implements that
baseline so the integration claim can be measured:

1. **Partition** — operations are laid out over the clusters in
   dependence order, balancing the bottleneck FU kind per cluster; every
   flow edge spanning more than one hop is bridged *statically* with
   pinned move operations along the topology's first (shortest) path.
2. **Schedule** — a pinned-cluster variant of IMS: identical II search,
   priorities, window scan and forced ejection, but each operation may
   only ever sit on its pre-assigned cluster.

Because cluster assignment can no longer adapt to scheduling conflicts,
every imbalance or badly placed chain becomes II overhead — exactly the
phenomenon DMS's single-phase design removes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..errors import IIOverflowError, SchedulingError
from ..ir.ddg import DDG
from ..ir.opcodes import DEFAULT_LATENCIES, FUKind, LatencyModel, OpCode
from ..ir.operations import ValueUse
from ..machine.machine import MachineSpec
from .heights import compute_heights
from .mii import compute_mii, rec_mii
from .result import ScheduleResult, SchedulerStats
from .schedule import PartialSchedule


def partition_clusters(
    ddg: DDG, machine: MachineSpec, latencies: LatencyModel
) -> Dict[int, int]:
    """Assign every operation to a cluster before any scheduling.

    Operations are visited in dependence-height order (critical chains
    first) and greedily placed on the cluster that minimises topology
    distance to already-assigned flow partners, then per-kind load,
    preferring contiguous cluster regions.  The result is a total map
    op id -> cluster.
    """
    n = machine.n_clusters
    if n == 1:
        return {op_id: 0 for op_id in ddg.op_ids}
    # Height computation only converges at II >= RecMII; a tight
    # recurrence (e.g. a two-op div circuit) can push RecMII past the
    # op count, so the partition-order heuristic must respect it too.
    ii_floor = max(1, len(ddg), rec_mii(ddg, latencies))
    heights = compute_heights(ddg, latencies, ii=ii_floor)
    order = sorted(ddg.op_ids, key=lambda i: (-heights[i], i))
    assignment: Dict[int, int] = {}
    load: Dict[Tuple[int, FUKind], int] = {}
    topology = machine.topology

    for position, op_id in enumerate(order):
        op = ddg.op(op_id)
        partners = [
            assignment[e.src]
            for e in ddg.in_edges(op_id)
            if e.is_flow and e.src in assignment and e.src != op_id
        ] + [
            assignment[e.dst]
            for e in ddg.out_edges(op_id)
            if e.is_flow and e.dst in assignment and e.dst != op_id
        ]
        candidates = [
            c for c in range(n) if machine.fu_in_cluster(c, op.fu_kind) > 0
        ]
        if not candidates:
            raise SchedulingError(
                f"machine {machine.name!r} cannot execute {op.fu_kind.value}"
            )
        spread = (position * n) // max(1, len(order))

        def cost(cluster: int) -> Tuple[int, int, int]:
            distance = sum(topology.distance(cluster, p) for p in partners)
            kind_load = load.get((cluster, op.fu_kind), 0)
            return (distance, kind_load, (cluster - spread) % n)

        chosen = min(candidates, key=cost)
        assignment[op_id] = chosen
        load[chosen, op.fu_kind] = load.get((chosen, op.fu_kind), 0) + 1
    return assignment


def insert_static_chains(
    ddg: DDG, assignment: Dict[int, int], machine: MachineSpec
) -> Dict[int, int]:
    """Bridge far flow references with pinned moves (first topology path).

    Mutates *ddg* in place and returns the extended assignment including
    the new move operations.  After this pass every flow reference spans
    at most one hop, so the scheduling phase faces no communication
    decisions at all — the two-phase premise.
    """
    topology = machine.topology
    extended = dict(assignment)
    for consumer_id in list(ddg.op_ids):
        consumer = ddg.op(consumer_id)
        for index, src in enumerate(consumer.srcs):
            if src.is_external or src.producer == consumer_id:
                continue
            producer_cluster = extended[src.producer]
            consumer_cluster = extended[consumer_id]
            if topology.distance(producer_cluster, consumer_cluster) <= 1:
                continue
            path = topology.paths(producer_cluster, consumer_cluster)[0]
            previous = ValueUse(src.producer, src.omega)
            for hop_cluster in path.intermediates:
                move = ddg.new_operation(
                    OpCode.MOVE,
                    (previous,),
                    tag=f"mv2p(v{src.producer}->v{consumer_id})",
                )
                extended[move.op_id] = hop_cluster
                previous = ValueUse(move.op_id, 0)
            ddg.replace_operand(consumer_id, index, previous)
    return extended


class TwoPhaseScheduler:
    """Partition-then-schedule baseline (related-work style)."""

    name = "two-phase"

    def __init__(
        self,
        machine: MachineSpec,
        latencies: LatencyModel = DEFAULT_LATENCIES,
        config: SchedulerConfig = DEFAULT_CONFIG,
    ):
        self.machine = machine
        self.latencies = latencies
        self.config = config

    def schedule(self, ddg: DDG) -> ScheduleResult:
        """Partition *ddg*, insert static chains, then pinned-IMS it."""
        if len(ddg) == 0:
            raise SchedulingError(f"loop {ddg.name!r} has no operations")
        work = ddg.copy()
        assignment = partition_clusters(work, self.machine, self.latencies)
        assignment = insert_static_chains(work, assignment, self.machine)
        bounds = compute_mii(work, self.machine, self.latencies)
        stats = SchedulerStats()
        max_ii = self.config.max_ii(bounds.mii)
        for ii in range(bounds.mii, max_ii + 1):
            stats.ii_attempts += 1
            schedule = self._attempt(work, assignment, ii, stats)
            if schedule is not None:
                return ScheduleResult(
                    loop_name=work.name,
                    machine=self.machine,
                    scheduler=self.name,
                    ii=ii,
                    res_mii=bounds.res_mii,
                    rec_mii=bounds.rec_mii,
                    ddg=work,
                    placements=schedule.placements(),
                    latencies=self.latencies,
                    stats=stats,
                )
        raise IIOverflowError(work.name, max_ii)

    def _attempt(
        self,
        ddg: DDG,
        assignment: Dict[int, int],
        ii: int,
        stats: SchedulerStats,
    ) -> Optional[PartialSchedule]:
        schedule = PartialSchedule(ddg, self.machine, ii, self.latencies)
        heights = compute_heights(ddg, self.latencies, ii)
        unscheduled: Set[int] = set(ddg.op_ids)
        last_time: Dict[int, int] = {}
        budget = self.config.budget_ratio * len(ddg)
        while unscheduled and budget > 0:
            budget -= 1
            stats.budget_used += 1
            op_id = min(unscheduled, key=lambda i: (-heights[i], i))
            unscheduled.remove(op_id)
            cluster = assignment[op_id]
            kind = ddg.op(op_id).fu_kind
            estart = max(0, schedule.earliest_start(op_id))
            time = None
            for t in range(estart, estart + ii):
                if schedule.mrt.is_free(cluster, kind, t):
                    time = t
                    break
            if time is None:
                if op_id in last_time:
                    time = max(estart, last_time[op_id] + 1)
                else:
                    time = estart
                for victim in schedule.mrt.occupants(cluster, kind, time):
                    schedule.remove(victim)
                    unscheduled.add(victim)
                    stats.ejections_resource += 1
            for victim in schedule.succ_violations(op_id, time):
                schedule.remove(victim)
                unscheduled.add(victim)
                stats.ejections_dependence += 1
            schedule.place(op_id, time, cluster)
            last_time[op_id] = time
            stats.placements += 1
        if unscheduled:
            return None
        return schedule


#: Backwards-compatible alias (pre-registry name).
partition_ring = partition_clusters
