"""Independent schedule validation.

The checker re-derives every constraint from scratch (it shares no state
with the schedulers), so scheduler bugs cannot hide behind their own
bookkeeping.  It enforces:

1. completeness — every operation placed exactly once, at time >= 0;
2. capability — each operation sits on a cluster that has a unit of its
   functional-unit kind;
3. resources — no MRT cell over capacity;
4. dependences — ``t(dst) >= t(src) + latency - II * omega`` for every edge;
5. communication — every flow edge connects clusters the machine's
   topology deems adjacent (any registered interconnect);
6. fan-out — at most 2 consumer references per value on clustered machines
   (the single-use property DMS relies on for queue mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ValidationError
from ..ir.opcodes import FUKind
from .result import ScheduleResult


@dataclass
class ValidationReport:
    """Outcome of a schedule check."""

    loop_name: str
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_if_failed(self) -> None:
        if self.problems:
            summary = "; ".join(self.problems[:10])
            more = f" (+{len(self.problems) - 10} more)" if len(self.problems) > 10 else ""
            raise ValidationError(
                f"schedule for {self.loop_name!r} invalid: {summary}{more}"
            )


def check_schedule(result: ScheduleResult) -> ValidationReport:
    """Validate *result* and return a report (never raises)."""
    report = ValidationReport(result.loop_name)
    ddg = result.ddg
    machine = result.machine
    ii = result.ii
    placements = result.placements

    # 1. Completeness.
    scheduled = set(placements)
    ops = set(ddg.op_ids)
    for missing in sorted(ops - scheduled):
        report.problems.append(f"op {missing} not scheduled")
    for phantom in sorted(scheduled - ops):
        report.problems.append(f"placement for unknown op {phantom}")

    usage: Dict[Tuple[int, FUKind, int], int] = {}
    for op_id in sorted(scheduled & ops):
        placement = placements[op_id]
        op = ddg.op(op_id)
        if placement.time < 0:
            report.problems.append(f"op {op_id} at negative time {placement.time}")
        if not 0 <= placement.cluster < machine.n_clusters:
            report.problems.append(
                f"op {op_id} on invalid cluster {placement.cluster}"
            )
            continue
        # 2. Capability.
        if machine.fu_in_cluster(placement.cluster, op.fu_kind) == 0:
            report.problems.append(
                f"op {op_id} ({op.fu_kind.value}) on cluster "
                f"{placement.cluster} without such a unit"
            )
        cell = (placement.cluster, op.fu_kind, placement.time % ii)
        usage[cell] = usage.get(cell, 0) + 1

    # 3. Resources.
    for (cluster, kind, row), count in sorted(
        usage.items(), key=lambda item: (item[0][0], item[0][1].value, item[0][2])
    ):
        capacity = machine.fu_in_cluster(cluster, kind)
        if count > capacity:
            report.problems.append(
                f"MRT cell (c{cluster}, {kind.value}, row {row}) holds "
                f"{count} ops, capacity {capacity}"
            )

    # 4. Dependences and 5. communication.
    topology = machine.topology

    def in_range(placement) -> bool:
        return 0 <= placement.cluster < machine.n_clusters

    for edge in ddg.edges():
        if edge.src not in placements or edge.dst not in placements:
            continue
        src, dst = placements[edge.src], placements[edge.dst]
        if not (in_range(src) and in_range(dst)):
            continue  # already reported as an invalid cluster
        latency = ddg.edge_latency(edge, result.latencies)
        if dst.time < src.time + latency - ii * edge.omega:
            report.problems.append(
                f"dependence violated: {edge!r} with t({edge.src})={src.time}, "
                f"t({edge.dst})={dst.time}, II={ii}"
            )
        if edge.communicates and edge.src != edge.dst:
            if not topology.adjacent(src.cluster, dst.cluster):
                report.problems.append(
                    f"communication conflict: flow {edge.src}->{edge.dst} "
                    f"between clusters {src.cluster} and {dst.cluster}"
                )

    # 6. Fan-out discipline on clustered machines.
    if machine.is_clustered:
        for op_id in ddg.op_ids:
            fanout = ddg.flow_fanout(op_id)
            if fanout > 2:
                report.problems.append(
                    f"op {op_id} has fan-out {fanout} > 2 on a clustered machine"
                )
    return report


def validate_schedule(result: ScheduleResult) -> None:
    """Validate *result*, raising :class:`ValidationError` on any problem."""
    check_schedule(result).raise_if_failed()
