"""Independent schedule validation.

The checker re-derives every constraint from scratch (it shares no state
with the schedulers), so scheduler bugs cannot hide behind their own
bookkeeping.  It enforces:

1. completeness — every operation placed exactly once, at time >= 0;
2. capability — each operation sits on a cluster that has a unit of its
   functional-unit kind;
3. resources — no MRT cell over capacity;
4. dependences — ``t(dst) >= t(src) + latency - II * omega`` for every
   edge, with the latency resolved through the *shared* timing helper
   (:func:`repro.scheduling.timing.dependence_slack`), so the checker and
   the timing simulator can never silently disagree on edge cost;
5. communication — every flow edge connects clusters the machine's
   topology deems adjacent (any registered interconnect);
6. fan-out — at most 2 consumer references per value on clustered machines
   (the single-use property DMS relies on for queue mapping).

Two derived-shape rules ride along:

* II/stage-count consistency — ``II >= 1`` and the result's advertised
  ``stage_count`` equals ``max(t) // II + 1`` recomputed from the
  placements (a result object whose metadata disagrees with its own
  placements poisons every downstream cycle model);
* link bandwidth — when the machine's CQRF declares a finite
  ``write_ports`` count, the flow values entering any directed cluster
  link per MRT row must fit it (mirrored dynamically by the simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ValidationError
from ..ir.opcodes import FUKind
from .result import ScheduleResult
from .timing import dependence_slack, edge_ready_latency


@dataclass
class ValidationReport:
    """Outcome of a schedule check."""

    loop_name: str
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_if_failed(self) -> None:
        if self.problems:
            summary = "; ".join(self.problems[:10])
            more = f" (+{len(self.problems) - 10} more)" if len(self.problems) > 10 else ""
            raise ValidationError(
                f"schedule for {self.loop_name!r} invalid: {summary}{more}"
            )


def check_schedule(result: ScheduleResult) -> ValidationReport:
    """Validate *result* and return a report (never raises)."""
    report = ValidationReport(result.loop_name)
    ddg = result.ddg
    machine = result.machine
    ii = result.ii
    placements = result.placements

    # 0. Shape: II and the advertised stage count must agree with the
    # placements themselves.  For a plain ScheduleResult the stage count
    # is derived and always consistent; the rule exists for subclasses
    # and deserialised/stale result metadata, where a wrong SC silently
    # corrupts every downstream ramp/cycle model (see the LyingResult
    # mutant in the mutation-kill suite).
    if ii < 1:
        report.problems.append(f"initiation interval {ii} < 1")
        return report
    if placements:
        max_time = max(p.time for p in placements.values())
        expected_sc = max_time // ii + 1
        if result.stage_count != expected_sc:
            report.problems.append(
                f"stage count {result.stage_count} != max(t)//II + 1 = "
                f"{expected_sc} (max time {max_time}, II {ii})"
            )

    # 1. Completeness.
    scheduled = set(placements)
    ops = set(ddg.op_ids)
    for missing in sorted(ops - scheduled):
        report.problems.append(f"op {missing} not scheduled")
    for phantom in sorted(scheduled - ops):
        report.problems.append(f"placement for unknown op {phantom}")

    usage: Dict[Tuple[int, FUKind, int], int] = {}
    for op_id in sorted(scheduled & ops):
        placement = placements[op_id]
        op = ddg.op(op_id)
        if placement.time < 0:
            report.problems.append(f"op {op_id} at negative time {placement.time}")
        if not 0 <= placement.cluster < machine.n_clusters:
            report.problems.append(
                f"op {op_id} on invalid cluster {placement.cluster}"
            )
            continue
        # 2. Capability.
        if machine.fu_in_cluster(placement.cluster, op.fu_kind) == 0:
            report.problems.append(
                f"op {op_id} ({op.fu_kind.value}) on cluster "
                f"{placement.cluster} without such a unit"
            )
        cell = (placement.cluster, op.fu_kind, placement.time % ii)
        usage[cell] = usage.get(cell, 0) + 1

    # 3. Resources.
    for (cluster, kind, row), count in sorted(
        usage.items(), key=lambda item: (item[0][0], item[0][1].value, item[0][2])
    ):
        capacity = machine.fu_in_cluster(cluster, kind)
        if count > capacity:
            report.problems.append(
                f"MRT cell (c{cluster}, {kind.value}, row {row}) holds "
                f"{count} ops, capacity {capacity}"
            )

    # 4. Dependences and 5. communication.
    topology = machine.topology

    def in_range(placement) -> bool:
        return 0 <= placement.cluster < machine.n_clusters

    for edge in ddg.edges():
        if edge.src not in placements or edge.dst not in placements:
            continue
        src, dst = placements[edge.src], placements[edge.dst]
        if not (in_range(src) and in_range(dst)):
            continue  # already reported as an invalid cluster
        if dependence_slack(
            ddg, edge, placements, ii, result.latencies, machine
        ) < 0:
            report.problems.append(
                f"dependence violated: {edge!r} with t({edge.src})={src.time}, "
                f"t({edge.dst})={dst.time}, II={ii}"
            )
        if edge.communicates and edge.src != edge.dst:
            if not topology.adjacent(src.cluster, dst.cluster):
                report.problems.append(
                    f"communication conflict: flow {edge.src}->{edge.dst} "
                    f"between clusters {src.cluster} and {dst.cluster}"
                )

    # 6. Fan-out discipline on clustered machines.
    if machine.is_clustered:
        for op_id in ddg.op_ids:
            fanout = ddg.flow_fanout(op_id)
            if fanout > 2:
                report.problems.append(
                    f"op {op_id} has fan-out {fanout} > 2 on a clustered machine"
                )

    # 7. Per-link communication bandwidth (CQRF write ports).
    _check_link_bandwidth(result, report)
    return report


def _check_link_bandwidth(result: ScheduleResult, report: ValidationReport) -> None:
    """Flow values entering a directed cluster link per MRT row must fit
    the CQRF's write-port count (0 ports = unconstrained).

    In steady state every cross-cluster flow edge delivers one value per
    II cycles, landing in the CQRF at ``(t(src) + latency) % II``; rows
    with more landings than ports cannot be sustained by the hardware.
    The timing simulator mirrors this per actual cycle.
    """
    machine = result.machine
    ports = machine.cqrf.write_ports
    if not machine.is_clustered or ports <= 0:
        return
    ddg = result.ddg
    placements = result.placements
    ii = result.ii
    landings: Dict[Tuple[int, int, int], int] = {}
    for op_id in ddg.op_ids:
        if op_id not in placements:
            continue
        src = placements[op_id]
        # One landing per operand *reference* (each reference is its own
        # queue), matching the simulator's per-cycle count exactly.
        for (consumer_id, _index, _omega), edge in ddg.flow_succ_ref_edges(
            op_id
        ):
            if consumer_id not in placements:
                continue
            dst = placements[consumer_id]
            if src.cluster == dst.cluster:
                continue
            latency = edge_ready_latency(
                ddg,
                edge,
                result.latencies,
                src_cluster=src.cluster,
                dst_cluster=dst.cluster,
                machine=machine,
            )
            row = (src.time + latency) % ii
            key = (src.cluster, dst.cluster, row)
            landings[key] = landings.get(key, 0) + 1
    for (writer, reader, row), count in sorted(landings.items()):
        if count > ports:
            report.problems.append(
                f"link bandwidth exceeded: {count} values enter "
                f"cqrf[c{writer}->c{reader}] at row {row} "
                f"(write ports {ports})"
            )


def validate_schedule(result: ScheduleResult) -> None:
    """Validate *result*, raising :class:`ValidationError` on any problem."""
    check_schedule(result).raise_if_failed()
