"""The Modulo Reservation Table (MRT).

An operation issued at time ``t`` occupies its functional-unit kind in its
cluster at row ``t mod II``; a schedule is resource-valid when no
(cluster, kind, row) cell holds more operations than the cluster has units
of that kind.  All FUs are fully pipelined with unit occupancy, matching
the paper's machine model.

The table is organised per (cluster, kind) lane: each lane keeps a
row-indexed occupancy count, sorted occupant lists and a cached occupant
tuple per row.  Capacities are snapshotted from the machine once at
construction, so the is_free/place/remove/occupants cycle on the
scheduler's innermost loops touches no machine-spec code and allocates
nothing on reads.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Tuple

from ..errors import SchedulingError
from ..ir.opcodes import FUKind
from ..machine.machine import MachineSpec

Cell = Tuple[int, FUKind, int]  # (cluster, kind, row)
LaneKey = Tuple[int, FUKind]  # (cluster, kind)


class _Lane:
    """Occupancy state of one (cluster, kind) pair across all MRT rows."""

    __slots__ = ("capacity", "counts", "rows", "cached", "used")

    def __init__(self, capacity: int, ii: int):
        self.capacity = capacity
        self.counts: List[int] = [0] * ii
        self.rows: List[List[int]] = [[] for _ in range(ii)]
        self.cached: List[Optional[Tuple[int, ...]]] = [None] * ii
        self.used = 0


class ModuloReservationTable:
    """Tracks FU occupancy modulo the initiation interval."""

    def __init__(self, machine: MachineSpec, ii: int):
        if ii < 1:
            raise SchedulingError(f"ii must be >= 1, got {ii}")
        self.machine = machine
        self.ii = ii
        self._lanes: Dict[LaneKey, _Lane] = {}
        self._caps: Dict[LaneKey, int] = {}
        for cluster in range(machine.n_clusters):
            spec = machine.cluster(cluster)
            for kind in FUKind:
                self._caps[cluster, kind] = spec.fu_count(kind)

    def _lane(self, cluster: int, kind: FUKind) -> _Lane:
        key = (cluster, kind)
        lane = self._lanes.get(key)
        if lane is None:
            lane = self._lanes[key] = _Lane(self._caps[key], self.ii)
        return lane

    def row(self, time: int) -> int:
        """MRT row of an issue time."""
        return time % self.ii

    def capacity(self, cluster: int, kind: FUKind) -> int:
        """Units of *kind* in *cluster*."""
        return self._caps[cluster, kind]

    def occupants(self, cluster: int, kind: FUKind, time: int) -> Tuple[int, ...]:
        """Operations occupying the cell covering *time* (sorted).

        The tuple is cached per cell and invalidated on place/remove, so
        repeated reads (eviction ranking scans every candidate cell)
        allocate nothing.
        """
        lane = self._lanes.get((cluster, kind))
        if lane is None:
            return ()
        row = time % self.ii
        cached = lane.cached[row]
        if cached is None:
            cached = lane.cached[row] = tuple(lane.rows[row])
        return cached

    def is_free(self, cluster: int, kind: FUKind, time: int) -> bool:
        """True when one more *kind* op fits in *cluster* at *time*."""
        lane = self._lanes.get((cluster, kind))
        if lane is None:
            return self._caps[cluster, kind] > 0
        return lane.counts[time % self.ii] < lane.capacity

    def first_free_slot(
        self, cluster: int, kind: FUKind, estart: int
    ) -> Optional[int]:
        """First time in ``[estart, estart + II)`` with a free unit.

        One-lane window scan used by the slot searches of IMS/DMS and the
        chain planner; equivalent to calling :meth:`is_free` for each time
        in the window but without the per-call lookups.
        """
        lane = self._lanes.get((cluster, kind))
        if lane is None:
            return estart if self._caps[cluster, kind] > 0 else None
        capacity = lane.capacity
        if capacity == 0 or lane.used >= capacity * self.ii:
            return None
        counts = lane.counts
        ii = self.ii
        for time in range(estart, estart + ii):
            if counts[time % ii] < capacity:
                return time
        return None

    def place(self, op_id: int, cluster: int, kind: FUKind, time: int) -> None:
        """Occupy a unit; caller must have ejected conflicts first."""
        lane = self._lane(cluster, kind)
        row = time % self.ii
        if lane.counts[row] >= lane.capacity:
            raise SchedulingError(
                f"MRT cell (c{cluster}, {kind.value}, row {row}) full"
            )
        insort(lane.rows[row], op_id)
        lane.counts[row] += 1
        lane.cached[row] = None
        lane.used += 1

    def remove(self, op_id: int, cluster: int, kind: FUKind, time: int) -> None:
        """Release the unit *op_id* held."""
        row = time % self.ii
        lane = self._lanes.get((cluster, kind))
        if lane is None or op_id not in lane.rows[row]:
            cell = (cluster, kind, row)
            raise SchedulingError(f"op {op_id} not in MRT cell {cell}")
        lane.rows[row].remove(op_id)
        lane.counts[row] -= 1
        lane.cached[row] = None
        lane.used -= 1

    def used_slots(self, cluster: int, kind: FUKind) -> int:
        """Occupied (kind) slots in *cluster* summed over all rows."""
        lane = self._lanes.get((cluster, kind))
        return lane.used if lane is not None else 0

    def free_slots(self, cluster: int, kind: FUKind) -> int:
        """Free (kind) slots in *cluster* summed over all rows."""
        lane = self._lanes.get((cluster, kind))
        if lane is None:
            return self.ii * self._caps[cluster, kind]
        return self.ii * lane.capacity - lane.used

    def utilization(self, cluster: int, kind: FUKind) -> float:
        """Fraction of (kind) issue slots used in *cluster*."""
        total = self.ii * self._caps[cluster, kind]
        if total == 0:
            return 0.0
        return self.used_slots(cluster, kind) / total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        used = sum(lane.used for lane in self._lanes.values())
        return f"<MRT ii={self.ii} occupied={used}>"
