"""The Modulo Reservation Table (MRT).

An operation issued at time ``t`` occupies its functional-unit kind in its
cluster at row ``t mod II``; a schedule is resource-valid when no
(cluster, kind, row) cell holds more operations than the cluster has units
of that kind.  All FUs are fully pipelined with unit occupancy, matching
the paper's machine model.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import SchedulingError
from ..ir.opcodes import FUKind
from ..machine.machine import MachineSpec

Cell = Tuple[int, FUKind, int]  # (cluster, kind, row)


class ModuloReservationTable:
    """Tracks FU occupancy modulo the initiation interval."""

    def __init__(self, machine: MachineSpec, ii: int):
        if ii < 1:
            raise SchedulingError(f"ii must be >= 1, got {ii}")
        self.machine = machine
        self.ii = ii
        self._cells: Dict[Cell, List[int]] = {}
        self._used: Dict[Tuple[int, FUKind], int] = {}

    def row(self, time: int) -> int:
        """MRT row of an issue time."""
        return time % self.ii

    def capacity(self, cluster: int, kind: FUKind) -> int:
        """Units of *kind* in *cluster*."""
        return self.machine.fu_in_cluster(cluster, kind)

    def occupants(self, cluster: int, kind: FUKind, time: int) -> Tuple[int, ...]:
        """Operations occupying the cell covering *time* (sorted)."""
        cell = (cluster, kind, self.row(time))
        return tuple(sorted(self._cells.get(cell, ())))

    def is_free(self, cluster: int, kind: FUKind, time: int) -> bool:
        """True when one more *kind* op fits in *cluster* at *time*."""
        cell = (cluster, kind, self.row(time))
        return len(self._cells.get(cell, ())) < self.capacity(cluster, kind)

    def place(self, op_id: int, cluster: int, kind: FUKind, time: int) -> None:
        """Occupy a unit; caller must have ejected conflicts first."""
        if not self.is_free(cluster, kind, time):
            raise SchedulingError(
                f"MRT cell (c{cluster}, {kind.value}, row {self.row(time)}) full"
            )
        cell = (cluster, kind, self.row(time))
        self._cells.setdefault(cell, []).append(op_id)
        self._used[cluster, kind] = self._used.get((cluster, kind), 0) + 1

    def remove(self, op_id: int, cluster: int, kind: FUKind, time: int) -> None:
        """Release the unit *op_id* held."""
        cell = (cluster, kind, self.row(time))
        occupants = self._cells.get(cell, [])
        if op_id not in occupants:
            raise SchedulingError(f"op {op_id} not in MRT cell {cell}")
        occupants.remove(op_id)
        if not occupants:
            self._cells.pop(cell, None)
        self._used[cluster, kind] -= 1

    def used_slots(self, cluster: int, kind: FUKind) -> int:
        """Occupied (kind) slots in *cluster* summed over all rows."""
        return self._used.get((cluster, kind), 0)

    def free_slots(self, cluster: int, kind: FUKind) -> int:
        """Free (kind) slots in *cluster* summed over all rows."""
        return self.ii * self.capacity(cluster, kind) - self.used_slots(cluster, kind)

    def utilization(self, cluster: int, kind: FUKind) -> float:
        """Fraction of (kind) issue slots used in *cluster*."""
        total = self.ii * self.capacity(cluster, kind)
        if total == 0:
            return 0.0
        return self.used_slots(cluster, kind) / total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        used = sum(len(v) for v in self._cells.values())
        return f"<MRT ii={self.ii} occupied={used}>"
