"""Partial schedules: placements plus the queries schedulers need.

A placement binds an operation to an issue ``time`` and a ``cluster``.
The :class:`PartialSchedule` keeps the MRT in sync and answers the three
conflict queries of the DMS paper:

* resource conflicts (MRT cell occupancy),
* dependence conflicts (edge timing),
* communication conflicts (flow partners on indirectly connected clusters).

Communication compatibility is tracked *incrementally*: every placed flow
partner intersects the candidate set of its neighbours with the clusters
adjacent to its own (via the topology's cached ``compat_sets``), so the
per-placement ``comm_compatible_clusters`` query no longer rescans every
edge once per cluster.  Cache entries are keyed to the DDG's per-op
adjacency versions, so move insertion and chain dismantling invalidate
exactly the operations whose adjacency changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SchedulingError
from ..ir.ddg import DDG
from ..ir.opcodes import FUKind, LatencyModel
from ..machine.machine import MachineSpec
from .mrt import ModuloReservationTable


@dataclass(frozen=True)
class Placement:
    """Issue time and cluster of one scheduled operation."""

    time: int
    cluster: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SchedulingError(f"issue time must be >= 0, got {self.time}")


class PartialSchedule:
    """Mutable schedule state for one II attempt.

    The schedule holds a *live* reference to the DDG being scheduled: DMS
    mutates the graph (move insertion, chain dismantling) while scheduling,
    and every query below reads the current graph.
    """

    def __init__(
        self,
        ddg: DDG,
        machine: MachineSpec,
        ii: int,
        latencies: LatencyModel,
    ):
        self.ddg = ddg
        self.machine = machine
        self.ii = ii
        self.latencies = latencies
        self.mrt = ModuloReservationTable(machine, ii)
        self._placements: Dict[int, Placement] = {}
        topology = machine.topology
        #: ``dist[a][b]`` — cached topology distances (built once per
        #: machine, shared by every schedule targeting it).
        self.dist: Tuple[Tuple[int, ...], ...] = topology.distance_matrix()
        #: ``compat[p]`` — clusters a *consumer* of an op on *p* may use;
        #: ``compat_in[s]`` — clusters a *producer* feeding an op on *s*
        #: may use.  Identical on symmetric interconnects, kept separate
        #: so asymmetric registered topologies are judged per direction.
        self.compat: Tuple[frozenset, ...] = topology.compat_sets()
        self.compat_in: Tuple[frozenset, ...] = topology.compat_sets_in()
        self._all_clusters: frozenset = frozenset(range(machine.n_clusters))
        self._all_clusters_sorted: List[int] = list(range(machine.n_clusters))
        # op -> [ddg adjacency version, compatible cluster set,
        #        sorted list of the set or None when stale].
        self._compat_cache: Dict[int, List] = {}
        # op -> (version, ((pred, latency - II*omega), ...)) and the
        # successor-side mirror: the constants of the dependence
        # inequalities, flattened so the timing queries touch no edge
        # objects or latency tables.
        self._pred_info: Dict[int, Tuple[int, Tuple[Tuple[int, int], ...]]] = {}
        self._succ_info: Dict[int, Tuple[int, Tuple[Tuple[int, int], ...]]] = {}
        # kind -> clusters with at least one unit, ascending.
        self._kind_clusters: Dict[FUKind, frozenset] = {}
        # Flow pred/succ indexes keyed by adjacency version.
        self._pred_pairs_cache: Dict[int, Tuple[int, Tuple[Tuple[int, int], ...]]] = {}
        self._succ_ids_cache: Dict[int, Tuple[int, Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    # Placement bookkeeping
    # ------------------------------------------------------------------

    def place(self, op_id: int, time: int, cluster: int) -> None:
        """Schedule *op_id*; the MRT cell must be free."""
        if op_id in self._placements:
            raise SchedulingError(f"op {op_id} already scheduled")
        op = self.ddg.op(op_id)
        self.mrt.place(op_id, cluster, op.fu_kind, time)
        self._placements[op_id] = Placement(time, cluster)
        # Narrow the partners' compatible sets: they must now sit within
        # distance 1 of this op's cluster (preds against the incoming
        # direction, succs against the outgoing one).  Duplicate partners
        # (several edges to the same op) re-intersect idempotently, so
        # the edge tuples are walked directly without building a set.
        producer_ok = self.compat_in[cluster]
        consumer_ok = self.compat[cluster]
        cache = self._compat_cache
        ddg = self.ddg
        for edge in ddg.in_edges(op_id):
            if edge.communicates and edge.src != op_id:
                self._narrow_partner(cache, ddg, edge.src, producer_ok)
        for edge in ddg.out_edges(op_id):
            if edge.communicates and edge.dst != op_id:
                self._narrow_partner(cache, ddg, edge.dst, consumer_ok)

    @staticmethod
    def _narrow_partner(cache, ddg, partner: int, compat: frozenset) -> None:
        entry = cache.get(partner)
        if entry is None:
            return
        if entry[0] == ddg.adj_version(partner):
            entry[1].intersection_update(compat)
            entry[2] = None
        else:
            del cache[partner]

    def remove(self, op_id: int) -> Placement:
        """Unschedule *op_id*, returning its old placement."""
        placement = self._placements.pop(op_id, None)
        if placement is None:
            raise SchedulingError(f"op {op_id} is not scheduled")
        op = self.ddg.op(op_id)
        self.mrt.remove(op_id, placement.cluster, op.fu_kind, placement.time)
        # A constraint disappeared; the partners' sets can only grow, so
        # drop them for lazy recomputation.
        cache = self._compat_cache
        for edge in self.ddg.in_edges(op_id):
            if edge.communicates and edge.src != op_id:
                cache.pop(edge.src, None)
        for edge in self.ddg.out_edges(op_id):
            if edge.communicates and edge.dst != op_id:
                cache.pop(edge.dst, None)
        return placement

    def placement(self, op_id: int) -> Optional[Placement]:
        """The placement of *op_id*, or None when unscheduled."""
        return self._placements.get(op_id)

    def is_scheduled(self, op_id: int) -> bool:
        return op_id in self._placements

    def time(self, op_id: int) -> int:
        return self._placements[op_id].time

    def cluster(self, op_id: int) -> int:
        return self._placements[op_id].cluster

    @property
    def scheduled_ids(self) -> List[int]:
        return sorted(self._placements)

    @property
    def n_scheduled(self) -> int:
        return len(self._placements)

    def placements(self) -> Dict[int, Placement]:
        """Snapshot of all placements."""
        return dict(self._placements)

    # ------------------------------------------------------------------
    # Timing queries
    # ------------------------------------------------------------------

    def edge_latency(self, edge) -> int:
        """Latency of *edge* (edge-attached cache, see DDG.edge_latency)."""
        return self.ddg.edge_latency(edge, self.latencies)

    def _timing_info(
        self, op_id: int, cache: Dict, incoming: bool
    ) -> Tuple[Tuple[int, int], ...]:
        """Flattened dependence constants ``(partner, latency - II*omega)``
        for the edges entering (or leaving) *op_id*, self-loops excluded;
        cached against the op's adjacency version."""
        version = self.ddg.adj_version(op_id)
        entry = cache.get(op_id)
        if entry is not None and entry[0] == version:
            return entry[1]
        ii = self.ii
        if incoming:
            info = tuple(
                (edge.src, self.edge_latency(edge) - ii * edge.omega)
                for edge in self.ddg.in_edges(op_id)
                if edge.src != op_id
            )
        else:
            info = tuple(
                (edge.dst, self.edge_latency(edge) - ii * edge.omega)
                for edge in self.ddg.out_edges(op_id)
                if edge.dst != op_id
            )
        cache[op_id] = (version, info)
        return info

    def earliest_start(self, op_id: int) -> int:
        """Earliest issue time satisfying all *scheduled* predecessors."""
        estart = 0
        placements = self._placements
        # Self-recurrences are excluded: bounded by RecMII, not estart.
        for src, const in self._timing_info(op_id, self._pred_info, True):
            src_placement = placements.get(src)
            if src_placement is None:
                continue
            bound = src_placement.time + const
            if bound > estart:
                estart = bound
        return estart

    def succ_violations(self, op_id: int, time: int) -> List[int]:
        """Scheduled consumers whose timing breaks if *op_id* issues at *time*."""
        violated = set()
        placements = self._placements
        for dst, const in self._timing_info(op_id, self._succ_info, False):
            dst_placement = placements.get(dst)
            if dst_placement is None:
                continue
            if dst_placement.time < time + const:
                violated.add(dst)
        return sorted(violated)

    def clusters_with(self, kind: FUKind) -> frozenset:
        """Clusters owning at least one *kind* unit (cached)."""
        clusters = self._kind_clusters.get(kind)
        if clusters is None:
            capacity = self.mrt.capacity
            clusters = frozenset(
                c for c in range(self.machine.n_clusters) if capacity(c, kind) > 0
            )
            self._kind_clusters[kind] = clusters
        return clusters

    # ------------------------------------------------------------------
    # Communication queries (the DMS-specific part)
    # ------------------------------------------------------------------

    def comm_conflicts(self, op_id: int, cluster: int) -> List[int]:
        """Scheduled flow partners indirectly connected to *cluster*.

        These are the operations that would be in communication conflict
        with *op_id* if it were placed on *cluster*.
        """
        dist = self.dist
        dist_from = dist[cluster]
        placements = self._placements
        conflicts = set()
        for edge in self.ddg.in_edges(op_id):
            if not edge.communicates or edge.src == op_id:
                continue
            partner = placements.get(edge.src)
            if partner is not None and dist[partner.cluster][cluster] > 1:
                conflicts.add(edge.src)
        for edge in self.ddg.out_edges(op_id):
            if not edge.communicates or edge.dst == op_id:
                continue
            partner = placements.get(edge.dst)
            if partner is not None and dist_from[partner.cluster] > 1:
                conflicts.add(edge.dst)
        return sorted(conflicts)

    def comm_compatible_clusters(self, op_id: int) -> List[int]:
        """Clusters where *op_id* conflicts with no scheduled flow partner.

        Maintained incrementally: the set is the intersection of
        ``compat[cluster(p)]`` over every scheduled flow partner *p*,
        updated in :meth:`place`/:meth:`remove` and recomputed only when
        this op's DDG adjacency changed since the cached computation.
        """
        version = self.ddg.adj_version(op_id)
        entry = self._compat_cache.get(op_id)
        if entry is None or entry[0] != version:
            compatible = None
            placements = self._placements
            compat = self.compat
            compat_in = self.compat_in
            ddg = self.ddg
            # A placed pred on p constrains this op to compat[p]; a placed
            # succ on s constrains it to compat_in[s].
            for edge in ddg.in_edges(op_id):
                if edge.communicates and edge.src != op_id:
                    placement = placements.get(edge.src)
                    if placement is not None:
                        if compatible is None:
                            compatible = set(compat[placement.cluster])
                        else:
                            compatible &= compat[placement.cluster]
            for edge in ddg.out_edges(op_id):
                if edge.communicates and edge.dst != op_id:
                    placement = placements.get(edge.dst)
                    if placement is not None:
                        if compatible is None:
                            compatible = set(compat_in[placement.cluster])
                        else:
                            compatible &= compat_in[placement.cluster]
            if compatible is None:
                # Unconstrained: no scheduled partner.  Short-circuit with
                # the shared full-cluster list (constraints arriving later
                # go through _narrow_partner, which copies first).
                entry = [version, set(self._all_clusters), self._all_clusters_sorted]
            else:
                entry = [version, compatible, None]
            self._compat_cache[op_id] = entry
        if entry[2] is None:
            entry[2] = sorted(entry[1])
        # Callers treat the list as read-only; it is re-sorted only when
        # the underlying set changes.
        return entry[2]

    def _flow_pred_pairs(self, op_id: int) -> Tuple[Tuple[int, int], ...]:
        """Sorted unique (producer, omega) flow pairs (cached, no self)."""
        version = self.ddg.adj_version(op_id)
        entry = self._pred_pairs_cache.get(op_id)
        if entry is not None and entry[0] == version:
            return entry[1]
        pairs = tuple(
            sorted(
                {
                    (edge.src, edge.omega)
                    for edge in self.ddg.in_edges(op_id)
                    if edge.communicates and edge.src != op_id
                }
            )
        )
        self._pred_pairs_cache[op_id] = (version, pairs)
        return pairs

    def _flow_succ_ids(self, op_id: int) -> Tuple[int, ...]:
        """Sorted unique flow consumer ids (cached, no self)."""
        version = self.ddg.adj_version(op_id)
        entry = self._succ_ids_cache.get(op_id)
        if entry is not None and entry[0] == version:
            return entry[1]
        succs = tuple(
            sorted(
                {
                    e.dst
                    for e in self.ddg.out_edges(op_id)
                    if e.communicates and e.dst != op_id
                }
            )
        )
        self._succ_ids_cache[op_id] = (version, succs)
        return succs

    def scheduled_partner_clusters(self, op_id: int) -> List[int]:
        """Clusters of scheduled flow partners, as a multiset.

        One entry per unique scheduled (producer, omega) pred pair plus
        one per unique scheduled consumer — the weighting the cluster
        preference's distance sum uses.  Order is unspecified (callers
        aggregate commutatively), which avoids the sort the individual
        pred/succ queries pay.
        """
        placements = self._placements
        clusters = []
        for src, _omega in self._flow_pred_pairs(op_id):
            placement = placements.get(src)
            if placement is not None:
                clusters.append(placement.cluster)
        for dst in self._flow_succ_ids(op_id):
            placement = placements.get(dst)
            if placement is not None:
                clusters.append(placement.cluster)
        return clusters

    def scheduled_flow_preds(self, op_id: int) -> List[Tuple[int, int]]:
        """Scheduled producers of *op_id* as (producer_id, omega) pairs."""
        placements = self._placements
        return [
            pair for pair in self._flow_pred_pairs(op_id) if pair[0] in placements
        ]

    def scheduled_flow_succs(self, op_id: int) -> List[int]:
        """Scheduled consumers of *op_id*'s value."""
        placements = self._placements
        return [s for s in self._flow_succ_ids(op_id) if s in placements]

    # ------------------------------------------------------------------
    # Derived schedule shape
    # ------------------------------------------------------------------

    @property
    def max_time(self) -> int:
        """Largest issue time (0 when empty)."""
        if not self._placements:
            return 0
        return max(p.time for p in self._placements.values())

    @property
    def stage_count(self) -> int:
        """Number of kernel stages: ``floor(max_time / II) + 1``."""
        return self.max_time // self.ii + 1

    def free_slots(self, cluster: int, kind: FUKind) -> int:
        """MRT passthrough used by chain scoring and strategy 3."""
        return self.mrt.free_slots(cluster, kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PartialSchedule ii={self.ii} scheduled={self.n_scheduled}/"
            f"{len(self.ddg)}>"
        )
