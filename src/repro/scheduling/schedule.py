"""Partial schedules: placements plus the queries schedulers need.

A placement binds an operation to an issue ``time`` and a ``cluster``.
The :class:`PartialSchedule` keeps the MRT in sync and answers the three
conflict queries of the DMS paper:

* resource conflicts (MRT cell occupancy),
* dependence conflicts (edge timing),
* communication conflicts (flow partners on indirectly connected clusters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SchedulingError
from ..ir.ddg import DDG
from ..ir.opcodes import FUKind, LatencyModel
from ..machine.machine import MachineSpec
from .mrt import ModuloReservationTable


@dataclass(frozen=True)
class Placement:
    """Issue time and cluster of one scheduled operation."""

    time: int
    cluster: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SchedulingError(f"issue time must be >= 0, got {self.time}")


class PartialSchedule:
    """Mutable schedule state for one II attempt.

    The schedule holds a *live* reference to the DDG being scheduled: DMS
    mutates the graph (move insertion, chain dismantling) while scheduling,
    and every query below reads the current graph.
    """

    def __init__(
        self,
        ddg: DDG,
        machine: MachineSpec,
        ii: int,
        latencies: LatencyModel,
    ):
        self.ddg = ddg
        self.machine = machine
        self.ii = ii
        self.latencies = latencies
        self.mrt = ModuloReservationTable(machine, ii)
        self._placements: Dict[int, Placement] = {}

    # ------------------------------------------------------------------
    # Placement bookkeeping
    # ------------------------------------------------------------------

    def place(self, op_id: int, time: int, cluster: int) -> None:
        """Schedule *op_id*; the MRT cell must be free."""
        if op_id in self._placements:
            raise SchedulingError(f"op {op_id} already scheduled")
        op = self.ddg.op(op_id)
        self.mrt.place(op_id, cluster, op.fu_kind, time)
        self._placements[op_id] = Placement(time, cluster)

    def remove(self, op_id: int) -> Placement:
        """Unschedule *op_id*, returning its old placement."""
        placement = self._placements.pop(op_id, None)
        if placement is None:
            raise SchedulingError(f"op {op_id} is not scheduled")
        op = self.ddg.op(op_id)
        self.mrt.remove(op_id, placement.cluster, op.fu_kind, placement.time)
        return placement

    def placement(self, op_id: int) -> Optional[Placement]:
        """The placement of *op_id*, or None when unscheduled."""
        return self._placements.get(op_id)

    def is_scheduled(self, op_id: int) -> bool:
        return op_id in self._placements

    def time(self, op_id: int) -> int:
        return self._placements[op_id].time

    def cluster(self, op_id: int) -> int:
        return self._placements[op_id].cluster

    @property
    def scheduled_ids(self) -> List[int]:
        return sorted(self._placements)

    @property
    def n_scheduled(self) -> int:
        return len(self._placements)

    def placements(self) -> Dict[int, Placement]:
        """Snapshot of all placements."""
        return dict(self._placements)

    # ------------------------------------------------------------------
    # Timing queries
    # ------------------------------------------------------------------

    def earliest_start(self, op_id: int) -> int:
        """Earliest issue time satisfying all *scheduled* predecessors."""
        estart = 0
        for edge in self.ddg.in_edges(op_id):
            if edge.src == op_id:
                continue  # self-recurrence: bounded by RecMII, not estart
            src_placement = self._placements.get(edge.src)
            if src_placement is None:
                continue
            lat = self.ddg.edge_latency(edge, self.latencies)
            bound = src_placement.time + lat - self.ii * edge.omega
            if bound > estart:
                estart = bound
        return estart

    def succ_violations(self, op_id: int, time: int) -> List[int]:
        """Scheduled consumers whose timing breaks if *op_id* issues at *time*."""
        violated = []
        for edge in self.ddg.out_edges(op_id):
            if edge.dst == op_id:
                continue
            dst_placement = self._placements.get(edge.dst)
            if dst_placement is None:
                continue
            lat = self.ddg.edge_latency(edge, self.latencies)
            if dst_placement.time < time + lat - self.ii * edge.omega:
                violated.append(edge.dst)
        return sorted(set(violated))

    # ------------------------------------------------------------------
    # Communication queries (the DMS-specific part)
    # ------------------------------------------------------------------

    def comm_conflicts(self, op_id: int, cluster: int) -> List[int]:
        """Scheduled flow partners indirectly connected to *cluster*.

        These are the operations that would be in communication conflict
        with *op_id* if it were placed on *cluster*.
        """
        topology = self.machine.topology
        conflicts = set()
        for edge in self.ddg.in_edges(op_id):
            if not edge.communicates or edge.src == op_id:
                continue
            partner = self._placements.get(edge.src)
            if partner is not None and topology.distance(partner.cluster, cluster) > 1:
                conflicts.add(edge.src)
        for edge in self.ddg.out_edges(op_id):
            if not edge.communicates or edge.dst == op_id:
                continue
            partner = self._placements.get(edge.dst)
            if partner is not None and topology.distance(cluster, partner.cluster) > 1:
                conflicts.add(edge.dst)
        return sorted(conflicts)

    def comm_compatible_clusters(self, op_id: int) -> List[int]:
        """Clusters where *op_id* conflicts with no scheduled flow partner."""
        return [
            cluster
            for cluster in range(self.machine.n_clusters)
            if not self.comm_conflicts(op_id, cluster)
        ]

    def scheduled_flow_preds(self, op_id: int) -> List[Tuple[int, int]]:
        """Scheduled producers of *op_id* as (producer_id, omega) pairs."""
        preds = []
        for edge in self.ddg.in_edges(op_id):
            if edge.communicates and edge.src != op_id and edge.src in self._placements:
                preds.append((edge.src, edge.omega))
        return sorted(set(preds))

    def scheduled_flow_succs(self, op_id: int) -> List[int]:
        """Scheduled consumers of *op_id*'s value."""
        return sorted(
            {
                e.dst
                for e in self.ddg.out_edges(op_id)
                if e.communicates and e.dst != op_id and e.dst in self._placements
            }
        )

    # ------------------------------------------------------------------
    # Derived schedule shape
    # ------------------------------------------------------------------

    @property
    def max_time(self) -> int:
        """Largest issue time (0 when empty)."""
        if not self._placements:
            return 0
        return max(p.time for p in self._placements.values())

    @property
    def stage_count(self) -> int:
        """Number of kernel stages: ``floor(max_time / II) + 1``."""
        return self.max_time // self.ii + 1

    def free_slots(self, cluster: int, kind: FUKind) -> int:
        """MRT passthrough used by chain scoring and strategy 3."""
        return self.mrt.free_slots(cluster, kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PartialSchedule ii={self.ii} scheduled={self.n_scheduled}/"
            f"{len(self.ddg)}>"
        )
