"""Schedule results and scheduler statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from ..ir.ddg import DDG
from ..ir.opcodes import LatencyModel, OpCode, is_useful
from ..machine.machine import MachineSpec
from .schedule import Placement


@dataclass
class SchedulerStats:
    """Counters accumulated while scheduling one loop.

    ``ejections_*`` follow the paper's three conflict classes, plus the
    chain-dismantling ejections specific to DMS backtracking.

    ``ii_attempts`` counts distinct II rungs visited; ``restart_attempts``
    counts every scheduling attempt actually executed (>= ``ii_attempts``
    whenever restarts or re-probes happen); ``futility_aborts`` counts
    attempts the adaptive search policy cut short.  The search layer
    aggregates per-attempt stats, so every counter is the exact sum over
    the attempt log (see ``tests/test_search_policies.py``).
    """

    ii_attempts: int = 0
    restart_attempts: int = 0
    futility_aborts: int = 0
    placements: int = 0
    budget_used: int = 0
    ejections_resource: int = 0
    ejections_dependence: int = 0
    ejections_communication: int = 0
    ejections_chain: int = 0
    chains_built: int = 0
    chains_dismantled: int = 0
    moves_inserted: int = 0
    moves_removed: int = 0
    strategy1: int = 0
    strategy2: int = 0
    strategy3: int = 0

    @property
    def total_ejections(self) -> int:
        return (
            self.ejections_resource
            + self.ejections_dependence
            + self.ejections_communication
            + self.ejections_chain
        )

    def merge(self, other: "SchedulerStats") -> None:
        """Accumulate *other* into this object (suite aggregation)."""
        for name in vars(other):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass(frozen=True)
class ScheduleResult:
    """A finished modulo schedule for one loop on one machine.

    Attributes:
        loop_name: the scheduled loop.
        machine: target machine.
        scheduler: ``"ims"`` or ``"dms"``.
        ii: achieved initiation interval.
        res_mii / rec_mii: lower bounds (on the scheduled DDG).
        ddg: the final graph, including copies and any surviving moves.
        placements: op id -> :class:`Placement`.
        latencies: latency model used.
        stats: scheduling effort counters.
        ii_trajectory: distinct II candidates the search visited, ending
            at the achieved II (empty for schedulers predating the
            search-policy layer; consumers fall back to the contiguous
            ``(ii - ii_attempts, ii]`` range).
    """

    loop_name: str
    machine: MachineSpec
    scheduler: str
    ii: int
    res_mii: int
    rec_mii: int
    ddg: DDG
    placements: Mapping[int, Placement]
    latencies: LatencyModel
    stats: SchedulerStats = field(default_factory=SchedulerStats)
    ii_trajectory: Tuple[int, ...] = ()

    @property
    def mii(self) -> int:
        return max(self.res_mii, self.rec_mii, 1)

    @property
    def ii_overhead(self) -> int:
        """Cycles of II above the lower bound."""
        return self.ii - self.mii

    @property
    def max_time(self) -> int:
        if not self.placements:
            return 0
        return max(p.time for p in self.placements.values())

    @property
    def stage_count(self) -> int:
        """Kernel stages (SC): ``floor(max_time / II) + 1``."""
        return self.max_time // self.ii + 1

    def cycles(self, iterations: int) -> int:
        """Execution cycles for *iterations* kernel iterations.

        Standard modulo-schedule ramp model: ``(n + SC - 1) * II`` covers
        prologue, kernel and epilogue (validated against the simulator).
        """
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        return (iterations + self.stage_count - 1) * self.ii

    @property
    def n_useful_ops(self) -> int:
        """Operations counted by the paper's IPC (copy/move excluded)."""
        return self.ddg.n_useful_ops()

    @property
    def n_moves(self) -> int:
        """Move operations surviving in the final schedule."""
        return sum(1 for op in self.ddg.operations() if op.opcode == OpCode.MOVE)

    @property
    def n_copies(self) -> int:
        """Copy operations in the final schedule."""
        return sum(1 for op in self.ddg.operations() if op.opcode == OpCode.COPY)

    def useful_instances(self, iterations: int) -> int:
        """Useful operation issues over *iterations* kernel iterations."""
        return self.n_useful_ops * iterations

    def ipc(self, iterations: int) -> float:
        """Useful instructions per cycle, ramp included (paper figure 6)."""
        return self.useful_instances(iterations) / self.cycles(iterations)

    def cluster_histogram(self) -> Dict[int, int]:
        """Operations per cluster."""
        hist: Dict[int, int] = {c: 0 for c in range(self.machine.n_clusters)}
        for placement in self.placements.values():
            hist[placement.cluster] += 1
        return hist

    def summary(self) -> str:
        """One-line result description."""
        return (
            f"{self.loop_name}: {self.scheduler.upper()} on {self.machine.name} "
            f"II={self.ii} (MII={self.mii}) SC={self.stage_count} "
            f"moves={self.n_moves} copies={self.n_copies}"
        )
