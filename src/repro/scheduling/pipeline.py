"""End-to-end loop compilation: unroll -> single-use -> schedule -> allocate.

This is the driver the experiments use.  It mirrors the paper's flow:

1. choose an unroll factor so the loop can saturate the target issue width
   ("loop unrolling was performed to provide additional operations to the
   scheduler whenever necessary", citing Lavery & Hwu);
2. for clustered targets, rewrite multiple-use lifetimes into single-use
   ones with copies (fan-out <= 2);
3. schedule with DMS (clustered) or IMS (unclustered);
4. optionally allocate queues and emit code.

The unroll factor is chosen on the *unclustered machine of equal useful FU
count* and shared by both machines of a comparison pair, so figure 4's
"II increase due to partitioning" compares like against like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..errors import SchedulingError
from ..ir.ddg import DDG
from ..ir.loop import Loop
from ..ir.opcodes import DEFAULT_LATENCIES, FUKind, LatencyModel, USEFUL_FU_KINDS
from ..ir.transforms import single_use_ddg, unroll_ddg
from ..machine.machine import MachineSpec, unclustered_vliw
from ..registers.queues import QueueAllocation, allocate_queues
from .dms import DistributedModuloScheduler
from .ims import IterativeModuloScheduler
from .mii import rec_mii, res_mii
from .result import ScheduleResult


@dataclass(frozen=True)
class CompiledLoop:
    """Everything produced by :func:`compile_loop` for one loop/machine."""

    loop: Loop
    machine: MachineSpec
    unroll_factor: int
    result: ScheduleResult
    allocation: Optional[QueueAllocation] = None

    @property
    def kernel_iterations(self) -> int:
        """Unrolled-body iterations covering the loop's trip count."""
        return -(-self.loop.trip_count // self.unroll_factor)

    @property
    def cycles(self) -> int:
        """Modelled execution cycles for the loop's trip count."""
        return self.result.cycles(self.kernel_iterations)

    @property
    def useful_instances(self) -> int:
        """Useful operation issues over the whole run."""
        return self.result.useful_instances(self.kernel_iterations)

    @property
    def ipc(self) -> float:
        """Useful IPC, ramp included (the paper's figure-6 metric)."""
        return self.useful_instances / self.cycles


def choose_unroll_factor(
    ddg: DDG,
    equivalent_k: int,
    latencies: LatencyModel = DEFAULT_LATENCIES,
    cap: int = DEFAULT_CONFIG.unroll_cap,
) -> int:
    """Smallest unroll factor minimising the projected per-iteration II.

    ``equivalent_k`` is the per-kind FU count of the unclustered reference
    machine (k L/S, k Add, k Mul).  For factor ``u`` the projection is
    ``max(ResMII_u, RecMII_u) / u``; ResMII amortises its ceiling as u
    grows while RecMII/u stays constant, so the search stops improving
    once recurrences dominate.
    """
    if equivalent_k < 1:
        raise SchedulingError(f"equivalent_k must be >= 1, got {equivalent_k}")
    machine = unclustered_vliw(equivalent_k)
    counts = {kind: 0 for kind in USEFUL_FU_KINDS}
    for op in ddg.operations():
        if op.fu_kind in counts:
            counts[op.fu_kind] += 1
        elif op.fu_kind == FUKind.COPY:
            raise SchedulingError(
                "choose the unroll factor before inserting copies"
            )
    candidates = []
    for u in range(1, cap + 1):
        res_u = 1
        for kind, count in counts.items():
            if count:
                res_u = max(res_u, -(-(count * u) // machine.fu_count(kind)))
        rec_u = rec_mii(ddg, latencies, unroll=u)
        candidates.append((max(res_u, rec_u) / u, u, max(res_u, rec_u)))
    best_score = min(score for score, _u, _ii in candidates)
    tied = [(u, ii_u) for score, u, ii_u in candidates if score <= best_score + 1e-12]
    # Among equal-throughput factors prefer the smallest one whose II is
    # at least 2: an II-1 kernel has a single MRT row, where one packing
    # miss costs a full 2x in cycles; II >= 2 leaves slack at the same
    # projected throughput (and a +1 miss costs only 1.5x).
    for u, ii_u in tied:
        if ii_u >= 2:
            return u
    return tied[0][0]


def compile_loop(
    loop: Loop,
    machine: MachineSpec,
    latencies: LatencyModel = DEFAULT_LATENCIES,
    config: SchedulerConfig = DEFAULT_CONFIG,
    unroll: Optional[int] = None,
    equivalent_k: Optional[int] = None,
    allocate: bool = True,
) -> CompiledLoop:
    """Compile *loop* for *machine*.

    ``unroll=None`` picks the factor automatically on the unclustered
    equivalent of *machine* (or of ``equivalent_k`` when given, so a
    clustered/unclustered pair can share the same factor).
    """
    if loop.unroll_factor != 1:
        raise SchedulingError(
            f"loop {loop.name!r} is already unrolled; pass the base loop"
        )
    if unroll is None:
        k = equivalent_k
        if k is None:
            k = max(1, machine.useful_fus // len(USEFUL_FU_KINDS))
        unroll = choose_unroll_factor(
            loop.ddg, k, latencies=latencies, cap=config.unroll_cap
        )
    ddg = unroll_ddg(loop.ddg, unroll)
    if machine.is_clustered:
        ddg = single_use_ddg(ddg, strategy=config.single_use_strategy)
        scheduler = DistributedModuloScheduler(machine, latencies, config)
    else:
        scheduler = IterativeModuloScheduler(machine, latencies, config)
    result = scheduler.schedule(ddg)
    allocation = None
    if allocate and machine.is_clustered:
        allocation = allocate_queues(result)
    return CompiledLoop(
        loop=loop,
        machine=machine,
        unroll_factor=unroll,
        result=result,
        allocation=allocation,
    )
