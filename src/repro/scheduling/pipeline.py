"""End-to-end loop compilation: unroll -> single-use -> schedule -> allocate.

The flow itself now lives in :mod:`repro.api` as named, swappable passes;
this module keeps the two pieces the rest of the library shares:

* :func:`choose_unroll_factor` — the unroll policy (the factor is chosen
  on the *unclustered machine of equal useful FU count* and shared by
  both machines of a comparison pair, so figure 4's "II increase due to
  partitioning" compares like against like);
* :class:`CompiledLoop` — the per-loop result container;
* :func:`compile_loop` — a thin backwards-compatible shim over
  ``Toolchain.default()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..errors import SchedulingError
from ..ir.ddg import DDG
from ..ir.loop import Loop
from ..ir.opcodes import DEFAULT_LATENCIES, FUKind, LatencyModel, USEFUL_FU_KINDS
from ..machine.machine import MachineSpec, unclustered_vliw
from ..registers.queues import QueueAllocation
from .mii import rec_mii
from .result import ScheduleResult


@dataclass(frozen=True)
class CompiledLoop:
    """Everything produced by :func:`compile_loop` for one loop/machine."""

    loop: Loop
    machine: MachineSpec
    unroll_factor: int
    result: ScheduleResult
    allocation: Optional[QueueAllocation] = None

    @property
    def kernel_iterations(self) -> int:
        """Unrolled-body iterations covering the loop's trip count."""
        return -(-self.loop.trip_count // self.unroll_factor)

    @property
    def cycles(self) -> int:
        """Modelled execution cycles for the loop's trip count."""
        return self.result.cycles(self.kernel_iterations)

    @property
    def useful_instances(self) -> int:
        """Useful operation issues over the whole run."""
        return self.result.useful_instances(self.kernel_iterations)

    @property
    def ipc(self) -> float:
        """Useful IPC, ramp included (the paper's figure-6 metric)."""
        return self.useful_instances / self.cycles


def choose_unroll_factor(
    ddg: DDG,
    equivalent_k: int,
    latencies: LatencyModel = DEFAULT_LATENCIES,
    cap: int = DEFAULT_CONFIG.unroll_cap,
) -> int:
    """Smallest unroll factor minimising the projected per-iteration II.

    ``equivalent_k`` is the per-kind FU count of the unclustered reference
    machine (k L/S, k Add, k Mul).  For factor ``u`` the projection is
    ``max(ResMII_u, RecMII_u) / u``; ResMII amortises its ceiling as u
    grows while RecMII/u stays constant, so the search stops improving
    once recurrences dominate.
    """
    if equivalent_k < 1:
        raise SchedulingError(f"equivalent_k must be >= 1, got {equivalent_k}")
    machine = unclustered_vliw(equivalent_k)
    counts = {kind: 0 for kind in USEFUL_FU_KINDS}
    for op in ddg.operations():
        if op.fu_kind in counts:
            counts[op.fu_kind] += 1
        elif op.fu_kind == FUKind.COPY:
            raise SchedulingError(
                "choose the unroll factor before inserting copies"
            )
    candidates = []
    for u in range(1, cap + 1):
        res_u = 1
        for kind, count in counts.items():
            if count:
                res_u = max(res_u, -(-(count * u) // machine.fu_count(kind)))
        rec_u = rec_mii(ddg, latencies, unroll=u)
        candidates.append((max(res_u, rec_u) / u, u, max(res_u, rec_u)))
    best_score = min(score for score, _u, _ii in candidates)
    tied = [(u, ii_u) for score, u, ii_u in candidates if score <= best_score + 1e-12]
    # Among equal-throughput factors prefer the smallest one whose II is
    # at least 2: an II-1 kernel has a single MRT row, where one packing
    # miss costs a full 2x in cycles; II >= 2 leaves slack at the same
    # projected throughput (and a +1 miss costs only 1.5x).
    for u, ii_u in tied:
        if ii_u >= 2:
            return u
    return tied[0][0]


def compile_loop(
    loop: Loop,
    machine: MachineSpec,
    latencies: LatencyModel = DEFAULT_LATENCIES,
    config: SchedulerConfig = DEFAULT_CONFIG,
    unroll: Optional[int] = None,
    equivalent_k: Optional[int] = None,
    allocate: bool = True,
) -> CompiledLoop:
    """Compile *loop* for *machine* (shim over ``Toolchain.default()``).

    ``unroll=None`` picks the factor automatically on the unclustered
    equivalent of *machine* (or of ``equivalent_k`` when given, so a
    clustered/unclustered pair can share the same factor).

    New code should build a :class:`repro.api.CompilationRequest` and use
    a :class:`repro.api.Toolchain` directly — that returns the full
    report (timings, II trajectory, diagnostics) instead of just the
    compiled loop.
    """
    # Imported lazily: repro.api builds on this module's CompiledLoop and
    # choose_unroll_factor, so a module-level import would be circular.
    from ..api.request import CompilationRequest
    from ..api.toolchain import Toolchain

    request = CompilationRequest(
        loop=loop,
        machine=machine,
        latencies=latencies,
        config=config,
        unroll=unroll,
        equivalent_k=equivalent_k,
        allocate=allocate,
    )
    return Toolchain.default().compile(request).compiled
