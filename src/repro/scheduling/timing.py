"""The single source of truth for dependence-edge timing.

Before this module existed, the schedule checker resolved dependence
latencies through :meth:`~repro.ir.ddg.DDG.edge_latency` while the timing
simulator readied operands at ``issue + latencies.latency(op.opcode)`` —
two independent derivations that agreed only by accident (per-op producer
latency happens to equal per-edge latency for flow edges under the default
model).  Any future divergence — explicit edge latencies, per-link
communication cost, asymmetric interconnects — would have let the checker
and the simulator silently disagree about the same schedule.

Both now call :func:`edge_ready_latency`: the per-edge latency (explicit
for ordering edges, producer latency for flow edges) plus the topology's
per-link communication cost whenever the edge actually moves a value
between two distinct clusters.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..ir.ddg import DDG
from ..ir.edges import DepEdge
from ..ir.opcodes import LatencyModel
from ..machine.machine import MachineSpec
from .schedule import Placement


def edge_ready_latency(
    ddg: DDG,
    edge: DepEdge,
    latencies: LatencyModel,
    *,
    src_cluster: Optional[int] = None,
    dst_cluster: Optional[int] = None,
    machine: Optional[MachineSpec] = None,
) -> int:
    """Cycles between issuing ``edge.src`` and ``edge.dst`` being allowed
    to consume it (before the ``- II * omega`` modulo adjustment).

    For flow edges this is the producer latency plus the interconnect's
    per-link cost when the value crosses clusters; ordering edges carry
    their own explicit latency and never communicate.
    """
    latency = ddg.edge_latency(edge, latencies)
    if (
        edge.communicates
        and machine is not None
        and src_cluster is not None
        and dst_cluster is not None
        and src_cluster != dst_cluster
    ):
        latency += machine.topology.comm_latency(src_cluster, dst_cluster)
    return latency


def dependence_slack(
    ddg: DDG,
    edge: DepEdge,
    placements: Mapping[int, Placement],
    ii: int,
    latencies: LatencyModel,
    machine: Optional[MachineSpec] = None,
) -> int:
    """Slack of *edge* under *placements*: ``t(dst) - (t(src) + latency -
    II * omega)``.  Negative slack is a dependence violation; the checker
    and the simulator both reject it (through this shared arithmetic).
    """
    src = placements[edge.src]
    dst = placements[edge.dst]
    latency = edge_ready_latency(
        ddg,
        edge,
        latencies,
        src_cluster=src.cluster,
        dst_cluster=dst.cluster,
        machine=machine,
    )
    return dst.time - (src.time + latency - ii * edge.omega)
