"""Minimum initiation interval: resource bound and recurrence bound.

``MII = max(ResMII, RecMII)`` (Rau, "Iterative Modulo Scheduling", 1996):

* **ResMII** — for unit-occupancy fully pipelined FUs this is the largest
  ``ceil(ops_of_kind / units_of_kind)`` over FU kinds.
* **RecMII** — the smallest II such that no dependence circuit has
  positive slack deficit, i.e. for every circuit
  ``sum(latency) <= II * sum(omega)``.  Computed per strongly connected
  component with a binary search whose feasibility test is a
  Bellman-Ford-style positive-cycle detection on edge weights
  ``latency - II * omega``.

The scaled variant :func:`rec_mii_unrolled` evaluates the recurrence bound
the graph would have *after* unrolling by ``u`` without building the
unrolled graph: a circuit with latency L and distance W yields an unrolled
ratio ``u * L / W``, so feasibility uses weights ``u * latency - II * omega``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import SchedulingError
from ..ir.ddg import DDG
from ..ir.opcodes import FUKind, LatencyModel
from ..machine.machine import MachineSpec


@dataclass(frozen=True)
class MIIResult:
    """The three II lower bounds of a loop on a machine."""

    res_mii: int
    rec_mii: int

    @property
    def mii(self) -> int:
        return max(self.res_mii, self.rec_mii, 1)


def res_mii(ddg: DDG, machine: MachineSpec) -> int:
    """Resource-constrained lower bound on the II."""
    counts: Dict[FUKind, int] = {}
    for op in ddg.operations():
        counts[op.fu_kind] = counts.get(op.fu_kind, 0) + 1
    bound = 1
    for kind, count in counts.items():
        units = machine.fu_count(kind)
        if units == 0:
            raise SchedulingError(
                f"loop {ddg.name!r} uses {kind.value} ops but machine "
                f"{machine.name!r} has no {kind.value} unit"
            )
        bound = max(bound, -(-count // units))
    return bound


def _scc_edges(
    ddg: DDG, scc: Sequence[int], latencies: LatencyModel
) -> List[Tuple[int, int, int, int]]:
    """Edges internal to *scc* as (src, dst, latency, omega)."""
    members = set(scc)
    edges = []
    for src in scc:
        for edge in ddg.out_edges(src):
            if edge.dst in members:
                edges.append(
                    (src, edge.dst, ddg.edge_latency(edge, latencies), edge.omega)
                )
    return edges


def _has_positive_cycle(
    nodes: Sequence[int],
    edges: List[Tuple[int, int, int, int]],
    ii: int,
    scale: int,
) -> bool:
    """True when some cycle has positive total ``scale*lat - ii*omega``."""
    dist = {node: 0 for node in nodes}
    # Hoist the per-edge weights out of the Bellman-Ford sweeps: the MII
    # binary search probes many II values and each probe sweeps up to
    # |nodes| times over the same edge list.
    weighted = [
        (src, dst, scale * lat - ii * omega) for src, dst, lat, omega in edges
    ]
    # No simple path can gain more than the sum of positive weights; a
    # distance beyond that proves a positive cycle without finishing the
    # remaining sweeps.
    max_path_gain = sum(weight for _, _, weight in weighted if weight > 0)
    for _ in range(len(nodes)):
        changed = False
        for src, dst, weight in weighted:
            candidate = dist[src] + weight
            if candidate > dist[dst]:
                if candidate > max_path_gain:
                    return True
                dist[dst] = candidate
                changed = True
        if not changed:
            return False
    return True


def rec_mii(ddg: DDG, latencies: LatencyModel, unroll: int = 1) -> int:
    """Recurrence-constrained lower bound on the II.

    With ``unroll > 1`` this returns the RecMII the graph would have after
    unrolling by that factor (see module docstring), used by the
    auto-unroll policy to price candidate factors cheaply.
    """
    if unroll < 1:
        raise SchedulingError(f"unroll must be >= 1, got {unroll}")
    bound = 1
    for scc in ddg.sccs():
        edges = _scc_edges(ddg, scc, latencies)
        total_omega = sum(e[3] for e in edges)
        if total_omega == 0:
            raise SchedulingError(
                f"loop {ddg.name!r} has an omega-0 dependence circuit"
            )
        # Upper bound: sum of scaled latencies always admits every circuit.
        high = max(1, unroll * sum(e[2] for e in edges))
        low = 1
        if not _has_positive_cycle(scc, edges, low, unroll):
            bound = max(bound, 1)
            continue
        while low < high:
            mid = (low + high) // 2
            if _has_positive_cycle(scc, edges, mid, unroll):
                low = mid + 1
            else:
                high = mid
        bound = max(bound, low)
    return bound


def rec_mii_unrolled(ddg: DDG, latencies: LatencyModel, unroll: int) -> int:
    """RecMII of the *unrolled-by-u* graph, computed on the base graph."""
    return rec_mii(ddg, latencies, unroll=unroll)


def compute_mii(
    ddg: DDG, machine: MachineSpec, latencies: LatencyModel
) -> MIIResult:
    """Both II lower bounds for *ddg* on *machine*."""
    return MIIResult(res_mii(ddg, machine), rec_mii(ddg, latencies))
