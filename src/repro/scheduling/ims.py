"""Iterative Modulo Scheduling (IMS) — the paper's baseline scheduler.

This is Rau's algorithm ("Iterative Modulo Scheduling", IJPP 1996), used
by the paper to schedule the *unclustered* reference machine: height-based
priority, a time-slot search over one II window, and forced placement with
ejection (backtracking) when no conflict-free slot exists.  The budget
bounds total scheduling effort per II attempt.

The implementation is machine-shape agnostic (a multi-cluster machine is
treated as a flat pool of units with no communication constraints), but in
the experiments IMS always targets single-cluster machines.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..errors import SchedulingError
from ..ir.ddg import DDG
from ..ir.opcodes import DEFAULT_LATENCIES, LatencyModel
from ..machine.machine import MachineSpec
from .heights import compute_heights
from .mii import compute_mii
from .result import ScheduleResult, SchedulerStats
from .schedule import PartialSchedule
from .search import (
    AttemptLimits,
    AttemptOutcome,
    AttemptRunner,
    FailureEvidence,
    get_search_policy,
)


class IterativeModuloScheduler:
    """Rau's IMS for a machine without communication constraints."""

    name = "ims"

    def __init__(
        self,
        machine: MachineSpec,
        latencies: LatencyModel = DEFAULT_LATENCIES,
        config: SchedulerConfig = DEFAULT_CONFIG,
    ):
        self.machine = machine
        self.latencies = latencies
        self.config = config

    def schedule(self, ddg: DDG) -> ScheduleResult:
        """Find the smallest feasible II for *ddg* and schedule it.

        The II walk is delegated to the search policy named by
        ``config.search`` (see :mod:`repro.scheduling.search`).  IMS is
        deterministic per II — there is no restart salt — so a rung is
        one attempt and the ``portfolio`` policy degenerates to the
        serial ladder.
        """
        if len(ddg) == 0:
            raise SchedulingError(f"loop {ddg.name!r} has no operations")
        bounds = compute_mii(ddg, self.machine, self.latencies)
        policy = get_search_policy(self.config.search)
        outcome = policy.search(self.attempt_runner(ddg), bounds.mii, self.config)
        return ScheduleResult(
            loop_name=ddg.name,
            machine=self.machine,
            scheduler=self.name,
            ii=outcome.ii,
            res_mii=bounds.res_mii,
            rec_mii=bounds.rec_mii,
            ddg=outcome.work,
            placements=outcome.placements,
            latencies=self.latencies,
            stats=outcome.stats,
            ii_trajectory=outcome.trajectory,
        )

    def attempt_runner(self, ddg: DDG) -> "IMSAttemptRunner":
        """The per-loop attempt server the search policies drive."""
        return IMSAttemptRunner(self, ddg)

    # ------------------------------------------------------------------

    def _attempt(
        self,
        ddg: DDG,
        ii: int,
        stats: SchedulerStats,
        height_terms=None,
        heights=None,
        limits: Optional[AttemptLimits] = None,
    ) -> Optional[PartialSchedule]:
        schedule = PartialSchedule(ddg, self.machine, ii, self.latencies)
        if heights is None:
            heights = compute_heights(ddg, self.latencies, ii, height_terms)
        unscheduled: Set[int] = set(ddg.op_ids)
        last_time: Dict[int, int] = {}
        budget = self.config.budget_ratio * len(ddg)
        thrash_cap = limits.thrash_cap if limits is not None else None
        budget_abort = limits is not None and limits.budget_infeasible_abort
        pop_counts: Dict[int, int] = {}
        while unscheduled and budget > 0:
            if budget_abort and budget < len(unscheduled):
                stats.futility_aborts += 1
                return None
            op_id = min(unscheduled, key=lambda i: (-heights[i], i))
            if thrash_cap is not None:
                count = pop_counts.get(op_id, 0) + 1
                pop_counts[op_id] = count
                if count - 1 > thrash_cap:
                    stats.futility_aborts += 1
                    return None
            budget -= 1
            stats.budget_used += 1
            unscheduled.remove(op_id)
            estart = max(0, schedule.earliest_start(op_id))
            placed = self._find_slot(schedule, op_id, estart)
            if placed is None:
                placed = self._force(schedule, op_id, estart, last_time, stats, unscheduled)
            time, cluster = placed
            # Scheduled consumers whose timing the new placement breaks.
            for victim in schedule.succ_violations(op_id, time):
                schedule.remove(victim)
                unscheduled.add(victim)
                stats.ejections_dependence += 1
            schedule.place(op_id, time, cluster)
            last_time[op_id] = time
            stats.placements += 1
        if unscheduled:
            return None
        return schedule

    def _find_slot(
        self, schedule: PartialSchedule, op_id: int, estart: int
    ) -> Optional[tuple]:
        """First resource-free (time, cluster) in the II window."""
        kind = schedule.ddg.op(op_id).fu_kind
        for time in range(estart, estart + schedule.ii):
            for cluster in range(self.machine.n_clusters):
                if schedule.mrt.is_free(cluster, kind, time):
                    return (time, cluster)
        return None

    def _force(
        self,
        schedule: PartialSchedule,
        op_id: int,
        estart: int,
        last_time: Dict[int, int],
        stats: SchedulerStats,
        unscheduled: Set[int],
    ) -> tuple:
        """Rau's forced placement: evict the occupants of one MRT cell."""
        if op_id in last_time:
            time = max(estart, last_time[op_id] + 1)
        else:
            time = estart
        kind = schedule.ddg.op(op_id).fu_kind
        # Choose the cluster whose cell at this row needs fewest evictions.
        best_cluster = None
        best_evictions = None
        for cluster in range(self.machine.n_clusters):
            if schedule.mrt.capacity(cluster, kind) == 0:
                continue
            occupants = schedule.mrt.occupants(cluster, kind, time)
            if best_evictions is None or len(occupants) < best_evictions:
                best_cluster = cluster
                best_evictions = len(occupants)
        if best_cluster is None:
            raise SchedulingError(
                f"machine {self.machine.name!r} has no {kind.value} unit"
            )
        for victim in schedule.mrt.occupants(best_cluster, kind, time):
            schedule.remove(victim)
            unscheduled.add(victim)
            stats.ejections_resource += 1
        return (time, best_cluster)


class IMSAttemptRunner(AttemptRunner):
    """Serves IMS attempts to a search policy for one loop.

    IMS never mutates the graph and has no restart salt, so the runner
    shares the graph across attempts, declares one restart per rung, and
    ignores both the salt and the (cluster-preference) failure evidence.
    The shared height caches live on :class:`AttemptRunner`.
    """

    def __init__(self, scheduler: IterativeModuloScheduler, ddg: DDG):
        self.scheduler = scheduler
        self.restarts_per_rung = 1
        self._bind(ddg, scheduler.latencies)

    def run(
        self,
        ii: int,
        salt: int,
        limits: Optional[AttemptLimits] = None,
        evidence: Optional[FailureEvidence] = None,
    ) -> AttemptOutcome:
        stats = SchedulerStats()
        schedule = self.scheduler._attempt(
            self.ddg, ii, stats, heights=self.heights_for(ii), limits=limits
        )
        # evidence stays None even on failure: IMS attempts ignore it, so
        # reporting any would only make the adaptive policy treat its
        # (identical) re-probes as distinct attempts and run them twice.
        return AttemptOutcome(
            ii=ii,
            salt=salt,
            placements=schedule.placements() if schedule is not None else None,
            work=self.ddg,
            stats=stats,
        )

    def portfolio_payload(self) -> tuple:
        scheduler = self.scheduler
        return (
            "ims",
            scheduler.machine,
            scheduler.latencies,
            scheduler.config,
            self.ddg,
        )
