"""Modulo scheduling: MII bounds, IMS baseline, and the DMS algorithm."""

from .chains import Chain, ChainPlan, ChainPlanner, ChainRegistry, PlannedChain
from .checker import ValidationReport, check_schedule, validate_schedule
from .dms import DistributedModuloScheduler
from .fingerprint import schedule_fingerprint
from .heights import compute_heights, height_edge_terms, priority_order
from .ims import IterativeModuloScheduler
from .mii import MIIResult, compute_mii, rec_mii, rec_mii_unrolled, res_mii
from .mrt import ModuloReservationTable
from .result import ScheduleResult, SchedulerStats
from .schedule import PartialSchedule, Placement
from .search import (
    SEARCH_POLICY_NAMES,
    AdaptivePolicy,
    AttemptLimits,
    AttemptOutcome,
    AttemptRunner,
    FailureEvidence,
    LadderPolicy,
    PortfolioPolicy,
    SearchOutcome,
    SearchPolicy,
    get_search_policy,
)
from .twophase import (
    TwoPhaseScheduler,
    insert_static_chains,
    partition_clusters,
    partition_ring,
)

__all__ = [
    "Chain",
    "ChainPlan",
    "ChainPlanner",
    "ChainRegistry",
    "PlannedChain",
    "ValidationReport",
    "check_schedule",
    "validate_schedule",
    "DistributedModuloScheduler",
    "schedule_fingerprint",
    "compute_heights",
    "height_edge_terms",
    "priority_order",
    "IterativeModuloScheduler",
    "MIIResult",
    "compute_mii",
    "rec_mii",
    "rec_mii_unrolled",
    "res_mii",
    "ModuloReservationTable",
    "ScheduleResult",
    "SchedulerStats",
    "PartialSchedule",
    "Placement",
    "SEARCH_POLICY_NAMES",
    "AdaptivePolicy",
    "AttemptLimits",
    "AttemptOutcome",
    "AttemptRunner",
    "FailureEvidence",
    "LadderPolicy",
    "PortfolioPolicy",
    "SearchOutcome",
    "SearchPolicy",
    "get_search_policy",
    "TwoPhaseScheduler",
    "insert_static_chains",
    "partition_clusters",
    "partition_ring",
]
